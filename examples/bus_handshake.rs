//! The paper's closing observation (§1): "Since the proposed method is
//! completely independent of synchronization constraints, it can also be
//! used to test bus lines using handshake protocols to transfer data."
//!
//! This example models a handshake-coupled bus segment: each line is a
//! repeated (buffered) interconnect with heavy wire loading, the pulse
//! generator sits at the transmitter, the transition detector at the
//! receiver — no clock anywhere. A resistive via defect on one line is
//! found by pulsing every line and watching which detector stays silent.
//!
//! Run with: `cargo run --release -p pulsar-core --example bus_handshake`

use pulsar_analog::Polarity;
use pulsar_cells::{BuiltPath, PathFault, PathSpec, Tech, TransitionDetector};

fn main() {
    // Heavily loaded interconnect: repeater chain with 3x the default
    // wire capacitance per segment.
    let mut tech = Tech::generic_180nm();
    tech.c_wire *= 3.0;
    let lanes = 8;
    let faulty_lane = 5;
    let r_defect = 15e3;

    // Receiver-side sensing threshold, characterized electrically.
    let detector = TransitionDetector::new(tech, 3, 1.0);
    let w_th = detector
        .characterize_threshold(10e-12)
        .expect("detector characterization");

    // Transmitter pulse: comfortably above the healthy line's filtering,
    // found from the fault-free lane.
    let spec = PathSpec::inverter_chain(4);
    let mut healthy = BuiltPath::new(&spec, &PathFault::None, &vec![tech; 4]);
    let mut w_in = 2.0 * w_th;
    loop {
        let out = healthy
            .propagate_pulse(w_in, Polarity::PositiveGoing, None)
            .expect("healthy lane simulation");
        if out.output_width > 1.5 * w_th {
            break;
        }
        w_in *= 1.3;
    }

    println!("bus self-test, no clock involved:");
    println!(
        "  detector threshold w_th = {:.0} ps, injected pulse w_in = {:.0} ps",
        w_th * 1e12,
        w_in * 1e12
    );
    println!();
    println!("{:>6}  {:>12}  {:>10}", "lane", "w_out (ps)", "verdict");

    for lane in 0..lanes {
        let fault = if lane == faulty_lane {
            PathFault::ExternalRop {
                stage: 1,
                ohms: r_defect,
            }
        } else {
            PathFault::None
        };
        let mut line = BuiltPath::new(&spec, &fault, &vec![tech; 4]);
        let out = line
            .propagate_pulse(w_in, Polarity::PositiveGoing, None)
            .expect("lane simulation");
        let detected = out.output_width < w_th;
        println!(
            "{:>6}  {:>12.0}  {:>10}",
            lane,
            out.output_width * 1e12,
            if detected { "DEFECTIVE" } else { "ok" }
        );
    }

    println!();
    println!(
        "lane {faulty_lane} carries a {:.0} kohm via defect; its pulse never reaches the receiver.",
        r_defect / 1e3
    );
}
