//! The off-line / on-line synergy of the paper's §1: the transition
//! detectors used at the outputs for pulse testing are the same circuits
//! "introduced to on-line detect transient faults originated by ionizing
//! particles" (Metra et al., paper ref. [9]).
//!
//! This example runs the detector in its *on-line* role: the block is
//! quiescent, a particle strike injects charge at an internal node, and
//! the detector — characterized once, electrically — flags the resulting
//! single-event transient at the output whenever its width exceeds the
//! same `ω_th` used by the off-line pulse test.
//!
//! Run with: `cargo run --release -p pulsar-core --example online_monitor`

use pulsar_analog::Polarity;
use pulsar_cells::{BuiltPath, PathFault, PathSpec, Tech, TransitionDetector};

fn main() {
    let tech = Tech::generic_180nm();
    let detector = TransitionDetector::new(tech, 3, 1.0);
    let w_th = detector
        .characterize_threshold(10e-12)
        .expect("detector characterization");
    println!(
        "detector threshold (same as the off-line pulse test): {:.0} ps",
        w_th * 1e12
    );
    println!();
    println!(
        "{:>12}  {:>14}  {:>12}  {:>10}",
        "strike (mA)", "duration (ps)", "SET out (ps)", "flagged?"
    );

    for (peak_ma, dur_ps) in [
        (0.2, 60.0),
        (0.6, 80.0),
        (1.2, 100.0),
        (2.0, 120.0),
        (3.0, 150.0),
        (4.5, 200.0),
    ] {
        let spec = PathSpec::inverter_chain(5);
        let mut path = BuiltPath::new(&spec, &PathFault::None, &vec![tech; 5]);
        path.hold_input(false).expect("static input");
        path.add_strike_source(0, peak_ma * 1e-3, 1e-9, dur_ps * 1e-12);
        let res = path.run_transient(None).expect("transient");
        let out = res.trace(path.output());
        // Low input → odd chain → output rests high; the SET pulls low.
        let w = out.widest_pulse_width(path.vdd() / 2.0, Polarity::NegativeGoing);
        println!(
            "{:>12.1}  {:>14.0}  {:>12.0}  {:>10}",
            peak_ma,
            dur_ps,
            w * 1e12,
            if w >= w_th { "FLAGGED" } else { "quiet" }
        );
    }

    println!();
    println!("one sensing circuit, two reliability roles: off-line pulse testing of");
    println!("resistive defects and on-line flagging of particle-induced transients.");
}
