//! The paper's §4 calibration flow, end to end:
//!
//! 1. Monte Carlo the fault-free path (10 % parameter sigma).
//! 2. Pick `T₀` so no instance fails DF testing even at `0.9·T₀`.
//! 3. Pick `(ω_in⁰, ω_th⁰)`: `ω_in⁰` at the start of the transfer curve's
//!    asymptotic region, `ω_th⁰` clearing every instance under a +10 %
//!    sensor variation.
//! 4. Verify: zero false positives for both methods.
//!
//! Run with: `cargo run --release -p pulsar-core --example calibration`

use pulsar_analog::Polarity;
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{CoreError, DefectKind, DfStudy, McConfig, PathUnderTest, PulseStudy};

fn main() -> Result<(), CoreError> {
    let put = PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    };
    let mc = McConfig::paper(32, 4242);

    // DF-testing calibration.
    let df = DfStudy::new(put.clone(), mc.clone());
    let needs = df.fault_free_needs()?;
    let cal_df = df.calibrate()?;
    println!("DF testing:");
    println!(
        "  fault-free delay+overhead: {:.1} .. {:.1} ps over {} instances",
        needs.iter().cloned().fold(f64::INFINITY, f64::min) * 1e12,
        needs.iter().cloned().fold(0.0_f64, f64::max) * 1e12,
        needs.len()
    );
    println!(
        "  T0 = {:.1} ps (0.9*T0 = {:.1} ps still passes everyone)",
        cal_df.t0 * 1e12,
        0.9 * cal_df.t0 * 1e12
    );
    let false_pos = needs.iter().filter(|n| 0.9 * cal_df.t0 < **n).count();
    println!("  false positives at 0.9*T0: {false_pos}");

    // Pulse-test calibration.
    let pulse = PulseStudy::new(put, mc, Polarity::PositiveGoing);
    let curve = pulse.nominal_curve()?;
    let knee = curve.region3_start(pulse.region_tol, 0.0);
    let cal_p = pulse.calibrate()?;
    println!();
    println!("pulse testing:");
    println!(
        "  transfer-curve knee (region 3 start): {:.1} ps",
        knee.unwrap_or(f64::NAN) * 1e12
    );
    println!(
        "  w_in0 = {:.1} ps, w_th0 = {:.1} ps",
        cal_p.w_in * 1e12,
        cal_p.w_th * 1e12
    );
    let wouts = pulse.fault_free_wouts(cal_p.w_in)?;
    let fp = wouts.iter().filter(|w| **w < 1.1 * cal_p.w_th).count();
    println!(
        "  weakest fault-free output width: {:.1} ps (sensor at +10% needs {:.1} ps)",
        wouts.iter().cloned().fold(f64::INFINITY, f64::min) * 1e12,
        1.1 * cal_p.w_th * 1e12
    );
    println!("  false positives at 1.1*w_th: {fp}");
    Ok(())
}
