//! Reproduces the waveform studies of the paper's Figs. 1–5 in summary
//! form: for each defect class, how the injected pulse's width evolves
//! stage by stage through the faulty 7-gate path, against the fault-free
//! reference.
//!
//! Run with: `cargo run --release -p pulsar-core --example waveforms`
//! (full CSV waveforms: the `fig02/03/05` binaries in `pulsar-bench`).

use pulsar_analog::Polarity;
use pulsar_cells::{BuiltPath, PathFault, PathSpec, RopSite, Tech};

fn widths(fault: &PathFault, w_in: f64) -> Vec<f64> {
    let tech = Tech::generic_180nm();
    let spec = PathSpec::paper_chain();
    let mut path = BuiltPath::new(&spec, fault, &vec![tech; 7]);
    path.propagate_pulse(w_in, Polarity::PositiveGoing, None)
        .expect("transient simulation")
        .stage_widths
}

fn show(name: &str, fault: &PathFault, w_in: f64) {
    let w = widths(fault, w_in);
    print!("{name:<28}");
    for wi in &w {
        print!(" {:>6.0}", wi * 1e12);
    }
    println!();
}

fn main() {
    let w_in = 500e-12;
    println!(
        "pulse width (ps) after each stage of the 7-gate path; injected: {:.0} ps",
        w_in * 1e12
    );
    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "circuit", "s0", "s1", "s2", "s3", "s4", "s5", "s6"
    );
    show("fault-free", &PathFault::None, w_in);
    show(
        "internal ROP 8k (Fig 2)",
        &PathFault::InternalRop {
            stage: 1,
            site: RopSite::PullUp,
            ohms: 8e3,
        },
        w_in,
    );
    show(
        "external ROP 8k (Fig 3)",
        &PathFault::ExternalRop {
            stage: 1,
            ohms: 8e3,
        },
        w_in,
    );
    show(
        "external ROP 30k",
        &PathFault::ExternalRop {
            stage: 1,
            ohms: 30e3,
        },
        w_in,
    );
    show(
        "bridge 4k, aggr low (Fig 5)",
        &PathFault::Bridge {
            stage: 1,
            ohms: 4e3,
            aggressor_high: false,
        },
        w_in,
    );
    println!();
    println!("internal opens attack one edge and shrink the pulse immediately;");
    println!("external opens kill it once the branch RC approaches the pulse width;");
    println!("bridges above the critical resistance still leave an incomplete pulse.");
}
