//! Test generation on the C432-class benchmark (the paper's §5 flow in
//! miniature): for a handful of external-ROP fault sites, enumerate the
//! paths through each site, sensitize them, pick `(ω_in, ω_th)` by the
//! region-3 rule and rank by minimum detectable resistance.
//!
//! Run with: `cargo run --release -p pulsar-core --example testgen_c432`

use pulsar_core::{plan_for_site, CoreError, TestgenConfig};
use pulsar_logic::c432_like;
use pulsar_timing::TimingLibrary;

fn main() -> Result<(), CoreError> {
    let nl = c432_like();
    let lib = TimingLibrary::generic();
    let cfg = TestgenConfig {
        max_paths: 64,
        ..TestgenConfig::default()
    };

    println!(
        "benchmark: {} inputs, {} gates, {} outputs",
        nl.inputs().len(),
        nl.gate_count(),
        nl.outputs().len()
    );
    println!();

    for gi in [10usize, 50, 90, 130] {
        let site = nl.gates()[gi].output;
        print!("site {:<6}", nl.signal_name(site));
        match plan_for_site(&nl, site, &lib, &cfg) {
            Ok(plans) => {
                let best = &plans[0];
                let sensitizable = plans.len();
                match best.r_min {
                    Some(r) => println!(
                        "{sensitizable:>3} sensitized paths; best: {} gates, w_in {:.0} ps, w_th {:.0} ps, R_min {:.1} kohm",
                        best.path.len(),
                        best.w_in * 1e12,
                        best.w_th * 1e12,
                        r / 1e3
                    ),
                    None => println!(
                        "{sensitizable:>3} sensitized paths, none detect the fault in-bracket"
                    ),
                }
                // The paper's observation: good plans live at low w_in/w_th.
                if plans.len() > 1 {
                    let worst = plans.last().expect("non-empty");
                    println!(
                        "            worst kept path: w_in {:.0} ps, R_min {}",
                        worst.w_in * 1e12,
                        worst
                            .r_min
                            .map(|r| format!("{:.1} kohm", r / 1e3))
                            .unwrap_or_else(|| "undetectable".to_owned())
                    );
                }
            }
            Err(CoreError::NoSensitizablePath { .. }) => {
                println!("  no sensitizable path (site skipped, as in real test generation)")
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
