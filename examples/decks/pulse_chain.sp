two-stage inverter chain propagating a narrow pulse
.model nx nmos
.model px pmos
Vdd vdd 0 DC 1.8
Vin in 0 PULSE(0 1.8 0.3n 40p 40p 0.4n)
M1 mid in vdd px W=2u L=0.18u
M2 mid in 0 nx W=1u L=0.18u
M3 out mid vdd px W=2u L=0.18u
M4 out mid 0 nx W=1u L=0.18u
C1 mid 0 2f
C2 out 0 5f
.tran 5p 3n
.end
