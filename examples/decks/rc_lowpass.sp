RC low-pass filter driven by a single pulse
V1 in 0 PULSE(0 1.8 1n 0.1n 0.1n 0.5n)
R1 in out 1k
C1 out 0 0.1p
.tran 10p 4n
.end
