CMOS inverter driven by a pulse
.model nx nmos
.model px pmos
Vdd vdd 0 DC 1.8
Vin in 0 PULSE(0 1.8 0.2n 50p 50p 1n)
M1 out in vdd px W=2u L=0.18u
M2 out in 0 nx W=1u L=0.18u
C1 out 0 5f
.tran 5p 3n
.end
