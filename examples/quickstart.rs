//! Quickstart: detect a resistive open that delay-fault testing misses.
//!
//! Builds the paper's 7-gate path with an external resistive open on the
//! second gate's fan-out branch, then applies both test methods at a few
//! defect resistances.
//!
//! Run with: `cargo run --release -p pulsar-core --example quickstart`

use pulsar_analog::Polarity;
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{df_detects, CoreError, DefectKind, FfTiming, PathInstance, PathUnderTest};

fn main() -> Result<(), CoreError> {
    // A resistive bridge to a steady aggressor — the defect class where
    // the paper's pulse method clearly beats reduced-clock DF testing.
    let put = PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::Bridge {
            aggressor_high: false,
        },
        stage: 1,
        tech: Tech::generic_180nm(),
    };

    // Fault-free reference: path delay and surviving pulse width.
    let techs = vec![put.tech; put.spec.len()];
    let mut clean = put.instantiate_fault_free(&techs);
    let d0 = clean.worst_delay()?;
    let w_in = 320e-12;
    let w0 = clean.pulse_width_out(w_in, Polarity::PositiveGoing)?;

    // Test settings. The DF clock cannot sit exactly at the fault-free
    // delay: clock-distribution uncertainty forces a margin (the paper
    // budgets 10 %, §4). The sensing threshold gets a comparable margin
    // below the healthy output width.
    let ff = FfTiming::nominal();
    let t_test = (d0 + ff.overhead()) / 0.9;
    let w_th = 0.8 * w0;

    println!(
        "fault-free: delay = {:.1} ps, pulse {:.0} ps -> {:.0} ps at the output",
        d0 * 1e12,
        w_in * 1e12,
        w0 * 1e12
    );
    println!(
        "test setup: T = {:.1} ps, w_th = {:.0} ps",
        t_test * 1e12,
        w_th * 1e12
    );
    println!();
    println!(
        "{:>10}  {:>12}  {:>12}  {:>8}  {:>8}",
        "R (ohm)", "delay (ps)", "w_out (ps)", "DF?", "pulse?"
    );

    let mut path = put.instantiate_nominal(1e3);
    for r in [1.5e3, 2.5e3, 4e3, 6e3, 10e3, 20e3] {
        path.set_resistance(r)?;
        let d = path.worst_delay()?;
        let w = path.pulse_width_out(w_in, Polarity::PositiveGoing)?;
        let df = df_detects(t_test, d, ff);
        let pulse = w < w_th;
        println!(
            "{:>10.0}  {:>12.1}  {:>12.0}  {:>8}  {:>8}",
            r,
            d * 1e12,
            w * 1e12,
            if df { "CAUGHT" } else { "miss" },
            if pulse { "CAUGHT" } else { "miss" },
        );
    }

    println!();
    println!("past the critical resistance the bridge's extra delay collapses below the");
    println!("clock margin, but the pulse it mutilates still betrays it.");
    Ok(())
}
