//! The paper's qualitative claims (DESIGN.md success criteria 1–5),
//! verified at reduced scale. These are the *shape* checks of the
//! reproduction: who wins, where, and by how much — not absolute numbers.

use pulsar_analog::Polarity;
use pulsar_cells::{BuiltPath, PathFault, PathSpec, RopSite, Tech};
use pulsar_core::{DefectKind, DfStudy, McConfig, PathUnderTest, PulseStudy};
use pulsar_mc::Summary;

fn put(defect: DefectKind) -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

/// Criterion 1 (Figs. 2/3): a faulty pulse dies within a few logic
/// levels, and an internal ROP damages more than an external one at the
/// same resistance.
#[test]
fn c1_pulse_dies_within_a_few_levels_and_internal_beats_external() {
    let tech = Tech::generic_180nm();
    let spec = PathSpec::paper_chain();
    let w_in = 500e-12;

    let internal = PathFault::InternalRop {
        stage: 1,
        site: RopSite::PullUp,
        ohms: 8e3,
    };
    let external = PathFault::ExternalRop {
        stage: 1,
        ohms: 8e3,
    };

    let mut pi = BuiltPath::new(&spec, &internal, &vec![tech; 7]);
    let oi = pi
        .propagate_pulse(w_in, Polarity::PositiveGoing, None)
        .unwrap();
    let mut pe = BuiltPath::new(&spec, &external, &vec![tech; 7]);
    let oe = pe
        .propagate_pulse(w_in, Polarity::PositiveGoing, None)
        .unwrap();

    // Internal: dampened before the output (within a few logic levels).
    assert!(
        oi.dampened(),
        "internal 8 kΩ must kill the pulse, widths {:?}",
        oi.stage_widths
    );
    let died_at = oi.stage_widths.iter().position(|w| *w == 0.0).unwrap();
    assert!(
        died_at <= 4,
        "should die within a few levels, died at stage {died_at}"
    );

    // Same R external: strictly less damage (paper: Fig. 2 vs Fig. 3).
    assert!(
        oe.output_width > oi.output_width,
        "external {:.0e} vs internal {:.0e}",
        oe.output_width,
        oi.output_width
    );
}

/// Criterion 2 (Figs. 6/7): for ROPs the methods are comparable at
/// nominal settings, but DF coverage reacts more to its ±10 % parameter
/// (T) than pulse coverage does to ω_th.
#[test]
fn c2_rop_methods_comparable_but_df_more_parameter_sensitive() {
    let mc = McConfig::paper(10, 77);
    let rs: Vec<f64> = [1e3, 3e3, 8e3, 20e3, 50e3, 120e3].to_vec();

    let df = DfStudy::new(put(DefectKind::ExternalRop), mc.clone());
    let dcal = df.calibrate().unwrap();
    let dcurves = df.coverage(&dcal, &rs, &[0.9, 1.0, 1.1]).unwrap();

    let pulse = PulseStudy::new(put(DefectKind::ExternalRop), mc, Polarity::PositiveGoing);
    let pcal = pulse.calibrate().unwrap();
    let pcurves = pulse.coverage(&pcal, &rs, &[0.9, 1.0, 1.1]).unwrap();

    // Comparable at nominal: both methods' 50 % crossover within the same
    // sweep decade.
    let cross = |cov: &[f64]| {
        rs.iter()
            .zip(cov)
            .find(|(_, c)| **c >= 0.5)
            .map(|(r, _)| *r)
    };
    let rc_df = cross(&dcurves[1].coverage).expect("df covers the top of the sweep");
    let rc_pulse = cross(&pcurves[1].coverage).expect("pulse covers the top of the sweep");
    let ratio = (rc_df / rc_pulse).max(rc_pulse / rc_df);
    assert!(
        ratio <= 10.0,
        "nominal crossovers too far apart: df {rc_df:e}, pulse {rc_pulse:e}"
    );

    // Parameter sensitivity: mean spread between the ±10 % curves.
    let spread = |curves: &[pulsar_core::CoverageCurve]| {
        let hi = &curves[0].coverage; // df: 0.9 T0 detects most
        let lo = &curves[2].coverage;
        hi.iter().zip(lo).map(|(a, b)| (a - b).abs()).sum::<f64>() / hi.len() as f64
    };
    let s_df = spread(&dcurves);
    let s_pulse = spread(&pcurves);
    assert!(
        s_df > s_pulse,
        "DF must be the parameter-sensitive method: df spread {s_df:.3}, pulse {s_pulse:.3}"
    );
}

/// Criterion 3 (Figs. 8/9): for bridges the pulse test keeps detecting
/// far beyond the resistance where DF coverage collapses.
#[test]
fn c3_pulse_beats_df_on_bridges() {
    let mc = McConfig::paper(10, 99);
    let defect = DefectKind::Bridge {
        aggressor_high: false,
    };
    let rs: Vec<f64> = [1.5e3, 2.5e3, 4e3, 6e3].to_vec();

    let df = DfStudy::new(put(defect), mc.clone());
    let dcal = df.calibrate().unwrap();
    let dcov = &df.coverage(&dcal, &rs, &[1.0]).unwrap()[0].coverage;

    let pulse = PulseStudy::new(put(defect), mc, Polarity::PositiveGoing);
    let pcal = pulse.calibrate().unwrap();
    let pcov = &pulse.coverage(&pcal, &rs, &[1.0]).unwrap()[0].coverage;

    // Pulse dominates pointwise over the post-critical band...
    for (i, r) in rs.iter().enumerate() {
        assert!(
            pcov[i] >= dcov[i] - 1e-12,
            "at R = {r:.0}: pulse {} < df {}",
            pcov[i],
            dcov[i]
        );
    }
    // ...and strictly somewhere: there is a band DF has already lost.
    let strictly = rs.iter().enumerate().any(|(i, _)| pcov[i] > dcov[i] + 0.3);
    assert!(
        strictly,
        "expected a band where pulse clearly wins: pulse {pcov:?}, df {dcov:?}"
    );
}

/// Criterion 4 (Fig. 10): three regions exist and the attenuation region
/// carries the largest Monte Carlo spread.
#[test]
fn c4_attenuation_region_is_the_fluctuation_hotspot() {
    let mc = McConfig::paper(12, 2024);
    let study = PulseStudy::new(put(DefectKind::ExternalRop), mc, Polarity::PositiveGoing);
    let curve = study.nominal_curve().unwrap();

    let knee = curve
        .region3_start(study.region_tol, 0.0)
        .expect("region 3 exists");
    // The attenuation band is narrow; probe several widths below the knee
    // and take the worst spread (some probes land where every instance is
    // already fully dampened, which is quiet again).
    let attn_sigma = [0.80, 0.85, 0.90, 0.95]
        .iter()
        .map(|f| Summary::of(&study.fault_free_wouts_fixed_width(knee * f).unwrap()).sigma)
        .fold(0.0_f64, f64::max);
    let s_asym = Summary::of(&study.fault_free_wouts_fixed_width(knee * 1.4).unwrap());
    assert!(
        attn_sigma > s_asym.sigma,
        "attenuation spread {:.2e} must exceed asymptotic spread {:.2e}",
        attn_sigma,
        s_asym.sigma
    );
}

/// Criterion 6 (§3's core argument): "the standard deviation on path's
/// propagation delay is larger than that on the size of pulses which can
/// be propagated" — path delay accumulates per-stage fluctuations, the
/// pulse width only carries per-stage edge-skew differences.
#[test]
fn c6_delay_spread_exceeds_width_spread() {
    let mc = McConfig::paper(12, 314);
    let df = DfStudy::new(put(DefectKind::ExternalRop), mc.clone());
    let needs = df.fault_free_needs().unwrap();
    let s_delay = Summary::of(&needs);

    let pulse = PulseStudy::new(put(DefectKind::ExternalRop), mc, Polarity::PositiveGoing);
    let cal = pulse.calibrate().unwrap();
    let wouts = pulse.fault_free_wouts_fixed_width(cal.w_in).unwrap();
    let s_width = Summary::of(&wouts);

    let rel_delay = s_delay.sigma / s_delay.mean;
    let rel_width = s_width.sigma / s_width.mean;
    assert!(
        rel_delay > 2.0 * rel_width,
        "delay spread {rel_delay:.4} must clearly exceed width spread {rel_width:.4}"
    );
}

/// Portability: the headline claim (pulse beats DF on bridges) must
/// survive a technology swap — it is a ratio statement, not an absolute
/// one. Re-run criterion 3 on the slower 350 nm-class node.
#[test]
fn c3_holds_on_the_legacy_technology_too() {
    let tech = Tech::generic_350nm();
    let put = PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::Bridge {
            aggressor_high: false,
        },
        stage: 1,
        tech,
    };
    let mc = McConfig::paper(6, 404);

    let df = DfStudy::new(put.clone(), mc.clone());
    let dcal = df.calibrate().unwrap();

    let mut pulse = PulseStudy::new(put, mc, Polarity::PositiveGoing);
    // The slower node's transfer knee sits ~3x higher; widen the sweep.
    pulse.sweep = (0.2e-9, 4.0e-9, 40);
    let pcal = pulse.calibrate().unwrap();

    // The 350 nm node's critical resistance is higher (weaker drives);
    // sweep the post-critical band proportionally.
    let rs = [4e3, 8e3, 14e3];
    let dcov = &df.coverage(&dcal, &rs, &[1.0]).unwrap()[0].coverage;
    let pcov = &pulse.coverage(&pcal, &rs, &[1.0]).unwrap()[0].coverage;
    let pulse_total: f64 = pcov.iter().sum();
    let df_total: f64 = dcov.iter().sum();
    assert!(
        pulse_total > df_total + 0.3,
        "pulse must keep its bridge advantage at 350 nm: pulse {pcov:?} vs df {dcov:?}"
    );
}

/// Criterion 5 (Fig. 11): across fault sites of the benchmark, per-path
/// `R_min` varies widely and the best plans sit at low `ω_in`.
#[test]
fn c5_testgen_produces_varied_ranked_plans() {
    use pulsar_core::{plan_for_site, TestgenConfig};
    use pulsar_logic::c432_like;
    use pulsar_timing::TimingLibrary;

    let nl = c432_like();
    let lib = TimingLibrary::generic();
    let cfg = TestgenConfig {
        max_paths: 48,
        ..TestgenConfig::default()
    };

    let mut best_rmins = Vec::new();
    let mut best_wins = Vec::new();
    for gi in (0..nl.gate_count()).step_by(6) {
        let site = nl.gates()[gi].output;
        if let Ok(plans) = plan_for_site(&nl, site, &lib, &cfg) {
            if let Some(r) = plans[0].r_min {
                best_rmins.push(r);
                best_wins.push(plans[0].w_in);
            }
        }
    }
    // Random-logic sites are frequently unsensitizable (reconvergence);
    // real test generation skips them too. A handful is enough here.
    assert!(
        best_rmins.len() >= 4,
        "need several detectable sites, got {}",
        best_rmins.len()
    );
    let s = Summary::of(&best_rmins);
    assert!(
        s.max / s.min > 1.3,
        "R_min should vary across sites: {best_rmins:?}"
    );

    // The site with the smallest R_min uses one of the smaller w_in
    // values (paper: best paths at low ω_in/ω_th).
    let i_best = best_rmins
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    let w_med = pulsar_mc::quantile(&best_wins, 0.5);
    assert!(
        best_wins[i_best] <= w_med + 1e-12,
        "best site's w_in {:.2e} above the median {:.2e}",
        best_wins[i_best],
        w_med
    );
}
