// lint-src-corpus-path: crates/check/src/fixture.rs
//! SRC0001 fixture: the model checker's own sources are allowlisted,
//! so bare Relaxed/SeqCst produce no findings here.

use std::sync::atomic::{AtomicU64, Ordering};

static C: AtomicU64 = AtomicU64::new(0);

fn weaken_for_mutation() {
    C.store(1, Ordering::Relaxed);
    let _ = C.load(Ordering::SeqCst);
}
