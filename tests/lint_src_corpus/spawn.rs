// lint-src-corpus-path: crates/foo/src/spawn.rs
//! SRC0005 fixture: detached `thread::spawn` detection.

use std::thread;

fn detached() {
    thread::spawn(|| {});
}

fn detached_multiline() {
    std::thread::spawn(move || {
        let x = 1;
        let _ = x;
    });
}

fn detached_justified() {
    // spawn: dies with the process; polls a global flag, nothing to join.
    thread::spawn(|| {});
}

fn joined() {
    let h = thread::spawn(|| {});
    let _ = h.join();
}

fn retained(handles: &mut Vec<thread::JoinHandle<()>>) {
    handles.push(thread::spawn(|| {}));
}

fn returned() -> thread::JoinHandle<()> {
    thread::spawn(|| {})
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_detach() {
        std::thread::spawn(|| {});
    }
}
