// lint-src-corpus-path: crates/analog/src/waveform.rs
//! SRC0002–SRC0004 fixture: hot-path module rules.

use std::time::Instant;

fn unwrap_unjustified(v: &[f64]) -> f64 {
    *v.last().unwrap()
}

fn expect_unjustified(v: &[f64]) -> f64 {
    *v.first().expect("non-empty")
}

fn expect_justified(v: &[f64]) -> f64 {
    // hot-path: non-empty by the caller's contract.
    *v.last().expect("non-empty")
}

fn clock_in_step() -> Instant {
    Instant::now()
}

fn alloc_in_loop(n: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(vec![0.0; 8]);
    }
    out
}

fn alloc_in_while(mut n: usize) {
    while n > 0 {
        let _s = format!("lane {n}");
        n -= 1;
    }
}

fn alloc_in_loop_justified(n: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    for _ in 0..n {
        // hot-path: per-lane setup, runs once per batch.
        out.push(Vec::with_capacity(8));
    }
    out
}

fn nonallocating_constructor_in_loop(n: usize) {
    for _ in 0..n {
        let v: Vec<f64> = Vec::new();
        let _ = v;
    }
}

fn alloc_outside_loop(n: usize) -> Vec<f64> {
    let out = Vec::with_capacity(n);
    out
}

struct Wrapper;

trait Sample {
    fn sample(&self) -> f64;
}

// `impl ... for` must not be mistaken for a loop header.
impl Sample for Wrapper {
    fn sample(&self) -> f64 {
        let xs = [1.0f64; 4].to_vec();
        xs[0]
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate_freely() {
        for i in 0..4 {
            let _v = vec![i; 16];
            let _ = format!("{i}");
        }
    }
}
