// lint-src-corpus-path: crates/foo/src/ordering.rs
//! SRC0001 fixture: Relaxed/SeqCst justification rules.

use std::sync::atomic::{AtomicU64, Ordering};

static C: AtomicU64 = AtomicU64::new(0);

fn unjustified_relaxed() {
    C.fetch_add(1, Ordering::Relaxed);
}

fn unjustified_seqcst() -> u64 {
    C.load(Ordering::SeqCst)
}

fn justified_same_line() {
    C.fetch_add(1, Ordering::Relaxed); // ordering: pure event counter
}

fn justified_line_above() {
    // ordering: monotonic flag, no publication through it.
    C.fetch_add(1, Ordering::Relaxed);
}

fn justified_block_above() {
    // The counter is read only on the writing thread, so there is
    // nothing to publish.
    // ordering: Relaxed suffices — single-thread observer.
    // (See DESIGN.md §5.8.)
    C.fetch_add(1, Ordering::Relaxed);
}

fn comment_too_far_away() {
    // ordering: this comment is NOT adjacent to the site.
    let x = 1;
    C.fetch_add(x, Ordering::Relaxed);
}

fn mentions_in_string() -> &'static str {
    "Ordering::Relaxed inside a string literal is not a finding"
}

/* Ordering::SeqCst inside a block comment is not a finding. */

fn acquire_release_are_fine() {
    C.store(1, Ordering::Release);
    let _ = C.load(Ordering::Acquire);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        C.store(7, Ordering::SeqCst);
        assert_eq!(C.load(Ordering::Relaxed), 7);
    }
}
