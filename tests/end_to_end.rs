//! End-to-end integration: the full §4 pipeline — Monte Carlo sampling,
//! calibration, resistance sweep, coverage — on scaled-down settings.

use pulsar_analog::Polarity;
use pulsar_cells::{PathSpec, RopSite, Tech};
use pulsar_core::{DefectKind, DfStudy, McConfig, PathInstance, PathUnderTest, PulseStudy};

fn put(defect: DefectKind) -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

fn mc() -> McConfig {
    McConfig::paper(8, 1234)
}

#[test]
fn df_pipeline_calibrates_without_false_positives() {
    let study = DfStudy::new(put(DefectKind::ExternalRop), mc());
    let needs = study.fault_free_needs().unwrap();
    let cal = study.calibrate().unwrap();
    // The paper's criterion: even a 10 %-reduced clock passes everyone.
    for n in &needs {
        assert!(0.9 * cal.t0 >= *n - 1e-18);
    }
    // And the calibration is tight: the slowest instance defines T0.
    let worst = needs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!((0.9 * cal.t0 - worst).abs() < 1e-15);
}

#[test]
fn pulse_pipeline_calibrates_without_false_positives() {
    let study = PulseStudy::new(put(DefectKind::ExternalRop), mc(), Polarity::PositiveGoing);
    let cal = study.calibrate().unwrap();
    assert!(
        cal.w_in > cal.w_th,
        "the injected pulse must exceed the sensing threshold"
    );
    let wouts = study.fault_free_wouts(cal.w_in).unwrap();
    for w in &wouts {
        assert!(
            *w >= 1.1 * cal.w_th - 1e-18,
            "false positive at +10% sensor variation"
        );
    }
}

#[test]
fn coverage_is_monotone_in_the_method_parameter() {
    // Lower T ⇒ more DF detections; higher ω_th ⇒ more pulse detections.
    let df = DfStudy::new(put(DefectKind::ExternalRop), mc());
    let cal = df.calibrate().unwrap();
    let rs = [2e3, 10e3, 40e3];
    let curves = df.coverage(&cal, &rs, &[0.9, 1.0, 1.1]).unwrap();
    for i in 0..rs.len() {
        assert!(curves[0].coverage[i] >= curves[1].coverage[i] - 1e-12);
        assert!(curves[1].coverage[i] >= curves[2].coverage[i] - 1e-12);
    }

    let pulse = PulseStudy::new(put(DefectKind::ExternalRop), mc(), Polarity::PositiveGoing);
    let pcal = pulse.calibrate().unwrap();
    let pcurves = pulse.coverage(&pcal, &rs, &[0.9, 1.0, 1.1]).unwrap();
    for i in 0..rs.len() {
        assert!(pcurves[2].coverage[i] >= pcurves[1].coverage[i] - 1e-12);
        assert!(pcurves[1].coverage[i] >= pcurves[0].coverage[i] - 1e-12);
    }
}

#[test]
fn both_methods_catch_severe_opens_and_ignore_benign_ones() {
    for defect in [
        DefectKind::ExternalRop,
        DefectKind::InternalRop {
            site: RopSite::PullUp,
        },
    ] {
        let df = DfStudy::new(put(defect), mc());
        let dcal = df.calibrate().unwrap();
        let curves = df.coverage(&dcal, &[300.0, 250e3], &[1.0]).unwrap();
        assert!(
            curves[0].coverage[0] < 0.3,
            "{defect:?}: 300 ohm is benign for DF"
        );
        assert!(
            curves[0].coverage[1] > 0.9,
            "{defect:?}: 250 kohm must fail DF"
        );

        let pulse = PulseStudy::new(put(defect), mc(), Polarity::PositiveGoing);
        let pcal = pulse.calibrate().unwrap();
        let pcurves = pulse.coverage(&pcal, &[300.0, 250e3], &[1.0]).unwrap();
        assert!(
            pcurves[0].coverage[0] < 0.3,
            "{defect:?}: 300 ohm is benign for pulse"
        );
        assert!(
            pcurves[0].coverage[1] > 0.9,
            "{defect:?}: 250 kohm must dampen the pulse"
        );
    }
}

#[test]
fn same_seed_reproduces_the_study_bit_for_bit() {
    let study = PulseStudy::new(put(DefectKind::ExternalRop), mc(), Polarity::PositiveGoing);
    let a = study.fault_free_wouts(300e-12).unwrap();
    let b = study.fault_free_wouts(300e-12).unwrap();
    assert_eq!(a, b);
}

#[test]
fn defect_resistance_sweep_reuses_one_instance() {
    let p = put(DefectKind::ExternalRop);
    let mut inst = p.instantiate_nominal(500.0);
    let mut last = f64::INFINITY;
    for r in [500.0, 5e3, 50e3] {
        inst.set_resistance(r).unwrap();
        let w = inst
            .pulse_width_out(350e-12, Polarity::PositiveGoing)
            .unwrap();
        assert!(w <= last + 5e-12, "dampening must not relax with R");
        last = w;
    }
}
