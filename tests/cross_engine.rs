//! Cross-engine consistency: the logic-level pulse engine (the paper's
//! announced follow-up tool) must agree with the transistor-level
//! reference on the quantities the methodology depends on.

use pulsar_analog::{Edge, Polarity};
use pulsar_cells::{BuiltPath, PathFault, PathSpec, Tech};
use pulsar_core::{ModelFault, ModelPath, PathInstance};
use pulsar_timing::{calibrate_inverter, PathElement, PathTimingModel};

fn electrical_chain(n: usize, fault: PathFault) -> BuiltPath {
    let tech = Tech::generic_180nm();
    BuiltPath::new(&PathSpec::inverter_chain(n), &fault, &vec![tech; n])
}

fn calibrated_chain(n: usize) -> PathTimingModel {
    let inv = calibrate_inverter(&Tech::generic_180nm()).unwrap();
    PathTimingModel::new(vec![
        PathElement::Gate {
            model: inv,
            inverting: true,
            slow_rise: 0.0,
            slow_fall: 0.0
        };
        n
    ])
}

#[test]
fn calibrated_delay_tracks_the_electrical_reference() {
    let model = calibrated_chain(7);
    let mut elec = electrical_chain(7, PathFault::None);
    for edge in [Edge::Rising, Edge::Falling] {
        let d_e = elec
            .propagate_transition(edge, None)
            .unwrap()
            .delay
            .unwrap();
        let d_m = model.delay(edge);
        let err = (d_m - d_e).abs() / d_e;
        assert!(
            err < 0.20,
            "{edge:?}: model {d_m:.3e} vs electrical {d_e:.3e} ({:.0}%)",
            err * 100.0
        );
    }
}

#[test]
fn calibrated_filtering_threshold_is_in_the_electrical_ballpark() {
    let model = calibrated_chain(7);
    let w_model = model
        .min_passing_width(Polarity::PositiveGoing, 3e-9, 1e-12)
        .expect("model chain passes wide pulses");

    // Electrical minimum passing width by bisection.
    let mut elec = electrical_chain(7, PathFault::None);
    let mut lo = 20e-12;
    let mut hi = 2e-9;
    while hi - lo > 4e-12 {
        let mid = 0.5 * (lo + hi);
        let out = elec
            .propagate_pulse(mid, Polarity::PositiveGoing, None)
            .unwrap();
        if out.dampened() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let w_elec = 0.5 * (lo + hi);
    let ratio = (w_model / w_elec).max(w_elec / w_model);
    assert!(
        ratio < 1.6,
        "filtering thresholds diverge: model {w_model:.3e}, electrical {w_elec:.3e}"
    );
}

#[test]
fn both_engines_agree_on_the_dampening_trend() {
    // Sweep an external ROP; both engines must order the output widths
    // identically (monotone shrink), even if absolute values differ.
    let c_branch = 13e-15;
    let rs = [1e3, 8e3, 20e3, 50e3];

    let mut elec = electrical_chain(
        7,
        PathFault::ExternalRop {
            stage: 1,
            ohms: rs[0],
        },
    );
    let mut model = ModelPath::new(
        calibrated_chain(7),
        Some(ModelFault::RcAfter { stage: 1, c_branch }),
        rs[0],
    );

    let w_in = 420e-12;
    let mut last_e = f64::INFINITY;
    let mut last_m = f64::INFINITY;
    for r in rs {
        elec.set_fault_resistance(r).unwrap();
        let we = elec
            .propagate_pulse(w_in, Polarity::PositiveGoing, None)
            .unwrap()
            .output_width;
        model.set_resistance(r).unwrap();
        let wm = model
            .pulse_width_out(w_in, Polarity::PositiveGoing)
            .unwrap();
        assert!(we <= last_e + 5e-12, "electrical non-monotone at {r:e}");
        assert!(wm <= last_m + 5e-12, "model non-monotone at {r:e}");
        last_e = we;
        last_m = wm;
    }
    // Both must have fully dampened by the top of the sweep.
    assert_eq!(last_m, 0.0, "model should dampen by 50 kΩ");
    assert!(
        last_e < 100e-12,
        "electrical should (nearly) dampen by 50 kΩ, got {last_e:e}"
    );
}

#[test]
fn engines_agree_on_one_edge_rop_asymmetry() {
    // Internal pull-up ROP: both engines must report a large rising/
    // falling delay split for the affected sensitization.
    let r = 20e3;
    let c_load = 30e-15;
    let mut elec = electrical_chain(
        5,
        PathFault::InternalRop {
            stage: 1,
            site: pulsar_cells::RopSite::PullUp,
            ohms: r,
        },
    );
    let de_r = elec
        .propagate_transition(Edge::Rising, None)
        .unwrap()
        .delay
        .unwrap();
    let de_f = elec
        .propagate_transition(Edge::Falling, None)
        .unwrap()
        .delay
        .unwrap();

    let mut model = ModelPath::new(
        calibrated_chain(5),
        Some(ModelFault::EdgeSlow {
            stage: 1,
            edge: Edge::Rising,
            c_load,
        }),
        r,
    );
    let dm_r = model.delay(Edge::Rising).unwrap();
    let dm_f = model.delay(Edge::Falling).unwrap();

    assert!(
        de_r > de_f + 100e-12,
        "electrical asymmetry missing: {de_r:e} vs {de_f:e}"
    );
    assert!(
        dm_r > dm_f + 100e-12,
        "model asymmetry missing: {dm_r:e} vs {dm_f:e}"
    );
    // The slowed direction agrees.
    assert_eq!(de_r > de_f, dm_r > dm_f);
}
