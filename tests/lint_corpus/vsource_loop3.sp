three-source loop a-b-c-a
V1 a b DC 0.5
V2 b c DC 0.5
V3 c a DC 0.5
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
.tran 10p 4n
.end
