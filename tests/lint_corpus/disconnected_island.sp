resistor island with no connection to the rest at all
V1 in 0 DC 1.0
R1 in out 1k
R2 x y 1k
.tran 10p 4n
.end
