mosfet with a negative channel width
.model nx nmos
Vdd vdd 0 DC 1.8
Vg g 0 DC 1.8
R1 vdd out 10k
M1 out g 0 nx W=-1u L=0.18u
.tran 10p 4n
.end
