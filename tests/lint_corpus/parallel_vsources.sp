two sources across the same node pair
V1 a 0 DC 1.0
V2 a 0 DC 2.0
R1 a 0 1k
.tran 10p 4n
.end
