voltage source shorted onto a single node
V1 a a DC 1.0
R1 a 0 1k
.tran 10p 4n
.end
