resistor pair reachable only through a capacitor
V1 in 0 DC 1.0
R1 in out 1k
C1 out x 1p
R2 x y 1k
.tran 10p 4n
.end
