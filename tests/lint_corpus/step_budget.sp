transient window needs more points than the budget allows
V1 in 0 DC 1.0
R1 in out 1k
C1 out 0 0.1p
.tran 1f 10m
.end
