resistor card with a missing value
V1 in 0 DC 1.0
R1 in out
.tran 10p 4n
.end
