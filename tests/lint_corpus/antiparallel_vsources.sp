two sources across the same pair, opposite orientation
V1 a b DC 1.0
V2 b a DC 1.0
R1 a 0 1k
R2 b 0 1k
.tran 10p 4n
.end
