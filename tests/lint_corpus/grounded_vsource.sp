voltage source with both terminals grounded
V1 0 gnd DC 1.0
R1 a 0 1k
V2 a 0 DC 1.0
.tran 10p 4n
.end
