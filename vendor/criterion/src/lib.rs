#![warn(missing_docs)]

//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a deliberately
//! simple measurement model: a short warm-up, then a fixed batch of
//! timed iterations, reporting mean wall time per iteration. There is no
//! outlier analysis, no plotting, and no CLI argument handling.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MIN_MEASURE_ITERS: u64 = 10;
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

/// Times one benchmark body.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records mean wall time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < MIN_MEASURE_ITERS || start.elapsed() < TARGET_MEASURE_TIME {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {label:<48} {:>12.3?}/iter", b.mean);
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under this group's prefix.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), |b| {
            f(b)
        });
        self
    }

    /// Runs one parameterized benchmark; the input is passed through to
    /// the body.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; here it is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a (possibly parameterized) benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function-plus-parameter id, rendered `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted id forms for [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
