#![warn(missing_docs)]

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the small slice of `rand`'s API it
//! actually uses: [`rngs::StdRng`] (a deterministic, seedable generator),
//! the [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, and the [`RngExt`]
//! convenience methods (`random::<T>()`, `random_range(..)`).
//!
//! Determinism contract (relied on by the Monte Carlo driver): a
//! `StdRng::seed_from_u64(s)` stream is a pure function of `s` — same
//! seed, same platform-independent sequence, forever. The generator is
//! xoshiro256++ seeded through SplitMix64, which passes the statistical
//! tests that matter for Monte Carlo work; it is **not** cryptographic.

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; everything that can produce raw
/// words can serve as an `Rng` bound.
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG stream (`rand`'s `Standard`
/// distribution, reduced to what the workspace draws).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` guaranteed by the caller.
    fn draw_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn draw_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift range reduction (Lemire); the tiny bias
                // for astronomically large spans is irrelevant here.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi128 as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator
/// (`rand`'s `Rng` extension surface).
pub trait RngExt: RngCore {
    /// Uniform draw of a [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform draw from the half-open integer range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample an empty range");
        T::draw_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ with SplitMix64
    /// seed expansion. Matches the workspace's needs for `rand::rngs::StdRng`
    /// (it is *not* the upstream ChaCha-based implementation, and makes a
    /// stronger cross-version stream-stability promise instead).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99, "span [{min}, {max}] too narrow");
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut dyn super::RngCore) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 1.0);
    }
}
