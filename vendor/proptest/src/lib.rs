#![warn(missing_docs)]

//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `x in strategy` / `x: Type` parameter forms, range and tuple
//! strategies, [`strategy::Strategy::prop_map`] /
//! [`strategy::Strategy::prop_recursive`],
//! [`prop_oneof!`], `collection::vec`, `any::<T>()`, and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports the sampled inputs as-is.
//! * **Fixed deterministic seed** — every run explores the same cases, so
//!   CI results are reproducible (upstream persists failing seeds
//!   instead).

pub mod strategy;

pub mod test_runner {
    //! Test-case configuration and the runner's error type.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; electrical-level property tests
            // here are heavier per case, so the vendored default is lower.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why one sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is resampled.
        Reject,
        /// `prop_assert!`-family failure: the property is violated.
        Fail(String),
    }

    /// Deterministic generator backing the sampled cases (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator all vendored property tests use.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E3779B97F4A7C15,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, n)`; `n > 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies per type.

    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug + 'static {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning many magnitudes — the
            // useful slice of `f64` for numeric property tests.
            let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        BoxedStrategy::from_fn(T::arbitrary_value)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn uniformly from `size`.
    pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + Clone + 'static,
    {
        assert!(size.start < size.end, "empty vec size range");
        BoxedStrategy::from_fn(move |rng| {
            let n = size.start + rng.below((size.end - size.start) as u64) as usize;
            (0..n).map(|_| element.sample(rng)).collect()
        })
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    /// Alias so `prop::collection::vec(..)` works as in upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs property-test functions: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test fn per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg($cfg:expr);) => {};
    (cfg($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { cfg($cfg); body($body); unparsed($($params)*); parsed() }
        }
        $crate::__proptest_fns! { cfg($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: normalizes the parameter list
/// (`x in strategy` / `x: Type`) and expands the sampling loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // -- parameter munchers -------------------------------------------------
    (cfg($cfg:expr); body($body:block);
     unparsed($n:ident in $s:expr, $($rest:tt)*); parsed($($p:tt)*)) => {
        $crate::__proptest_case! { cfg($cfg); body($body); unparsed($($rest)*); parsed($($p)* ($n, $s)) }
    };
    (cfg($cfg:expr); body($body:block);
     unparsed($n:ident in $s:expr); parsed($($p:tt)*)) => {
        $crate::__proptest_case! { cfg($cfg); body($body); unparsed(); parsed($($p)* ($n, $s)) }
    };
    (cfg($cfg:expr); body($body:block);
     unparsed($n:ident : $t:ty, $($rest:tt)*); parsed($($p:tt)*)) => {
        $crate::__proptest_case! { cfg($cfg); body($body); unparsed($($rest)*); parsed($($p)* ($n, $crate::arbitrary::any::<$t>())) }
    };
    (cfg($cfg:expr); body($body:block);
     unparsed($n:ident : $t:ty); parsed($($p:tt)*)) => {
        $crate::__proptest_case! { cfg($cfg); body($body); unparsed(); parsed($($p)* ($n, $crate::arbitrary::any::<$t>())) }
    };
    // -- runner -------------------------------------------------------------
    (cfg($cfg:expr); body($body:block); unparsed(); parsed($(($n:ident, $s:expr))*)) => {{
        use $crate::strategy::Strategy as _;
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        // Strategies first, bound to the parameter names; the sampled
        // values shadow them inside each iteration.
        $(let $n = $s;)*
        let mut __accepted: u32 = 0;
        let mut __rejected: u32 = 0;
        while __accepted < __cfg.cases {
            $(let $n = $n.sample(&mut __rng);)*
            let __inputs = format!(concat!($(stringify!($n), " = {:?}, ",)*), $(&$n,)*);
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
            match __outcome {
                Ok(()) => __accepted += 1,
                Err($crate::test_runner::TestCaseError::Reject) => {
                    __rejected += 1;
                    assert!(
                        __rejected < __cfg.cases * 64 + 256,
                        "too many prop_assume! rejections ({__rejected}); strategy too narrow"
                    );
                }
                Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!("property failed: {msg}\n  inputs: {__inputs}");
                }
            }
        }
    }};
}

/// Asserts a property inside a [`proptest!`] body, reporting the sampled
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "{} != {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)*);
    }};
}

/// Rejects the current inputs (they are resampled, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        use $crate::strategy::Strategy as _;
        $crate::strategy::union(vec![$(($s).boxed()),+])
    }};
}
