//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps draws from a
//! [`TestRng`] to values. Unlike upstream
//! proptest there is no value tree and no shrinking: `sample` produces a
//! final value directly.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for producing values of one type from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug + 'static;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for every value this one produces.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy::from_fn(move |rng| f(self.sample(rng)))
    }

    /// A recursive strategy: values are either drawn from `self` (the
    /// leaf) or from `recurse` applied to the shallower levels, nested up
    /// to `depth` times. `_desired_size` and `_expected_branch_size` are
    /// accepted for upstream signature compatibility and ignored — this
    /// implementation bounds growth by mixing the leaf back in at every
    /// level instead.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = union(vec![leaf.clone(), deeper]);
        }
        current
    }

    /// Type-erased, cheaply clonable form of this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.sample(rng))
    }
}

/// A type-erased strategy; clones share the underlying sampler.
pub struct BoxedStrategy<V> {
    sampler: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<V> BoxedStrategy<V> {
    /// Wraps a sampling function as a strategy.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sampler)(rng)
    }

    fn boxed(self) -> BoxedStrategy<V> {
        self
    }
}

/// Uniform choice among strategies of the same value type (backs
/// [`prop_oneof!`](crate::prop_oneof)).
pub fn union<V: Debug + 'static>(choices: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
    assert!(!choices.is_empty(), "union of zero strategies");
    BoxedStrategy::from_fn(move |rng| {
        let idx = rng.below(choices.len() as u64) as usize;
        choices[idx].sample(rng)
    })
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64/i64 inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy that always yields clones of one value (upstream's
/// `Just`).
#[derive(Debug, Clone)]
pub struct Just<V: Clone + Debug + 'static>(pub V);

impl<V: Clone + Debug + 'static> Strategy for Just<V> {
    type Value = V;

    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1_000 {
            let f = (1.5f64..9.25).sample(&mut rng);
            assert!((1.5..9.25).contains(&f));
            let i = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic();
        let s = ((0u32..10), (0.0f64..1.0)).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn recursion_terminates_and_mixes_depths() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => size(a) + size(b),
            }
        }
        let strat = (0u64..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic();
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(size(&strat.sample(&mut rng)));
        }
        assert!(max > 1, "recursion should sometimes nest");
        assert!(max <= 1 << 5, "depth bound should hold");
    }
}
