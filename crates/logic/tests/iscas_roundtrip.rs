//! Property test: the ISCAS-85 writer/parser round-trip preserves circuit
//! function on random netlists.

use proptest::prelude::*;
use pulsar_logic::{parse_iscas85, random_netlist, simulate, write_iscas85, BenchParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_then_parse_preserves_function(seed in 0u64..20_000,
                                           inputs in 2usize..10,
                                           gates in 3usize..40,
                                           layers in 1usize..6) {
        let nl = random_netlist(
            &BenchParams { inputs, gates, outputs: 2.min(gates), layers },
            seed,
        );
        let text = write_iscas85(&nl);
        let back = parse_iscas85(&text).expect("own output must parse");

        prop_assert_eq!(back.inputs().len(), nl.inputs().len());
        prop_assert_eq!(back.outputs().len(), nl.outputs().len());
        prop_assert_eq!(back.gate_count(), nl.gate_count());

        // 64 random patterns per case: all primary outputs must agree.
        let words: Vec<u64> = (0..inputs as u64)
            .map(|i| seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32 * 7) ^ i)
            .collect();
        let va = simulate(&nl, &words).expect("acyclic");
        let vb = simulate(&back, &words).expect("acyclic");
        for (oa, ob) in nl.outputs().iter().zip(back.outputs()) {
            // Outputs correspond by name, not necessarily by index.
            let name = nl.signal_name(*oa);
            let ob_by_name = back.find_signal(name).expect("name preserved");
            prop_assert_eq!(
                va[oa.index()],
                vb[ob_by_name.index()],
                "output {} diverged",
                name
            );
            let _ = ob;
        }
    }
}
