//! Property test: sensitization soundness on random circuits.
//!
//! For random layered netlists, every vector the justifier returns must —
//! when simulated — actually hold every side input of the path at its
//! non-controlling value. (Completeness is not tested: `Ok(None)` may be
//! conservative under the hazard-aware blocking rule.)

use proptest::prelude::*;
use pulsar_logic::{
    enumerate_paths, random_netlist, sensitize, simulate_bool, BenchParams, Netlist, Path,
};

fn verify_sensitized(nl: &Netlist, path: &Path, pi: &[bool]) {
    let vals = simulate_bool(nl, pi).expect("acyclic by construction");
    for step in &path.steps {
        let gate = nl.gate(step.gate);
        for (pin, &sig) in gate.inputs.iter().enumerate() {
            if pin != step.pin {
                assert_eq!(
                    vals[sig.index()],
                    gate.kind.side_input_value(),
                    "side input {} of {:?} not at its non-controlling value",
                    nl.signal_name(sig),
                    gate.kind,
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn returned_vectors_really_sensitize(seed in 0u64..10_000,
                                         inputs in 3usize..8,
                                         gates in 6usize..28,
                                         layers in 2usize..6) {
        let nl = random_netlist(
            &BenchParams { inputs, gates, outputs: 2.min(gates), layers },
            seed,
        );
        // Bounded enumeration; skip pathological cases.
        let Ok(paths) = enumerate_paths(&nl, None, 300) else {
            return Ok(());
        };
        let mut checked = 0;
        for path in paths.iter().take(40) {
            match sensitize(&nl, path, 50_000) {
                Ok(Some(vec)) => {
                    verify_sensitized(&nl, path, &vec.to_pi_bools(&nl));
                    checked += 1;
                }
                Ok(None) => {}       // conservative rejection is fine
                Err(_) => {}         // budget blown: fine
            }
        }
        // Not every random circuit yields sensitizable paths, but across
        // the corpus most do; nothing to assert when none did.
        let _ = checked;
    }

    /// Don't-care inputs really are don't-cares: flipping them keeps the
    /// sensitization valid.
    #[test]
    fn dont_cares_do_not_matter(seed in 0u64..5_000) {
        let nl = random_netlist(
            &BenchParams { inputs: 6, gates: 16, outputs: 2, layers: 4 },
            seed,
        );
        let Ok(paths) = enumerate_paths(&nl, None, 200) else {
            return Ok(());
        };
        for path in paths.iter().take(10) {
            if let Ok(Some(vec)) = sensitize(&nl, path, 50_000) {
                // All don't-cares at 0 and all at 1 must both sensitize.
                let zeros = vec.to_pi_bools(&nl);
                let ones: Vec<bool> = nl
                    .inputs()
                    .iter()
                    .map(|s| vec.value(*s).unwrap_or(true))
                    .collect();
                verify_sensitized(&nl, path, &zeros);
                verify_sensitized(&nl, path, &ones);
            }
        }
    }
}
