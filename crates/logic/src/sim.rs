//! Bit-parallel logic simulation (64 patterns per pass).

use crate::error::LogicError;
use crate::netlist::Netlist;

/// Simulates the netlist over 64 parallel patterns.
///
/// `pi_words[k]` carries 64 values of primary input `k` (bit `j` = pattern
/// `j`). Returns one word per *signal*, indexed by [`SignalId::index`](crate::SignalId::index)
/// so both intermediate nets and outputs can be
/// observed.
///
/// # Errors
///
/// [`LogicError::CombinationalLoop`] for cyclic structures.
///
/// # Panics
///
/// Panics if `pi_words.len()` differs from the number of primary inputs.
pub fn simulate(nl: &Netlist, pi_words: &[u64]) -> Result<Vec<u64>, LogicError> {
    assert_eq!(
        pi_words.len(),
        nl.inputs().len(),
        "one input word per primary input"
    );
    let order = nl.topological_order()?;
    let mut values = vec![0u64; nl.signal_count()];
    for (w, s) in pi_words.iter().zip(nl.inputs()) {
        values[s.index()] = *w;
    }
    let mut ins: Vec<u64> = Vec::new();
    for g in order {
        let gate = nl.gate(g);
        ins.clear();
        ins.extend(gate.inputs.iter().map(|s| values[s.index()]));
        values[gate.output.index()] = gate.kind.eval_words(&ins);
    }
    Ok(values)
}

/// Single-pattern convenience wrapper over [`simulate`]: plain booleans in,
/// one boolean per signal out.
///
/// # Errors
///
/// Propagates [`LogicError::CombinationalLoop`].
///
/// # Panics
///
/// Panics on input-count mismatch.
pub fn simulate_bool(nl: &Netlist, pi: &[bool]) -> Result<Vec<bool>, LogicError> {
    let words: Vec<u64> = pi.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let vals = simulate(nl, &words)?;
    Ok(vals.into_iter().map(|w| w & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::netlist::GateKind;
    use proptest::prelude::*;

    #[test]
    fn and_of_not_matches_hand_truth_table() {
        // y = AND(NOT(a), b)
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let na = nl.add_gate(GateKind::Not, &[a], "na").unwrap();
        let y = nl.add_gate(GateKind::And, &[na, b], "y").unwrap();
        nl.mark_output(y);

        for (av, bv, want) in [
            (false, false, false),
            (false, true, true),
            (true, false, false),
            (true, true, false),
        ] {
            let vals = simulate_bool(&nl, &[av, bv]).unwrap();
            assert_eq!(vals[y.index()], want, "a={av} b={bv}");
        }
    }

    #[test]
    fn bit_parallel_matches_sequential() {
        // y = XOR(NAND(a,b), NOR(a,c))
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::Nand, &[a, b], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Nor, &[a, c], "g2").unwrap();
        let y = nl.add_gate(GateKind::Xor, &[g1, g2], "y").unwrap();
        nl.mark_output(y);

        // All 8 patterns in one word.
        let wa = 0b10101010u64;
        let wb = 0b11001100u64;
        let wc = 0b11110000u64;
        let words = simulate(&nl, &[wa, wb, wc]).unwrap();
        for p in 0..8 {
            let bit = |w: u64| (w >> p) & 1 == 1;
            let seq = simulate_bool(&nl, &[bit(wa), bit(wb), bit(wc)]).unwrap();
            assert_eq!(bit(words[y.index()]), seq[y.index()], "pattern {p}");
        }
    }

    proptest! {
        /// De Morgan: NAND(a,b) == OR(NOT a, NOT b), on random words.
        #[test]
        fn de_morgan_holds(wa: u64, wb: u64) {
            let mut nl = Netlist::new();
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let nand = nl.add_gate(GateKind::Nand, &[a, b], "nand").unwrap();
            let na = nl.add_gate(GateKind::Not, &[a], "na").unwrap();
            let nb = nl.add_gate(GateKind::Not, &[b], "nb").unwrap();
            let or = nl.add_gate(GateKind::Or, &[na, nb], "or").unwrap();
            nl.mark_output(nand);
            nl.mark_output(or);
            let vals = simulate(&nl, &[wa, wb]).unwrap();
            prop_assert_eq!(vals[nand.index()], vals[or.index()]);
        }

        /// XOR chain associativity on random words.
        #[test]
        fn xor_chain_is_parity(wa: u64, wb: u64, wc: u64) {
            let mut nl = Netlist::new();
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let c = nl.add_input("c");
            let x1 = nl.add_gate(GateKind::Xor, &[a, b], "x1").unwrap();
            let x2 = nl.add_gate(GateKind::Xor, &[x1, c], "x2").unwrap();
            let flat = nl.add_gate(GateKind::Xor, &[a, b, c], "flat").unwrap();
            nl.mark_output(x2);
            nl.mark_output(flat);
            let vals = simulate(&nl, &[wa, wb, wc]).unwrap();
            prop_assert_eq!(vals[x2.index()], vals[flat.index()]);
        }
    }
}
