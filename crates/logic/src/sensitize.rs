//! Path sensitization: find primary-input values that hold every side
//! input of a path at its non-controlling value.
//!
//! This is the structural prerequisite of the paper's method (§3): with
//! side inputs non-controlling, the injected pulse is the only activity on
//! the path, and its survival at the output depends only on the path's
//! electrical health. The justifier below is a small branch-and-bound
//! engine in the D-algorithm tradition: requirements are pushed backward
//! through gate functions toward the primary inputs, branching where a
//! controlled output admits several input explanations, with conflict
//! detection on reconvergent fan-out.
//!
//! On-path signals are additionally *blocked* from static justification:
//! a vector that needs an on-path net at a constant value cannot carry the
//! pulse robustly, so such branches are rejected (hazard-conscious
//! sensitization).

use crate::error::LogicError;
use crate::netlist::{GateKind, Netlist, SignalId};
use crate::paths::Path;

/// A (partial) primary-input assignment produced by [`sensitize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputVector {
    /// Per-signal assignment, indexed by [`SignalId::index`](crate::SignalId::index); only primary
    /// inputs are populated. `None` means don't-care.
    pub values: Vec<Option<bool>>,
}

impl InputVector {
    /// The assignment of one signal (meaningful for primary inputs).
    pub fn value(&self, s: SignalId) -> Option<bool> {
        self.values[s.index()]
    }

    /// Full boolean PI vector with don't-cares filled as `false`, in the
    /// netlist's PI order — directly usable with
    /// [`simulate_bool`](crate::simulate_bool).
    pub fn to_pi_bools(&self, nl: &Netlist) -> Vec<bool> {
        nl.inputs()
            .iter()
            .map(|s| self.values[s.index()].unwrap_or(false))
            .collect()
    }
}

/// Searches for an input vector sensitizing `path`.
///
/// Returns `Ok(Some(vector))` when found, `Ok(None)` when the path is
/// provably unsensitizable (conflicting side-input requirements).
///
/// # Errors
///
/// [`LogicError::PathLimit`] when the search exceeds `max_backtracks`
/// failed branches — the result is then unknown, and callers typically
/// skip the path.
pub fn sensitize(
    nl: &Netlist,
    path: &Path,
    max_backtracks: usize,
) -> Result<Option<InputVector>, LogicError> {
    // Signals carrying the pulse: may not be statically justified.
    let mut blocked = vec![false; nl.signal_count()];
    for s in path.signals(nl) {
        blocked[s.index()] = true;
    }

    // Side-input requirements.
    let mut requirements: Vec<(SignalId, bool)> = Vec::new();
    for step in &path.steps {
        let gate = nl.gate(step.gate);
        let on_path = gate.inputs[step.pin];
        let side_val = gate.kind.side_input_value();
        for (pin, &sig) in gate.inputs.iter().enumerate() {
            if pin == step.pin {
                continue;
            }
            if sig == on_path || blocked[sig.index()] {
                // The side input is electrically the pulse carrier (or
                // another on-path net): no static value can sensitize it.
                return Ok(None);
            }
            requirements.push((sig, side_val));
        }
    }

    let mut engine = Justify {
        nl,
        assigned: vec![None; nl.signal_count()],
        trail: Vec::new(),
        blocked,
        backtracks: 0,
        max_backtracks,
    };

    for &(sig, val) in &requirements {
        if !engine.justify(sig, val) {
            return if engine.budget_exhausted() {
                Err(LogicError::PathLimit {
                    limit: max_backtracks,
                })
            } else {
                Ok(None)
            };
        }
    }

    let values = nl
        .inputs()
        .iter()
        .fold(vec![None; nl.signal_count()], |mut acc, &s| {
            acc[s.index()] = engine.assigned[s.index()];
            acc
        });
    Ok(Some(InputVector { values }))
}

struct Justify<'a> {
    nl: &'a Netlist,
    assigned: Vec<Option<bool>>,
    trail: Vec<SignalId>,
    blocked: Vec<bool>,
    backtracks: usize,
    max_backtracks: usize,
}

impl Justify<'_> {
    fn budget_exhausted(&self) -> bool {
        self.backtracks >= self.max_backtracks
    }

    fn savepoint(&self) -> usize {
        self.trail.len()
    }

    fn rollback(&mut self, sp: usize) {
        while self.trail.len() > sp {
            let s = self.trail.pop().expect("trail length checked");
            self.assigned[s.index()] = None;
        }
    }

    /// Tries to make signal `s` take value `v`; true on success. On
    /// failure the assignment state is unchanged.
    fn justify(&mut self, s: SignalId, v: bool) -> bool {
        if self.blocked[s.index()] {
            return false;
        }
        match self.assigned[s.index()] {
            Some(cur) => return cur == v,
            None => {
                self.assigned[s.index()] = Some(v);
                self.trail.push(s);
            }
        }
        let Some(gate) = self.nl.driver(s) else {
            return true; // primary input: freely assignable
        };
        let kind = gate.kind;
        let inputs = gate.inputs.clone();
        let ok = match kind {
            GateKind::Not => self.justify(inputs[0], !v),
            GateKind::Buf => self.justify(inputs[0], v),
            GateKind::And => self.gate_and(&inputs, v, false),
            GateKind::Nand => self.gate_and(&inputs, !v, false),
            GateKind::Or => self.gate_and(&inputs, !v, true),
            GateKind::Nor => self.gate_and(&inputs, v, true),
            GateKind::Xor => self.gate_parity(&inputs, v),
            GateKind::Xnor => self.gate_parity(&inputs, !v),
        };
        if !ok {
            // Undo this signal's own assignment (children rolled back by
            // the helpers).
            let popped = self.trail.pop().expect("assigned above");
            debug_assert_eq!(popped, s);
            self.assigned[s.index()] = None;
        }
        ok
    }

    /// AND-family justification with optional input negation (`neg` turns
    /// the AND view into the OR view by De Morgan): `want_all` = the gate
    /// output (pre-inversion) is the non-controlled value, requiring every
    /// input; otherwise one controlling input suffices (branch point).
    ///
    /// Concretely: for `neg = false`, output 1 ⇔ all inputs 1;
    /// for `neg = true` (OR via De Morgan), output 0 ⇔ all inputs 0.
    fn gate_and(&mut self, inputs: &[SignalId], want_all: bool, neg: bool) -> bool {
        let all_val = !neg; // value every input needs in the "all" case
        if want_all {
            let sp = self.savepoint();
            for &i in inputs {
                if !self.justify(i, all_val) {
                    self.rollback(sp);
                    return false;
                }
            }
            true
        } else {
            // One input at the controlling value: try each.
            for &i in inputs {
                if self.budget_exhausted() {
                    return false;
                }
                let sp = self.savepoint();
                if self.justify(i, !all_val) {
                    return true;
                }
                self.rollback(sp);
                self.backtracks += 1;
            }
            false
        }
    }

    /// Parity justification: inputs must XOR to `target`. Branches on the
    /// first input's value and recurses on the rest.
    fn gate_parity(&mut self, inputs: &[SignalId], target: bool) -> bool {
        match inputs {
            [] => !target, // empty parity is 0
            [one] => self.justify(*one, target),
            [first, rest @ ..] => {
                for b in [false, true] {
                    if self.budget_exhausted() {
                        return false;
                    }
                    let sp = self.savepoint();
                    if self.justify(*first, b) && self.gate_parity(rest, target ^ b) {
                        return true;
                    }
                    self.rollback(sp);
                    self.backtracks += 1;
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::netlist::{GateKind, Netlist};
    use crate::paths::enumerate_paths;
    use crate::sim::simulate_bool;

    /// Checks by simulation that every side input of `path` really sits at
    /// its non-controlling value under `vec`.
    fn verify(nl: &Netlist, path: &Path, vec: &InputVector) {
        let vals = simulate_bool(nl, &vec.to_pi_bools(nl)).unwrap();
        for step in &path.steps {
            let gate = nl.gate(step.gate);
            for (pin, &sig) in gate.inputs.iter().enumerate() {
                if pin != step.pin {
                    assert_eq!(
                        vals[sig.index()],
                        gate.kind.side_input_value(),
                        "side input {} of gate {:?} not sensitized",
                        nl.signal_name(sig),
                        gate.kind
                    );
                }
            }
        }
    }

    #[test]
    fn simple_nand_side_input() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Nand, &[a, b], "y").unwrap();
        nl.mark_output(y);
        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let p = paths.iter().find(|p| p.from == a).unwrap();
        let v = sensitize(&nl, p, 1000).unwrap().expect("sensitizable");
        assert_eq!(v.value(b), Some(true));
        verify(&nl, p, &v);
    }

    #[test]
    fn nor_side_inputs_need_zero() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y = nl.add_gate(GateKind::Nor, &[a, b, c], "y").unwrap();
        nl.mark_output(y);
        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let p = paths.iter().find(|p| p.from == b).unwrap();
        let v = sensitize(&nl, p, 1000).unwrap().expect("sensitizable");
        assert_eq!(v.value(a), Some(false));
        assert_eq!(v.value(c), Some(false));
        verify(&nl, p, &v);
    }

    #[test]
    fn side_value_justified_through_logic() {
        // Side input of the output NAND is itself a NAND: needs value 1,
        // justified by driving one of its inputs to 0.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let side = nl.add_gate(GateKind::Nand, &[b, c], "side").unwrap();
        let y = nl.add_gate(GateKind::Nand, &[a, side], "y").unwrap();
        nl.mark_output(y);
        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let p = paths.iter().find(|p| p.from == a && p.len() == 1).unwrap();
        let v = sensitize(&nl, p, 1000).unwrap().expect("sensitizable");
        verify(&nl, p, &v);
        // At least one of b/c must be 0 to make `side` = 1.
        assert!(
            v.value(b) == Some(false) || v.value(c) == Some(false),
            "justification must drive side to 1: {v:?}"
        );
    }

    #[test]
    fn reconvergence_conflict_is_unsensitizable() {
        // y = AND(a, NOT(a)): the path through pin 0 needs NOT(a) = 1,
        // i.e. a = 0 — but `a` is the pulse carrier (blocked).
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Not, &[a], "na").unwrap();
        let y = nl.add_gate(GateKind::And, &[a, na], "y").unwrap();
        nl.mark_output(y);
        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let direct = paths.iter().find(|p| p.len() == 1).unwrap();
        assert_eq!(sensitize(&nl, direct, 1000).unwrap(), None);
    }

    #[test]
    fn conflicting_requirements_detected() {
        // Two NANDs on the path share side input s, but one is a NAND
        // (needs s=1) and the other a NOR (needs s=0).
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let s = nl.add_input("s");
        let g1 = nl.add_gate(GateKind::Nand, &[a, s], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Nor, &[g1, s], "g2").unwrap();
        nl.mark_output(g2);
        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let p = paths.iter().find(|p| p.from == a).unwrap();
        assert_eq!(sensitize(&nl, p, 1000).unwrap(), None);
    }

    #[test]
    fn xor_side_input_sensitized_to_zero() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Xor, &[a, b], "y").unwrap();
        nl.mark_output(y);
        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let p = paths.iter().find(|p| p.from == a).unwrap();
        let v = sensitize(&nl, p, 1000).unwrap().expect("xor path");
        assert_eq!(v.value(b), Some(false));
        verify(&nl, p, &v);
    }

    #[test]
    fn dont_cares_stay_none() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let unused = nl.add_input("unused");
        let y = nl.add_gate(GateKind::Nand, &[a, b], "y").unwrap();
        let z = nl.add_gate(GateKind::Not, &[unused], "z").unwrap();
        nl.mark_output(y);
        nl.mark_output(z);
        let paths = enumerate_paths(&nl, Some(y), 10).unwrap();
        let p = paths.iter().find(|p| p.from == a).unwrap();
        let v = sensitize(&nl, p, 1000).unwrap().expect("sensitizable");
        assert_eq!(v.value(unused), None);
    }

    #[test]
    fn backtracking_explores_alternatives() {
        // side = AND(m, n); m = NOT(a) is blocked (a on path), so the
        // justifier must find side=1 impossible... actually side needs 1:
        // both m and n must be 1, but m = NOT(a) is blocked → None.
        // Variant where OR gives an alternative: side2 = OR(m, n) needs 1,
        // branch m fails (blocked), branch n succeeds.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let n = nl.add_input("n");
        let m = nl.add_gate(GateKind::Not, &[a], "m").unwrap();
        let side = nl.add_gate(GateKind::Or, &[m, n], "side").unwrap();
        let y = nl.add_gate(GateKind::Nand, &[a, side], "y").unwrap();
        nl.mark_output(y);

        let paths = enumerate_paths(&nl, None, 10).unwrap();
        let p = paths
            .iter()
            .find(|p| p.from == a && p.len() == 1)
            .expect("direct a→y path");
        let v = sensitize(&nl, p, 1000)
            .unwrap()
            .expect("second OR branch works");
        assert_eq!(v.value(n), Some(true));
        verify(&nl, p, &v);
    }
}
