//! Structural path enumeration.
//!
//! A path is a pin-accurate chain PI → gate → … → PO. The test-generation
//! flow enumerates the paths through a fault site and then asks the
//! sensitizer (crate::sensitize) for an input vector that activates one.

use crate::error::LogicError;
use crate::netlist::{GateId, Netlist, SignalId};

/// One step of a path: a gate entered through a specific input pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathStep {
    /// The gate traversed.
    pub gate: GateId,
    /// Which of its input pins the path enters through.
    pub pin: usize,
}

/// A structural path from a primary input to a primary output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The launching primary input.
    pub from: SignalId,
    /// Traversed gates, input side first.
    pub steps: Vec<PathStep>,
}

impl Path {
    /// The signal at the path's end (the last gate's output, or `from`
    /// for a degenerate gate-less path).
    pub fn terminal(&self, nl: &Netlist) -> SignalId {
        match self.steps.last() {
            Some(s) => nl.gate(s.gate).output,
            None => self.from,
        }
    }

    /// Number of gates on the path.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for a path with no gates.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether the path inverts end to end under side-input
    /// sensitization (parity of inverting stages).
    pub fn inverts(&self, nl: &Netlist) -> bool {
        self.steps
            .iter()
            .filter(|s| nl.gate(s.gate).kind.inverts())
            .count()
            % 2
            == 1
    }

    /// All signals along the path: `from`, then each gate output.
    pub fn signals(&self, nl: &Netlist) -> Vec<SignalId> {
        let mut v = vec![self.from];
        v.extend(self.steps.iter().map(|s| nl.gate(s.gate).output));
        v
    }

    /// True if the path passes through `signal` (as the launching input or
    /// any traversed gate output).
    pub fn passes_through(&self, nl: &Netlist, signal: SignalId) -> bool {
        self.signals(nl).contains(&signal)
    }
}

/// Enumerates full PI→PO paths, optionally restricted to those passing
/// through `through`. Stops with [`LogicError::PathLimit`] once more than
/// `limit` paths have been produced — path counts are exponential in the
/// worst case, so a cap is mandatory.
///
/// # Errors
///
/// [`LogicError::PathLimit`] when the cap is exceeded;
/// [`LogicError::CombinationalLoop`] is impossible here because traversal
/// follows fan-out edges only finitely (cyclic netlists would loop, so the
/// function validates acyclicity first and reports it).
pub fn enumerate_paths(
    nl: &Netlist,
    through: Option<SignalId>,
    limit: usize,
) -> Result<Vec<Path>, LogicError> {
    nl.topological_order()?; // acyclicity check
    let fanouts = nl.fanouts();
    let output_set: Vec<bool> = {
        let mut v = vec![false; nl.signal_count()];
        for &o in nl.outputs() {
            v[o.index()] = true;
        }
        v
    };

    let mut result = Vec::new();
    let mut stack: Vec<PathStep> = Vec::new();

    // DFS forward from each PI.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        nl: &Netlist,
        fanouts: &[Vec<(GateId, usize)>],
        output_set: &[bool],
        from: SignalId,
        at: SignalId,
        stack: &mut Vec<PathStep>,
        result: &mut Vec<Path>,
        limit: usize,
    ) -> Result<(), LogicError> {
        if output_set[at.index()] {
            if result.len() >= limit {
                return Err(LogicError::PathLimit { limit });
            }
            result.push(Path {
                from,
                steps: stack.clone(),
            });
        }
        for &(g, pin) in &fanouts[at.index()] {
            stack.push(PathStep { gate: g, pin });
            let out = nl.gate(g).output;
            dfs(nl, fanouts, output_set, from, out, stack, result, limit)?;
            stack.pop();
        }
        Ok(())
    }

    for &pi in nl.inputs() {
        dfs(
            nl,
            &fanouts,
            &output_set,
            pi,
            pi,
            &mut stack,
            &mut result,
            limit,
        )?;
    }

    if let Some(site) = through {
        result.retain(|p| p.passes_through(nl, site));
    }
    Ok(result)
}

/// Enumerates paths that pass through `site`, capped at `limit`, without
/// failing when the *global* path count explodes: it walks backward from
/// the site to PIs and forward to POs and combines the segments.
///
/// Unlike [`enumerate_paths`], exceeding the cap is not an error: the
/// result is **silently truncated** to at most `limit` paths (check
/// `len() == limit` to detect truncation). Test generation prefers *some*
/// candidate paths over none on fan-out-heavy circuits.
///
/// # Errors
///
/// [`LogicError::CombinationalLoop`] for cyclic netlists.
pub fn paths_from_fanin(
    nl: &Netlist,
    site: SignalId,
    limit: usize,
) -> Result<Vec<Path>, LogicError> {
    nl.topological_order()?;
    let fanouts = nl.fanouts();

    // Backward segments: site ← … ← PI, as reversed step lists.
    let mut back: Vec<(SignalId, Vec<PathStep>)> = Vec::new();
    let mut bstack: Vec<PathStep> = Vec::new();
    fn back_dfs(
        nl: &Netlist,
        at: SignalId,
        stack: &mut Vec<PathStep>,
        out: &mut Vec<(SignalId, Vec<PathStep>)>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        match nl.driver_id(at) {
            None => {
                let mut steps = stack.clone();
                steps.reverse();
                out.push((at, steps));
            }
            Some(g) => {
                for (pin, &inp) in nl.gate(g).inputs.iter().enumerate() {
                    stack.push(PathStep { gate: g, pin });
                    back_dfs(nl, inp, stack, out, limit);
                    stack.pop();
                }
            }
        }
    }
    back_dfs(nl, site, &mut bstack, &mut back, limit);

    // Forward segments: site → … → PO.
    let output_set: Vec<bool> = {
        let mut v = vec![false; nl.signal_count()];
        for &o in nl.outputs() {
            v[o.index()] = true;
        }
        v
    };
    let mut fwd: Vec<Vec<PathStep>> = Vec::new();
    let mut fstack: Vec<PathStep> = Vec::new();
    fn fwd_dfs(
        nl: &Netlist,
        fanouts: &[Vec<(GateId, usize)>],
        output_set: &[bool],
        at: SignalId,
        stack: &mut Vec<PathStep>,
        out: &mut Vec<Vec<PathStep>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if output_set[at.index()] {
            out.push(stack.clone());
        }
        for &(g, pin) in &fanouts[at.index()] {
            stack.push(PathStep { gate: g, pin });
            fwd_dfs(
                nl,
                fanouts,
                output_set,
                nl.gate(g).output,
                stack,
                out,
                limit,
            );
            stack.pop();
        }
    }
    fwd_dfs(
        nl,
        &fanouts,
        &output_set,
        site,
        &mut fstack,
        &mut fwd,
        limit,
    );

    // Cartesian product, capped.
    let mut result = Vec::new();
    'outer: for (pi, bsteps) in &back {
        for fsteps in &fwd {
            if result.len() >= limit {
                break 'outer;
            }
            let mut steps = bsteps.clone();
            steps.extend_from_slice(fsteps);
            result.push(Path { from: *pi, steps });
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::netlist::GateKind;

    /// y = NAND(NAND(a, b), NOT(a)) — reconvergent fan-out on `a`.
    fn reconvergent() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Nand, &[a, b], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[a], "g2").unwrap();
        let y = nl.add_gate(GateKind::Nand, &[g1, g2], "y").unwrap();
        nl.mark_output(y);
        (nl, a, b, g1)
    }

    #[test]
    fn enumerates_all_pi_po_paths() {
        let (nl, ..) = reconvergent();
        let paths = enumerate_paths(&nl, None, 100).unwrap();
        // a→g1→y, a→g2→y, b→g1→y
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p.terminal(&nl), nl.outputs()[0]);
        }
    }

    #[test]
    fn through_filter_keeps_site_paths() {
        let (nl, _a, _b, g1) = reconvergent();
        let paths = enumerate_paths(&nl, Some(g1), 100).unwrap();
        assert_eq!(paths.len(), 2, "two paths pass through g1's output");
        for p in &paths {
            assert!(p.passes_through(&nl, g1));
        }
    }

    #[test]
    fn fanin_enumeration_matches_filtered_global() {
        let (nl, _a, _b, g1) = reconvergent();
        let via = paths_from_fanin(&nl, g1, 100).unwrap();
        let filt = enumerate_paths(&nl, Some(g1), 100).unwrap();
        assert_eq!(via.len(), filt.len());
        for p in &via {
            assert!(
                filt.contains(p),
                "segment-composed path missing from global set"
            );
        }
    }

    #[test]
    fn inversion_parity() {
        let (nl, ..) = reconvergent();
        let paths = enumerate_paths(&nl, None, 100).unwrap();
        for p in &paths {
            // Every path here crosses exactly two inverting gates.
            assert_eq!(p.len(), 2);
            assert!(!p.inverts(&nl));
        }
    }

    #[test]
    fn limit_is_enforced() {
        let (nl, ..) = reconvergent();
        assert!(matches!(
            enumerate_paths(&nl, None, 2),
            Err(LogicError::PathLimit { limit: 2 })
        ));
    }

    #[test]
    fn signals_lists_every_stop() {
        let (nl, a, _b, g1) = reconvergent();
        let paths = enumerate_paths(&nl, Some(g1), 100).unwrap();
        let p = paths.iter().find(|p| p.from == a).unwrap();
        let sigs = p.signals(&nl);
        assert_eq!(sigs.len(), 3); // a, g1, y
        assert_eq!(sigs[0], a);
        assert_eq!(sigs[1], g1);
    }
}
