#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-logic
//!
//! Gate-level infrastructure for the pulse-propagation test method:
//! combinational netlists, an ISCAS-85 reader/writer, bit-parallel logic
//! simulation, structural path enumeration and path sensitization.
//!
//! The paper's test flow needs, per fault site, a **sensitized path** from
//! a primary input to a primary output through the fault: all side inputs
//! of the path's gates held at non-controlling values so the injected
//! pulse is the only activity on the path (paper §3: "we will suppose that
//! all the side inputs of the path are set to non controlling values").
//! This crate finds those paths and the input vectors that sensitize them.
//!
//! ```
//! use pulsar_logic::{Netlist, GateKind, enumerate_paths, sensitize};
//!
//! // c = NOT(NAND(a, b)) — an AND built from the cell library.
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let n = nl.add_gate(GateKind::Nand, &[a, b], "n").unwrap();
//! let c = nl.add_gate(GateKind::Not, &[n], "c").unwrap();
//! nl.mark_output(c);
//!
//! let paths = enumerate_paths(&nl, Some(n), 100).unwrap();
//! assert_eq!(paths.len(), 2); // one through each NAND pin
//! let vec = sensitize(&nl, &paths[0], 10_000).unwrap().expect("sensitizable");
//! // Sensitizing pin `a` forces the side input `b` to 1.
//! assert_eq!(vec.values[b.index()], Some(true));
//! ```

mod benchgen;
mod error;
mod faults;
mod iscas;
mod netlist;
mod paths;
mod sensitize;
mod sim;

pub use benchgen::{c17, c432_like, random_netlist, BenchParams};
pub use error::LogicError;
pub use faults::{collapsed_fault_sites, FaultGroup};
pub use iscas::{parse_iscas85, write_iscas85};
pub use netlist::{Gate, GateId, GateKind, Netlist, SignalId};
pub use paths::{enumerate_paths, paths_from_fanin, Path, PathStep};
pub use sensitize::{sensitize, InputVector};
pub use sim::{simulate, simulate_bool};
