//! Fault-site enumeration and structural collapsing for external
//! resistive opens.
//!
//! Every net (primary input or gate output) is a candidate site for a
//! resistive via/break on its fan-out. Many sites are *path-equivalent*:
//! the exact same set of PI→PO paths runs through them, so one test plan
//! covers the whole group. The classic example is a chain of single-input
//! gates with single fan-out — an open anywhere along the chain dampens
//! the same pulses. Collapsing these groups shrinks the campaign workload
//! without losing coverage.

use crate::netlist::{Netlist, SignalId};

/// A group of path-equivalent external-ROP sites; testing the
/// representative covers every member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultGroup {
    /// The site test generation should target (the group's last net,
    /// which sees the most accumulated wire on real layouts).
    pub representative: SignalId,
    /// All member sites, in topological order along the chain.
    pub members: Vec<SignalId>,
}

/// Enumerates all external-ROP fault sites of `nl` and collapses
/// path-equivalent ones.
///
/// The collapsing rule is structural and conservative: net `a` merges
/// with net `b` when `b` is the output of a **single-input** gate whose
/// only fan-out consumer reads `a`, and `a` has fan-out one. Under that
/// condition every PI→PO path through `a` continues through `b` and vice
/// versa, so their through-path sets coincide exactly.
pub fn collapsed_fault_sites(nl: &Netlist) -> Vec<FaultGroup> {
    let fanouts = nl.fanouts();
    let mut is_po = vec![false; nl.signal_count()];
    for &o in nl.outputs() {
        is_po[o.index()] = true;
    }
    // next[s] = the signal s merges forward into, if any. A primary
    // output never merges forward: paths *terminating* at it pass through
    // it but not through its consumer.
    let mut next: Vec<Option<SignalId>> = vec![None; nl.signal_count()];
    for (idx, fo) in fanouts.iter().enumerate() {
        if fo.len() != 1 || is_po[idx] {
            continue;
        }
        let (gate, _) = fo[0];
        let g = nl.gate(gate);
        if g.inputs.len() == 1 {
            next[idx] = Some(g.output);
        }
    }

    // Heads: sites nobody merges into.
    let mut is_tail = vec![false; nl.signal_count()];
    for n in next.iter().flatten() {
        is_tail[n.index()] = true;
    }

    let mut groups = Vec::new();
    let all_sites = nl
        .inputs()
        .iter()
        .copied()
        .chain(nl.gates().iter().map(|g| g.output));
    for site in all_sites {
        if is_tail[site.index()] {
            continue; // appears inside another group
        }
        let mut members = vec![site];
        let mut cur = site;
        while let Some(n) = next[cur.index()] {
            members.push(n);
            cur = n;
        }
        groups.push(FaultGroup {
            representative: cur,
            members,
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::benchgen::c432_like;
    use crate::netlist::GateKind;
    use crate::paths::enumerate_paths;

    #[test]
    fn buffer_chain_collapses_to_one_group() {
        // a → NOT → BUF → NOT → y : all four nets path-equivalent.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Buf, &[g0], "g1").unwrap();
        let y = nl.add_gate(GateKind::Not, &[g1], "y").unwrap();
        nl.mark_output(y);

        let groups = collapsed_fault_sites(&nl);
        assert_eq!(groups.len(), 1, "{groups:?}");
        assert_eq!(groups[0].members, vec![a, g0, g1, y]);
        assert_eq!(groups[0].representative, y);
    }

    #[test]
    fn fanout_breaks_the_chain() {
        // a → NOT → (BUF, NOT): the stem has two consumers, so the chain
        // stops there.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Buf, &[g0], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g0], "g2").unwrap();
        nl.mark_output(g1);
        nl.mark_output(g2);

        let groups = collapsed_fault_sites(&nl);
        // a+g0 merge; g1 and g2 stand alone.
        assert_eq!(groups.len(), 3);
        let with_a = groups.iter().find(|g| g.members.contains(&a)).unwrap();
        assert_eq!(with_a.members, vec![a, g0]);
    }

    #[test]
    fn multi_input_gates_do_not_merge() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Nand, &[a, b], "g").unwrap();
        nl.mark_output(g);
        let groups = collapsed_fault_sites(&nl);
        assert_eq!(groups.len(), 3, "a, b, g all separate: {groups:?}");
    }

    #[test]
    fn collapsed_members_share_their_path_sets() {
        // Verify the equivalence claim on a mixed circuit: every member
        // of every group sees exactly the representative's path set.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g0 = nl.add_gate(GateKind::Nand, &[a, b], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[g0], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Buf, &[g1], "g2").unwrap();
        let g3 = nl.add_gate(GateKind::Nor, &[g2, b], "g3").unwrap();
        nl.mark_output(g3);

        for group in collapsed_fault_sites(&nl) {
            let rep_paths = enumerate_paths(&nl, Some(group.representative), 1000).unwrap();
            for m in &group.members {
                let m_paths = enumerate_paths(&nl, Some(*m), 1000).unwrap();
                assert_eq!(
                    m_paths,
                    rep_paths,
                    "member {} differs from representative",
                    nl.signal_name(*m)
                );
            }
        }
    }

    #[test]
    fn primary_outputs_do_not_merge_forward() {
        // g0 is both a PO and feeds a NOT: the degenerate path ending at
        // g0 passes through g0 but not g1, so they must stay separate.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[g0], "g1").unwrap();
        nl.mark_output(g0);
        nl.mark_output(g1);

        let groups = collapsed_fault_sites(&nl);
        let with_g0 = groups.iter().find(|g| g.members.contains(&g0)).unwrap();
        assert!(
            !with_g0.members.contains(&g1),
            "PO must terminate its group: {groups:?}"
        );
        // And the equivalence invariant still holds for every group.
        for group in &groups {
            let rep_paths = enumerate_paths(&nl, Some(group.representative), 1000).unwrap();
            for m in &group.members {
                assert_eq!(enumerate_paths(&nl, Some(*m), 1000).unwrap(), rep_paths);
            }
        }
    }

    #[test]
    fn collapsing_shrinks_the_benchmark_fault_list() {
        let nl = c432_like();
        let total = nl.inputs().len() + nl.gate_count();
        let groups = collapsed_fault_sites(&nl);
        assert!(groups.len() < total, "benchmark has NOT gates to collapse");
        let members: usize = groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(members, total, "every site appears in exactly one group");
    }
}
