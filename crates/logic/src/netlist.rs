//! Combinational gate-level netlist.

use crate::error::LogicError;

/// Handle to a signal (a primary input or a gate output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// Raw index into the netlist's signal tables.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index — the inverse of
    /// [`SignalId::index`], for deserializing ids recorded against a
    /// *specific* netlist (e.g. campaign checkpoints). The caller must
    /// guarantee the index is valid for the netlist it will be used with.
    pub fn from_index(index: usize) -> SignalId {
        SignalId(index)
    }
}

/// Handle to a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// Raw index into the netlist's gate table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index — see [`SignalId::from_index`]
    /// for the validity contract.
    pub fn from_index(index: usize) -> GateId {
        GateId(index)
    }
}

/// Boolean gate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND (≥ 1 input).
    And,
    /// Inverted AND.
    Nand,
    /// Logical OR.
    Or,
    /// Inverted OR.
    Nor,
    /// Inverter (exactly 1 input).
    Not,
    /// Buffer (exactly 1 input).
    Buf,
    /// Parity (≥ 1 input).
    Xor,
    /// Inverted parity.
    Xnor,
}

impl GateKind {
    /// Whether an input edge inverts on its way to the output when all
    /// side inputs are held non-controlling (for XOR-family, side = 0).
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Controlling input value, if the kind has one (`None` for
    /// XOR-family and single-input gates).
    pub fn controlling(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            GateKind::Not | GateKind::Buf | GateKind::Xor | GateKind::Xnor => None,
        }
    }

    /// The value side inputs must take for a path through this gate to be
    /// sensitized: the non-controlling value, or 0 for the XOR family
    /// (which makes XOR transparent and XNOR inverting).
    pub fn side_input_value(self) -> bool {
        match self.controlling() {
            Some(c) => !c,
            None => false,
        }
    }

    /// Evaluates the gate over bit-parallel input words.
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        let mut acc = match self {
            GateKind::And | GateKind::Nand => u64::MAX,
            GateKind::Or | GateKind::Nor | GateKind::Xor | GateKind::Xnor => 0,
            GateKind::Not | GateKind::Buf => inputs[0],
        };
        match self {
            GateKind::And | GateKind::Nand => {
                for w in inputs {
                    acc &= w;
                }
            }
            GateKind::Or | GateKind::Nor => {
                for w in inputs {
                    acc |= w;
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for w in inputs {
                    acc ^= w;
                }
            }
            GateKind::Not | GateKind::Buf => {}
        }
        if self.inverts_output() {
            !acc
        } else {
            acc
        }
    }

    fn inverts_output(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Canonical upper-case name (ISCAS-85 spelling).
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Validates a pin count for this kind.
    pub(crate) fn check_arity(self, pins: usize) -> Result<(), LogicError> {
        let ok = match self {
            GateKind::Not | GateKind::Buf => pins == 1,
            _ => pins >= 1,
        };
        if ok {
            Ok(())
        } else {
            Err(LogicError::BadArity {
                kind: self.name(),
                pins,
            })
        }
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Boolean function.
    pub kind: GateKind,
    /// Input signals, in pin order.
    pub inputs: Vec<SignalId>,
    /// Driven output signal.
    pub output: SignalId,
}

/// A combinational netlist: primary inputs, gates, primary outputs.
///
/// Signals are created by [`Netlist::add_input`] and [`Netlist::add_gate`];
/// the structure is append-only. Use [`Netlist::topological_order`] to
/// check for combinational loops before simulating.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    /// Per signal: the driving gate, if any (primary inputs have none).
    drivers: Vec<Option<GateId>>,
    gates: Vec<Gate>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Declares a primary input and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        let s = SignalId(self.names.len());
        self.names.push(name.into());
        self.drivers.push(None);
        self.inputs.push(s);
        s
    }

    /// Adds a gate driving a fresh signal named `name`.
    ///
    /// # Errors
    ///
    /// [`LogicError::BadArity`] if the pin count does not fit the kind.
    ///
    /// # Panics
    ///
    /// Panics if an input handle does not belong to this netlist.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[SignalId],
        name: impl Into<String>,
    ) -> Result<SignalId, LogicError> {
        kind.check_arity(inputs.len())?;
        for i in inputs {
            assert!(
                i.0 < self.names.len(),
                "input signal {} not in this netlist",
                i.0
            );
        }
        let out = SignalId(self.names.len());
        self.names.push(name.into());
        let gid = GateId(self.gates.len());
        self.drivers.push(Some(gid));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Marks a signal as a primary output (idempotent).
    pub fn mark_output(&mut self, s: SignalId) {
        if !self.outputs.contains(&s) {
            self.outputs.push(s);
        }
    }

    /// All primary inputs, in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// All primary outputs, in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `s`, or `None` for a primary input.
    pub fn driver(&self, s: SignalId) -> Option<&Gate> {
        self.drivers[s.0].map(|g| &self.gates[g.0])
    }

    /// The id of the gate driving `s`, if any.
    pub fn driver_id(&self, s: SignalId) -> Option<GateId> {
        self.drivers[s.0]
    }

    /// Gate by id.
    pub fn gate(&self, g: GateId) -> &Gate {
        &self.gates[g.0]
    }

    /// Name of a signal.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.names[s.0]
    }

    /// Looks up a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.names.iter().position(|n| n == name).map(SignalId)
    }

    /// Total number of signals (inputs + gate outputs).
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Per-signal list of (gate, pin) pairs reading it.
    pub fn fanouts(&self) -> Vec<Vec<(GateId, usize)>> {
        let mut out = vec![Vec::new(); self.names.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for (pin, s) in g.inputs.iter().enumerate() {
                out[s.0].push((GateId(gi), pin));
            }
        }
        out
    }

    /// Gates in topological (input-to-output) order.
    ///
    /// # Errors
    ///
    /// [`LogicError::CombinationalLoop`] when the structure is cyclic.
    /// (Loops cannot be built through the public construction API, which
    /// is append-only, but parsed netlists may contain them.)
    pub fn topological_order(&self) -> Result<Vec<GateId>, LogicError> {
        // Kahn's algorithm over gates.
        let mut indeg = vec![0usize; self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for s in &g.inputs {
                if self.drivers[s.0].is_some() {
                    indeg[gi] += 1;
                }
            }
        }
        let fanouts = self.fanouts();
        let mut queue: Vec<GateId> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == 0)
            .map(|(i, _)| GateId(i))
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(g) = queue.pop() {
            order.push(g);
            let out = self.gates[g.0].output;
            for &(succ, _) in &fanouts[out.0] {
                indeg[succ.0] -= 1;
                if indeg[succ.0] == 0 {
                    queue.push(succ);
                }
            }
        }
        if order.len() == self.gates.len() {
            Ok(order)
        } else {
            let stuck = indeg
                .iter()
                .position(|&d| d > 0)
                .map(|i| self.names[self.gates[i].output.0].clone())
                .unwrap_or_default();
            Err(LogicError::CombinationalLoop { signal: stuck })
        }
    }

    /// Logic depth of every signal (0 for PIs), and the maximum depth.
    ///
    /// # Errors
    ///
    /// Propagates [`LogicError::CombinationalLoop`].
    pub fn depths(&self) -> Result<(Vec<usize>, usize), LogicError> {
        let order = self.topological_order()?;
        let mut depth = vec![0usize; self.names.len()];
        let mut max = 0;
        for g in order {
            let gate = &self.gates[g.0];
            let d = gate.inputs.iter().map(|s| depth[s.0]).max().unwrap_or(0) + 1;
            depth[gate.output.0] = d;
            max = max.max(d);
        }
        Ok((depth, max))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn small() -> (Netlist, SignalId, SignalId, SignalId, SignalId) {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n = nl.add_gate(GateKind::Nand, &[a, b], "n").unwrap();
        let o = nl.add_gate(GateKind::Not, &[n], "o").unwrap();
        nl.mark_output(o);
        (nl, a, b, n, o)
    }

    #[test]
    fn construction_and_lookup() {
        let (nl, a, _b, n, o) = small();
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs(), &[o]);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.signal_name(a), "a");
        assert_eq!(nl.find_signal("n"), Some(n));
        assert!(nl.driver(a).is_none());
        assert_eq!(nl.driver(o).unwrap().kind, GateKind::Not);
    }

    #[test]
    fn mark_output_is_idempotent() {
        let (mut nl, _, _, _, o) = small();
        nl.mark_output(o);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn topological_order_is_valid() {
        let (nl, ..) = small();
        let order = nl.topological_order().unwrap();
        assert_eq!(order.len(), 2);
        // The NAND (gate 0) must precede the NOT (gate 1).
        assert_eq!(order[0].index(), 0);
    }

    #[test]
    fn depths_count_levels() {
        let (nl, a, _, n, o) = small();
        let (d, max) = nl.depths().unwrap();
        assert_eq!(d[a.index()], 0);
        assert_eq!(d[n.index()], 1);
        assert_eq!(d[o.index()], 2);
        assert_eq!(max, 2);
    }

    #[test]
    fn fanouts_track_pins() {
        let (nl, a, b, n, _) = small();
        let f = nl.fanouts();
        assert_eq!(f[a.index()], vec![(GateId(0), 0)]);
        assert_eq!(f[b.index()], vec![(GateId(0), 1)]);
        assert_eq!(f[n.index()], vec![(GateId(1), 0)]);
    }

    #[test]
    fn arity_is_checked() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        assert!(matches!(
            nl.add_gate(GateKind::Not, &[a, b], "x"),
            Err(LogicError::BadArity { .. })
        ));
        assert!(matches!(
            nl.add_gate(GateKind::And, &[], "y"),
            Err(LogicError::BadArity { .. })
        ));
    }

    #[test]
    fn gate_kind_tables() {
        assert!(GateKind::Nand.inverts());
        assert!(!GateKind::And.inverts());
        assert!(GateKind::Xnor.inverts());
        assert_eq!(GateKind::And.controlling(), Some(false));
        assert_eq!(GateKind::Nor.controlling(), Some(true));
        assert_eq!(GateKind::Xor.controlling(), None);
        assert!(GateKind::Nand.side_input_value());
        assert!(!GateKind::Nor.side_input_value());
        assert!(!GateKind::Xor.side_input_value());
    }

    #[test]
    fn eval_words_truth_tables() {
        // Two inputs over 4 bit-lanes: a = 0b0011, b = 0b0101.
        let a = 0b0011u64;
        let b = 0b0101u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b1100);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b0011);
    }
}
