//! ISCAS-85 netlist text format.
//!
//! The classic benchmark format the paper's Fig. 11 circuit (C432) is
//! distributed in:
//!
//! ```text
//! # comment
//! INPUT(1)
//! OUTPUT(223)
//! 118 = NAND(1, 4)
//! 223 = NOT(118)
//! ```
//!
//! The parser is two-pass (signals may be referenced before definition)
//! and accepts the common kind spellings (`BUF`/`BUFF`, `XNOR`/`NXOR`).

use crate::error::LogicError;
use crate::netlist::{GateKind, Netlist, SignalId};
use std::collections::HashMap;

/// Parses ISCAS-85 text into a [`Netlist`].
///
/// # Errors
///
/// [`LogicError::Parse`] with a 1-based line number for syntax problems,
/// [`LogicError::UnknownSignal`] for references to undefined names,
/// [`LogicError::MultipleDrivers`] for doubly-defined signals and
/// [`LogicError::BadArity`] for impossible pin counts.
pub fn parse_iscas85(text: &str) -> Result<Netlist, LogicError> {
    enum Line<'a> {
        Input(&'a str),
        Output(&'a str),
        Gate {
            out: &'a str,
            kind: GateKind,
            ins: Vec<&'a str>,
        },
    }

    // Pass 1: tokenize lines.
    let mut parsed: Vec<(usize, Line<'_>)> = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line_no = no + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("INPUT(") {
            let name = rest.strip_suffix(')').ok_or_else(|| LogicError::Parse {
                line: line_no,
                message: "INPUT( without closing parenthesis".into(),
            })?;
            parsed.push((line_no, Line::Input(name.trim())));
        } else if let Some(rest) = line.strip_prefix("OUTPUT(") {
            let name = rest.strip_suffix(')').ok_or_else(|| LogicError::Parse {
                line: line_no,
                message: "OUTPUT( without closing parenthesis".into(),
            })?;
            parsed.push((line_no, Line::Output(name.trim())));
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| LogicError::Parse {
                line: line_no,
                message: "gate right-hand side needs `KIND(...)`".into(),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| LogicError::Parse {
                line: line_no,
                message: "missing closing parenthesis".into(),
            })?;
            if close < open {
                return Err(LogicError::Parse {
                    line: line_no,
                    message: "mismatched parentheses".into(),
                });
            }
            let kind = parse_kind(rhs[..open].trim()).ok_or_else(|| LogicError::Parse {
                line: line_no,
                message: format!("unknown gate kind `{}`", rhs[..open].trim()),
            })?;
            let ins: Vec<&str> = rhs[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if ins.is_empty() {
                return Err(LogicError::Parse {
                    line: line_no,
                    message: "gate with no inputs".into(),
                });
            }
            parsed.push((line_no, Line::Gate { out, kind, ins }));
        } else {
            return Err(LogicError::Parse {
                line: line_no,
                message: format!("unrecognized line `{line}`"),
            });
        }
    }

    // Pass 2: allocate signals. Inputs first, then gates in an order that
    // respects data dependencies (iterate until fixpoint; a cycle leaves
    // gates unplaced).
    let mut nl = Netlist::new();
    let mut by_name: HashMap<String, SignalId> = HashMap::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();
    let mut pending: Vec<(usize, String, GateKind, Vec<String>)> = Vec::new();

    for (line_no, l) in parsed {
        match l {
            Line::Input(name) => {
                if by_name.contains_key(name) {
                    return Err(LogicError::MultipleDrivers {
                        name: name.to_owned(),
                    });
                }
                let s = nl.add_input(name);
                by_name.insert(name.to_owned(), s);
            }
            Line::Output(name) => output_names.push((line_no, name.to_owned())),
            Line::Gate { out, kind, ins } => {
                pending.push((
                    line_no,
                    out.to_owned(),
                    kind,
                    ins.into_iter().map(str::to_owned).collect(),
                ));
            }
        }
    }

    // Duplicate gate definitions are driver conflicts.
    {
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for (_, out, _, _) in &pending {
            if seen.insert(out.as_str(), ()).is_some() || by_name.contains_key(out.as_str()) {
                return Err(LogicError::MultipleDrivers { name: out.clone() });
            }
        }
    }

    let mut remaining = pending;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|(_, out, kind, ins)| {
            if ins.iter().all(|i| by_name.contains_key(i.as_str())) {
                let sig_ins: Vec<SignalId> = ins.iter().map(|i| by_name[i.as_str()]).collect();
                match nl.add_gate(*kind, &sig_ins, out.clone()) {
                    Ok(s) => {
                        by_name.insert(out.clone(), s);
                        false // placed, drop from remaining
                    }
                    Err(_) => true, // arity error surfaces below
                }
            } else {
                true
            }
        });
        if remaining.len() == before {
            // Nothing placed: either a true unknown signal or a cycle.
            let (_, out, kind, ins) = &remaining[0];
            for i in ins {
                if !by_name.contains_key(i.as_str()) && !remaining.iter().any(|(_, o, _, _)| o == i)
                {
                    return Err(LogicError::UnknownSignal { name: i.clone() });
                }
            }
            // Re-check arity errors before declaring a loop.
            kind.check_arity(ins.len())?;
            return Err(LogicError::CombinationalLoop {
                signal: out.clone(),
            });
        }
    }

    for (line_no, name) in output_names {
        let s = *by_name.get(&name).ok_or(LogicError::Parse {
            line: line_no,
            message: format!("OUTPUT({name}) references an undefined signal"),
        })?;
        nl.mark_output(s);
    }
    Ok(nl)
}

fn parse_kind(s: &str) -> Option<GateKind> {
    match s.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "NAND" => Some(GateKind::Nand),
        "OR" => Some(GateKind::Or),
        "NOR" => Some(GateKind::Nor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "XOR" => Some(GateKind::Xor),
        "XNOR" | "NXOR" => Some(GateKind::Xnor),
        _ => None,
    }
}

/// Serializes a netlist to ISCAS-85 text that [`parse_iscas85`] re-reads
/// identically (up to gate ordering).
pub fn write_iscas85(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str("# written by pulsar-logic\n");
    for &i in nl.inputs() {
        out.push_str(&format!("INPUT({})\n", nl.signal_name(i)));
    }
    for &o in nl.outputs() {
        out.push_str(&format!("OUTPUT({})\n", nl.signal_name(o)));
    }
    for g in nl.gates() {
        let ins: Vec<&str> = g.inputs.iter().map(|s| nl.signal_name(*s)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            nl.signal_name(g.output),
            g.kind.name(),
            ins.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::sim::simulate_bool;

    const SAMPLE: &str = "\
# tiny sample
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y = NOT(n1)
";

    #[test]
    fn parses_sample() {
        let nl = parse_iscas85(SAMPLE).unwrap();
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.gate_count(), 2);
        // Behaves as AND.
        let y = nl.find_signal("y").unwrap();
        let vals = simulate_bool(&nl, &[true, true]).unwrap();
        assert!(vals[y.index()]);
        let vals = simulate_bool(&nl, &[true, false]).unwrap();
        assert!(!vals[y.index()]);
    }

    #[test]
    fn forward_references_are_fine() {
        let text = "\
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = BUF(a)
";
        let nl = parse_iscas85(text).unwrap();
        let y = nl.find_signal("y").unwrap();
        let vals = simulate_bool(&nl, &[true]).unwrap();
        assert!(!vals[y.index()]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let nl = parse_iscas85(SAMPLE).unwrap();
        let text = write_iscas85(&nl);
        let nl2 = parse_iscas85(&text).unwrap();
        assert_eq!(nl2.inputs().len(), nl.inputs().len());
        assert_eq!(nl2.gate_count(), nl.gate_count());
        // Same function on all four input patterns.
        for pat in 0..4u32 {
            let pi = [(pat & 1) == 1, (pat & 2) == 2];
            let y1 = nl.find_signal("y").unwrap();
            let y2 = nl2.find_signal("y").unwrap();
            assert_eq!(
                simulate_bool(&nl, &pi).unwrap()[y1.index()],
                simulate_bool(&nl2, &pi).unwrap()[y2.index()]
            );
        }
    }

    #[test]
    fn rejects_unknown_kind() {
        let e = parse_iscas85("INPUT(a)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(e, LogicError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn rejects_undefined_signal() {
        let e = parse_iscas85("INPUT(a)\ny = AND(a, ghost)\n").unwrap_err();
        assert!(matches!(e, LogicError::UnknownSignal { .. }), "{e}");
    }

    #[test]
    fn rejects_double_driver() {
        let e = parse_iscas85("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n").unwrap_err();
        assert!(matches!(e, LogicError::MultipleDrivers { .. }), "{e}");
    }

    #[test]
    fn rejects_combinational_loop() {
        let e = parse_iscas85("INPUT(a)\nx = AND(a, y)\ny = NOT(x)\n").unwrap_err();
        assert!(matches!(e, LogicError::CombinationalLoop { .. }), "{e}");
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_iscas85("INPUT(a\n").is_err());
        assert!(parse_iscas85("what is this\n").is_err());
        assert!(parse_iscas85("y = NOT()\n").is_err());
        assert!(parse_iscas85("OUTPUT(nothing)\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# hello\nINPUT(a)  # trailing\n\nOUTPUT(y)\ny = BUF(a)\n";
        let nl = parse_iscas85(text).unwrap();
        assert_eq!(nl.gate_count(), 1);
    }
}
