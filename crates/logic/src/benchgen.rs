//! Deterministic benchmark-circuit generation.
//!
//! The paper's Fig. 11 experiment runs on ISCAS-85 C432 (a 36-input,
//! 7-output, ~160-gate interrupt controller). The original netlist file is
//! not bundled here; [`c432_like`] generates a structurally comparable
//! stand-in — same interface width, gate count, gate-kind mix and logic
//! depth — which is all the experiment needs: a population of diverse
//! sensitizable paths through fault sites (see `DESIGN.md`,
//! substitutions). Real ISCAS-85 files can be used instead via
//! [`parse_iscas85`](crate::parse_iscas85).

use crate::netlist::{GateKind, Netlist, SignalId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`random_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic layers the gates are spread over (≥ 1); the
    /// realized depth is close to this for connected layers.
    pub layers: usize,
}

impl BenchParams {
    /// The C432-like profile: 36 inputs, 160 gates, 7 outputs, depth ≈ 17.
    pub fn c432_like() -> Self {
        BenchParams {
            inputs: 36,
            gates: 160,
            outputs: 7,
            layers: 17,
        }
    }

    /// A C880-class profile (the 8-bit ALU benchmark's shape): 60 inputs,
    /// 383 gates, 26 outputs, depth ≈ 24. Used for scaling studies.
    pub fn c880_like() -> Self {
        BenchParams {
            inputs: 60,
            gates: 383,
            outputs: 26,
            layers: 24,
        }
    }
}

/// Generates a random layered combinational netlist.
///
/// Layer `k` gates always take their first input from layer `k − 1`
/// (creating long sensitizable paths); remaining pins come from any
/// earlier layer. The gate-kind mix is NAND/NOR-heavy with occasional
/// AND/OR/NOT/XOR, echoing the ISCAS-85 benchmarks.
///
/// # Panics
///
/// Panics if any count is zero or `outputs > gates`.
pub fn random_netlist(params: &BenchParams, seed: u64) -> Netlist {
    assert!(
        params.inputs > 0 && params.gates > 0 && params.outputs > 0,
        "counts must be positive"
    );
    assert!(
        params.outputs <= params.gates,
        "cannot have more outputs than gates"
    );
    assert!(params.layers > 0, "need at least one layer");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new();
    let pis: Vec<SignalId> = (0..params.inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();

    // Spread gates over layers (at least one per layer).
    let layers = params.layers.min(params.gates);
    let mut per_layer = vec![params.gates / layers; layers];
    for extra in per_layer.iter_mut().take(params.gates % layers) {
        *extra += 1;
    }

    let mut prev_layer: Vec<SignalId> = pis.clone();
    let mut all_signals: Vec<SignalId> = pis;
    let mut gate_no = 0usize;
    let mut last_layer: Vec<SignalId> = Vec::new();

    for count in per_layer {
        let mut this_layer = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = pick_kind(&mut rng);
            let pins = match kind {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Xor | GateKind::Xnor => 2,
                _ => 2 + usize::from(rng.random::<f64>() < 0.25),
            };
            // Distinct pins cannot exceed the available signal pool
            // (tiny circuits would otherwise livelock the sampler).
            let pins = pins.min(all_signals.len());
            let mut inputs = Vec::with_capacity(pins);
            // First pin from the previous layer to stretch the depth.
            inputs.push(prev_layer[rng.random_range(0..prev_layer.len())]);
            while inputs.len() < pins {
                let cand = all_signals[rng.random_range(0..all_signals.len())];
                if !inputs.contains(&cand) {
                    inputs.push(cand);
                }
            }
            let out = nl
                .add_gate(kind, &inputs, format!("g{gate_no}"))
                .expect("generated arity is always valid");
            gate_no += 1;
            this_layer.push(out);
        }
        all_signals.extend_from_slice(&this_layer);
        last_layer = this_layer.clone();
        prev_layer = this_layer;
    }

    // Outputs: prefer the deepest layer, fall back to earlier gates.
    let mut out_pool = last_layer;
    let mut k = all_signals.len();
    while out_pool.len() < params.outputs {
        k -= 1;
        let cand = all_signals[k];
        if nl.driver(cand).is_some() && !out_pool.contains(&cand) {
            out_pool.push(cand);
        }
    }
    for &o in out_pool.iter().take(params.outputs) {
        nl.mark_output(o);
    }
    nl
}

fn pick_kind(rng: &mut StdRng) -> GateKind {
    // NAND/NOR-heavy mix like the ISCAS-85 set.
    let r: f64 = rng.random();
    if r < 0.35 {
        GateKind::Nand
    } else if r < 0.55 {
        GateKind::Nor
    } else if r < 0.70 {
        GateKind::And
    } else if r < 0.82 {
        GateKind::Or
    } else if r < 0.94 {
        GateKind::Not
    } else {
        GateKind::Xor
    }
}

/// The deterministic C432-compatible stand-in used by the Fig. 11
/// experiment: 36 PIs, 7 POs, 160 gates, logic depth ≈ 17. The same
/// netlist is produced on every call.
pub fn c432_like() -> Netlist {
    random_netlist(&BenchParams::c432_like(), 0xC432)
}

/// The genuine ISCAS-85 **c17** benchmark (5 inputs, 2 outputs, 6 NAND2
/// gates) — small enough to ship verbatim, and a handy smoke target for
/// the whole flow.
pub fn c17() -> Netlist {
    crate::iscas::parse_iscas85(
        "# ISCAS-85 c17\n\
         INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
         OUTPUT(22)\nOUTPUT(23)\n\
         10 = NAND(1, 3)\n\
         11 = NAND(3, 6)\n\
         16 = NAND(2, 11)\n\
         19 = NAND(11, 7)\n\
         22 = NAND(10, 16)\n\
         23 = NAND(16, 19)\n",
    )
    .expect("embedded c17 netlist is well-formed")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::sim::simulate;

    #[test]
    fn c432_like_has_the_right_shape() {
        let nl = c432_like();
        assert_eq!(nl.inputs().len(), 36);
        assert_eq!(nl.outputs().len(), 7);
        assert_eq!(nl.gate_count(), 160);
        let (_, depth) = nl.depths().unwrap();
        assert!(
            (12..=22).contains(&depth),
            "depth {depth} outside the C432-like band"
        );
    }

    #[test]
    fn c432_like_is_deterministic() {
        let a = c432_like();
        let b = c432_like();
        assert_eq!(a.gate_count(), b.gate_count());
        let wa: Vec<u64> = (0..36)
            .map(|i| 0x9E3779B97F4A7C15u64.wrapping_mul(i + 1))
            .collect();
        let va = simulate(&a, &wa).unwrap();
        let vb = simulate(&b, &wa).unwrap();
        assert_eq!(va, vb);
    }

    #[test]
    fn c880_like_profile_scales_up() {
        let nl = random_netlist(&BenchParams::c880_like(), 0x880);
        assert_eq!(nl.inputs().len(), 60);
        assert_eq!(nl.outputs().len(), 26);
        assert_eq!(nl.gate_count(), 383);
        let (_, depth) = nl.depths().unwrap();
        assert!((18..=30).contains(&depth), "depth {depth}");
    }

    #[test]
    fn c17_matches_its_truth_table() {
        use crate::sim::simulate_bool;
        let nl = c17();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        let o22 = nl.find_signal("22").unwrap();
        let o23 = nl.find_signal("23").unwrap();
        // Exhaustive check against the gate equations.
        for pat in 0..32u32 {
            let bit = |k: u32| (pat >> k) & 1 == 1;
            let (i1, i2, i3, i6, i7) = (bit(0), bit(1), bit(2), bit(3), bit(4));
            let n10 = !(i1 && i3);
            let n11 = !(i3 && i6);
            let n16 = !(i2 && n11);
            let n19 = !(n11 && i7);
            let e22 = !(n10 && n16);
            let e23 = !(n16 && n19);
            let vals = simulate_bool(&nl, &[i1, i2, i3, i6, i7]).unwrap();
            assert_eq!(vals[o22.index()], e22, "pattern {pat:05b}");
            assert_eq!(vals[o23.index()], e23, "pattern {pat:05b}");
        }
    }

    #[test]
    fn random_netlists_are_acyclic_and_simulable() {
        for seed in 0..10 {
            let nl = random_netlist(
                &BenchParams {
                    inputs: 8,
                    gates: 40,
                    outputs: 4,
                    layers: 6,
                },
                seed,
            );
            assert!(nl.topological_order().is_ok());
            let words = vec![seed.wrapping_mul(0xABCD); 8];
            let vals = simulate(&nl, &words).unwrap();
            assert_eq!(vals.len(), nl.signal_count());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_netlist(
            &BenchParams {
                inputs: 4,
                gates: 10,
                outputs: 2,
                layers: 3,
            },
            1,
        );
        let b = random_netlist(
            &BenchParams {
                inputs: 4,
                gates: 10,
                outputs: 2,
                layers: 3,
            },
            2,
        );
        let ka: Vec<_> = a.gates().iter().map(|g| g.kind).collect();
        let kb: Vec<_> = b.gates().iter().map(|g| g.kind).collect();
        assert_ne!(ka, kb, "seeds should shuffle the structure");
    }

    #[test]
    fn tiny_pools_do_not_livelock_the_sampler() {
        // Regression: with 2 PIs a 3-pin draw used to rejection-sample
        // forever. Every seed must terminate (quickly).
        for seed in 0..64 {
            let nl = random_netlist(
                &BenchParams {
                    inputs: 2,
                    gates: 3,
                    outputs: 1,
                    layers: 1,
                },
                seed,
            );
            assert!(nl.topological_order().is_ok());
        }
        // Even a single-input pool works.
        let nl = random_netlist(
            &BenchParams {
                inputs: 1,
                gates: 2,
                outputs: 1,
                layers: 1,
            },
            7,
        );
        assert_eq!(nl.inputs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "counts must be positive")]
    fn zero_inputs_panics() {
        random_netlist(
            &BenchParams {
                inputs: 0,
                gates: 1,
                outputs: 1,
                layers: 1,
            },
            0,
        );
    }
}
