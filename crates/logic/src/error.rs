use std::fmt;

/// Errors from netlist construction, parsing and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// The netlist contains a combinational cycle through the named signal.
    CombinationalLoop {
        /// Name of a signal on the cycle.
        signal: String,
    },
    /// A gate was declared with an input-pin count its kind cannot have.
    BadArity {
        /// Gate kind as text.
        kind: &'static str,
        /// Offending pin count.
        pins: usize,
    },
    /// ISCAS-85 text could not be parsed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced signal name is not defined anywhere in the source.
    UnknownSignal {
        /// The undefined name.
        name: String,
    },
    /// A signal is driven by more than one gate.
    MultipleDrivers {
        /// The doubly-driven signal name.
        name: String,
    },
    /// Path enumeration hit its configured limit before finishing.
    PathLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::CombinationalLoop { signal } => {
                write!(f, "combinational loop through signal `{signal}`")
            }
            LogicError::BadArity { kind, pins } => {
                write!(f, "gate kind {kind} cannot have {pins} input pins")
            }
            LogicError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LogicError::UnknownSignal { name } => write!(f, "signal `{name}` is not defined"),
            LogicError::MultipleDrivers { name } => {
                write!(f, "signal `{name}` has more than one driver")
            }
            LogicError::PathLimit { limit } => {
                write!(f, "path enumeration exceeded the limit of {limit} paths")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let e = LogicError::CombinationalLoop {
            signal: "x7".into(),
        };
        assert!(e.to_string().contains("x7"));
        let e = LogicError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = LogicError::BadArity {
            kind: "NOT",
            pins: 3,
        };
        assert!(e.to_string().contains("NOT"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogicError>();
    }
}
