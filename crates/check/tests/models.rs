//! The concurrency-checking acceptance suite:
//!
//! * every shipped-protocol model passes **bounded-exhaustive**
//!   exploration (the space is fully enumerated, not truncated), with
//!   a floor on the explored-schedule count so a scheduler regression
//!   that silently shrinks the space fails loudly;
//! * every mutation model (one weakened ordering / reordered step per
//!   protocol) is **caught**, with the expected violation kind;
//! * the `--ignored` tier re-runs the shipped models under
//!   seeded-random long runs (more preemptions than the exhaustive
//!   bound allows).

use pulsar_check::models;
use pulsar_check::sim::Options;

#[test]
fn shipped_models_pass_bounded_exhaustive() {
    for report in models::shipped_suite(models::smoke_options()) {
        println!("{report}");
        let n = report.assert_pass();
        assert!(
            report.exhausted && !report.truncated,
            "model `{}` did not exhaust its schedule space",
            report.name
        );
        assert!(
            n >= 10,
            "model `{}` explored suspiciously few schedules: {n}",
            report.name
        );
    }
}

#[test]
fn mutation_self_tests_catch_seeded_bugs() {
    for (report, needle) in models::mutation_suite(models::smoke_options()) {
        println!("{report}");
        report.assert_caught(needle);
    }
}

/// Long tier: seeded-random schedules with unbounded preemptions.
/// Run with `cargo test -p pulsar-check -- --ignored`.
#[test]
#[ignore = "long seeded-random soak; run explicitly or via CI's long tier"]
fn shipped_models_survive_random_long_runs() {
    // Seed is arbitrary but fixed: failures must be reproducible.
    for report in models::shipped_suite(Options::random(0x70756C7365, 20_000)) {
        println!("{report}");
        report.assert_pass();
    }
}

#[test]
#[ignore = "long seeded-random soak; run explicitly or via CI's long tier"]
fn mutations_also_caught_by_random_runs() {
    for (report, needle) in models::mutation_suite(Options::random(0x70756C7365, 20_000)) {
        println!("{report}");
        report.assert_caught(needle);
    }
}
