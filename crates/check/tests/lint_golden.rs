//! Golden-file tests for `lint-src` over the fixture corpus in
//! `tests/lint_src_corpus/` (repository root), plus the workspace-clean
//! gate: the real `crates/*/src` tree must produce zero findings.
//!
//! Every `<name>.rs` fixture declares the path it pretends to live at
//! via a first-line `// lint-src-corpus-path:` directive (the rules are
//! path-dependent: hot-path modules, the allowlist) and has
//! `<name>.expected.txt` / `<name>.expected.json` goldens next to it.
//! Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p pulsar-check --test lint_golden
//! ```

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::{Path, PathBuf};

use pulsar_check::lint_src::{self, SrcReport, SrcRule};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn corpus_dir() -> PathBuf {
    repo_root().join("tests/lint_src_corpus")
}

fn corpus_fixtures() -> Vec<PathBuf> {
    let mut fixtures: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 4,
        "corpus unexpectedly small: {fixtures:?}"
    );
    fixtures
}

/// Lint one fixture under its declared pretend-path.
fn lint_fixture(path: &Path) -> SrcReport {
    let text = fs::read_to_string(path).unwrap();
    let label = text
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// lint-src-corpus-path:"))
        .unwrap_or_else(|| panic!("{path:?} lacks a lint-src-corpus-path directive"))
        .trim()
        .to_string();
    let allow = lint_src::load_allowlist(&repo_root());
    SrcReport {
        findings: lint_src::lint_source(&label, &text, &allow),
        files_scanned: 1,
    }
}

fn check_golden(rendered: &str, golden_path: &PathBuf) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(golden_path, rendered).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden {golden_path:?} ({e}); run with UPDATE_GOLDENS=1")
    });
    assert_eq!(
        rendered, expected,
        "rendering drifted from {golden_path:?}; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

#[test]
fn corpus_matches_goldens() {
    for fixture in corpus_fixtures() {
        let report = lint_fixture(&fixture);
        check_golden(
            &report.render_human(),
            &fixture.with_extension("expected.txt"),
        );
        check_golden(
            &report.render_json(),
            &fixture.with_extension("expected.json"),
        );
    }
}

#[test]
fn corpus_fixtures_flag_their_seeded_violations() {
    // (fixture stem, expected rule histogram as (rule, count)).
    let table: &[(&str, &[(SrcRule, usize)])] = &[
        ("allowlisted", &[]),
        ("ordering", &[(SrcRule::UnjustifiedOrdering, 3)]),
        (
            "hotpath",
            &[
                (SrcRule::HotPathUnwrap, 2),
                (SrcRule::HotPathInstant, 1),
                (SrcRule::HotPathAlloc, 2),
            ],
        ),
        ("spawn", &[(SrcRule::DetachedSpawn, 2)]),
    ];
    for (stem, expected) in table {
        let report = lint_fixture(&corpus_dir().join(format!("{stem}.rs")));
        for (rule, count) in *expected {
            let got = report.findings.iter().filter(|f| f.rule == *rule).count();
            assert_eq!(
                got,
                *count,
                "{stem}: expected {count} {} finding(s), got:\n{}",
                rule.code(),
                report.render_human()
            );
        }
        let total: usize = expected.iter().map(|(_, c)| c).sum();
        assert_eq!(
            report.findings.len(),
            total,
            "{stem}: unexpected extra findings:\n{}",
            report.render_human()
        );
    }
}

/// The enforcement gate: the real workspace must be clean. Every
/// Relaxed/SeqCst site carries a `// ordering:` justification (and a
/// row in DESIGN.md §5.8), hot-path modules stay allocation- and
/// panic-free, and no thread is detached without a `// spawn:` story.
#[test]
fn workspace_is_clean() {
    let report = lint_src::lint_workspace(&repo_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "scan missed the workspace");
    assert!(
        report.is_clean(),
        "lint-src findings in the workspace:\n{}",
        report.render_human()
    );
}
