//! Protocol model P4: the serve daemon's cross-job cache fill and
//! job-queue handoff — the *shipped* [`FillSlot`] single-fill protocol
//! instantiated with modeled atomics and the shipped [`FILL_ORDERINGS`],
//! plus the dequeue/cancel gate of `pulsar_serve::job` modeled over
//! [`MLock`]/[`MCell`] with the shipped [`CancelCore`].
//!
//! **Fill model** — N jobs race on a cold digest key:
//!
//! * at most one claimer ever computes the value (single fill: the
//!   `EMPTY → FILLING` CAS has one winner);
//! * a loser that observes `READY` sees the completed value, race-free
//!   (the `Release` publish / `Acquire` observe pair).
//!
//! **Queue model** — two workers drain a two-job queue while a client
//! cancels job 0:
//!
//! * every job is dequeued exactly once and never lost;
//! * a cancel that observed the job still `QUEUED` is binding — the job
//!   never executes (the `begin_running` gate under the state lock);
//! * job 1 (never cancelled) always runs to completion.
//!
//! Mutations: [`mut_publish_relaxed`] weakens the fill publication to
//! `Relaxed` (the reader races with the filler's value write — the
//! ordering the shipped protocol exists to provide);
//! [`mut_ungated_dequeue`] executes whatever it pops without the
//! `begin_running` gate (a cancelled-while-queued job runs anyway).

use pulsar_obs::{CancelCore, CancelReason, CANCEL_ORDERINGS};
use pulsar_serve::fill::{Claim, FillOrderings, FillSlot, FILL_ORDERINGS};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::atomics::ModelAtomics;
use crate::cell::{MCell, MLock, MUTEX_ORDERINGS};
use crate::sim::{explore, ModelSpec, Options, Report};

/// The value the fill winner computes; anything nonzero distinguishes
/// "filled" from the cell's pristine state.
const FILLED: u8 = 7;

/// Cache-fill race: three jobs hit the same cold key, one standalone
/// observer polls readiness. Uses the shipped slot + orderings.
fn build_fill(spec: &mut ModelSpec, ord: &'static FillOrderings) {
    let slot: Arc<FillSlot<ModelAtomics>> = Arc::new(FillSlot::new());
    let value = Arc::new(MCell::new(0u8));
    let wins: Vec<Arc<MCell<bool>>> = (0..3).map(|_| Arc::new(MCell::new(false))).collect();
    for won in &wins {
        let (slot, value, won) = (slot.clone(), value.clone(), won.clone());
        spec.thread(move || match slot.try_claim(ord) {
            Claim::Won => {
                // The fill: value write strictly before the READY store.
                value.write(|v| *v = FILLED);
                slot.publish(ord);
                won.write(|w| *w = true);
            }
            // In production a loser parks on the slot condvar; the value
            // read after the wakeup is covered by the `Ready` arm below.
            Claim::InProgress => {}
            Claim::Ready => {
                let v = value.read(|v| *v);
                assert_eq!(v, FILLED, "claim loser observed READY before the value");
            }
        });
    }
    let (slot_o, value_o) = (slot.clone(), value.clone());
    spec.thread(move || {
        // A cache lookup that does not want to fill: poll, then read.
        if slot_o.ready(ord) {
            let v = value_o.read(|v| *v);
            assert_eq!(v, FILLED, "lookup observed READY before the value");
        }
    });
    spec.finale(move || {
        let winners = wins.iter().filter(|w| w.read(|x| *x)).count();
        assert_eq!(winners, 1, "single-fill violated: {winners} claim winners");
        assert!(
            slot.ready(&FILL_ORDERINGS),
            "the won fill was never published"
        );
        assert_eq!(value.read(|v| *v), FILLED, "published slot holds no value");
    });
}

/// Job states of the queue model, mirroring `pulsar_serve::JobState`.
const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;
const CANCELLED: u8 = 3;

struct Shard {
    lock: MLock,
    /// Pending job ids, pre-filled `[0, 1]` (submission itself is the
    /// mutex-protected `JobQueue::push`; the handoff is what we model).
    queue: MCell<Vec<u8>>,
    /// Per-job state, guarded by `lock` like the `Job::state` mutex.
    state: MCell<[u8; 2]>,
    /// Job 0's cancellation token (the one the client trips).
    core0: CancelCore<ModelAtomics>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            lock: MLock::new(),
            queue: MCell::new(vec![0, 1]),
            state: MCell::new([QUEUED, QUEUED]),
            core0: CancelCore::new(),
        }
    }
}

/// One `worker_loop` iteration: pop under the lock, pass the
/// `begin_running` gate (state still `QUEUED`, token untripped), execute
/// outside the lock, then record the terminal state. `gated = false` is
/// the mutation that executes whatever it popped.
fn work_one(q: &Arc<Shard>, ran: &Arc<MCell<bool>>, gated: bool) {
    q.lock.lock(&MUTEX_ORDERINGS);
    let j = q.queue.write(|v| {
        if v.is_empty() {
            None
        } else {
            Some(v.remove(0))
        }
    });
    let mut run = None;
    if let Some(j) = j {
        let cancelled = j == 0 && q.core0.cancelled(&CANCEL_ORDERINGS).is_some();
        if !gated || (q.state.read(|s| s[j as usize]) == QUEUED && !cancelled) {
            q.state.write(|s| s[j as usize] = RUNNING);
            run = Some(j);
        } else {
            // The gate refused: the job drains as cancelled.
            q.state.write(|s| s[j as usize] = CANCELLED);
        }
    }
    q.lock.unlock(&MUTEX_ORDERINGS);
    if let Some(j) = run {
        // Execution happens outside every lock; single-dequeue is what
        // makes this write race-free, and the race checker verifies it.
        ran.write(|r| *r = true);
        q.lock.lock(&MUTEX_ORDERINGS);
        q.state.write(|s| s[j as usize] = DONE);
        q.lock.unlock(&MUTEX_ORDERINGS);
    }
}

/// Queue handoff with a racing cancel. Two workers, one canceller.
fn build_queue(spec: &mut ModelSpec, gated: bool) {
    let q = Arc::new(Shard::new());
    let ran0 = Arc::new(MCell::new(false));
    let ran1 = Arc::new(MCell::new(false));
    let cancel_won = Arc::new(MCell::new(false));
    for ran in [&ran0, &ran1] {
        let (q, ran) = (q.clone(), ran.clone());
        spec.thread(move || {
            // Each worker attempts two pops (the pool is smaller than
            // the queue can be); the second may find the queue already
            // drained by the other worker — that must be harmless. The
            // `ran` cell is per-worker, written outside the lock, so the
            // race checker verifies execution itself needs no lock.
            work_one(&q, &ran, gated);
            work_one(&q, &ran, gated);
        });
    }
    let (qc, won) = (q.clone(), cancel_won.clone());
    spec.thread(move || {
        // `Job::cancel`: under the state lock a queued job dies on the
        // spot; a running one only gets its token tripped.
        qc.lock.lock(&MUTEX_ORDERINGS);
        let was_queued = qc.state.read(|s| s[0]) == QUEUED;
        if was_queued {
            qc.state.write(|s| s[0] = CANCELLED);
        }
        qc.lock.unlock(&MUTEX_ORDERINGS);
        qc.core0.cancel(CancelReason::User, &CANCEL_ORDERINGS);
        won.write(|w| *w = was_queued);
    });
    spec.finale(move || {
        assert!(
            q.queue.read(|v| v.is_empty()),
            "jobs were lost in the queue"
        );
        let s = q.state.read(|s| *s);
        let any_ran = ran0.read(|x| *x) || ran1.read(|x| *x);
        // ran0/ran1 are per-worker cells; per-job facts come from the
        // states instead: DONE means executed, CANCELLED means not.
        assert_eq!(s[1], DONE, "job 1 (never cancelled) did not complete");
        if cancel_won.read(|w| *w) {
            assert_ne!(
                s[0], DONE,
                "cancelled job ran: cancel observed QUEUED yet the job executed"
            );
            assert_eq!(s[0], CANCELLED, "cancel-before-dequeue not terminal");
        } else {
            assert_eq!(s[0], DONE, "job 0 neither ran nor was cancelled");
        }
        assert!(any_ran, "no worker executed anything");
        assert!(
            q.core0.cancelled(&CANCEL_ORDERINGS).is_some(),
            "the cancel never tripped the token"
        );
    });
}

/// Shipped cache-fill protocol: single fill, race-free publication.
/// Must pass bounded-exhaustive exploration.
pub fn fill_shipped(opts: Options) -> Report {
    explore("serve/fill-shipped", opts, |spec| {
        build_fill(spec, &FILL_ORDERINGS)
    })
}

/// Shipped queue handoff: unique dequeue, binding cancel, no lost jobs.
pub fn queue_shipped(opts: Options) -> Report {
    explore("serve/queue-shipped", opts, |spec| build_queue(spec, true))
}

/// Mutation: the fill publishes `READY` with `Relaxed` — the value write
/// is no longer ordered before a reader's value read. The explorer must
/// report the data race on the cache value.
pub fn mut_publish_relaxed(opts: Options) -> Report {
    static WEAK_PUBLISH: FillOrderings = FillOrderings {
        claim: Ordering::Relaxed,
        claim_failure: Ordering::Acquire,
        publish: Ordering::Relaxed, // seeded bug: value not published
        observe: Ordering::Acquire,
    };
    explore("serve/mut-publish-relaxed", opts, |spec| {
        build_fill(spec, &WEAK_PUBLISH)
    })
}

/// Mutation: the worker executes whatever it pops, skipping the
/// `begin_running` gate. A job cancelled while still queued runs
/// anyway; the explorer must find the interleaving.
pub fn mut_ungated_dequeue(opts: Options) -> Report {
    explore("serve/mut-ungated-dequeue", opts, |spec| {
        build_queue(spec, false)
    })
}
