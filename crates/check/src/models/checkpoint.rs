//! Protocol model P3: checkpoint append / poisoning / concurrent
//! flush — the *shipped* [`PoisonFlag`] instantiated with modeled
//! atomics and the shipped [`POISON_ORDERINGS`].
//!
//! The production `Checkpoint::record` takes the file mutex, re-checks
//! the poison flag under it (the gate), attempts the append, and
//! poisons on a write failure so no later append can land behind a
//! torn tail. Here the file is a race-checked [`MCell`] holding the
//! appended records, the mutex is [`MLock`], and worker 0's second
//! append fails by fiat (the simulated I/O error). A SIGINT-style
//! flusher snapshots the log concurrently, mirroring the interrupt
//! checkpoint flush in the campaign driver.
//!
//! Invariants checked:
//!
//! * a failed append never lands, and neither does anything gated
//!   after the poison (the on-disk prefix stays loadable);
//! * each writer's surviving records form a contiguous prefix of what
//!   it attempted (torn-tail prefix semantics);
//! * no data race between appenders and the flusher.
//!
//! Mutations: [`mut_gate_after_write`] appends before consulting the
//! gate (a post-poison append lands — the bug the under-mutex re-check
//! prevents); [`mut_unlock_relaxed`] weakens the file mutex's release
//! ordering (a data race on the log).

use pulsar_core::{PoisonFlag, POISON_ORDERINGS};
use pulsar_obs::sync::AtomicFamily;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::atomics::ModelAtomics;
use crate::cell::{LockOrderings, MCell, MLock, MUTEX_ORDERINGS};
use crate::sim::{explore, ModelSpec, Options, Report};

type Flag = PoisonFlag<<ModelAtomics as AtomicFamily>::Bool>;

struct Log {
    lock: MLock,
    records: MCell<Vec<(u8, u8)>>,
    poison: Flag,
}

impl Log {
    fn new() -> Self {
        Log {
            lock: MLock::new(),
            records: MCell::new(Vec::new()),
            poison: PoisonFlag::new(),
        }
    }
}

/// Records writer 0 attempts; its append of seq 1 fails (simulated I/O
/// error), so only seq 0 may ever land.
const W0_SEQS: u8 = 3;
const W0_FAIL_AT: u8 = 1;
/// Records writer 1 attempts (all healthy).
const W1_SEQS: u8 = 2;

/// One `Checkpoint::record` call: gate under the mutex, then append or
/// poison. `gate_first = false` is the mutation that appends before
/// consulting the gate.
fn record(log: &Log, lock_ord: &LockOrderings, k: u8, seq: u8, fails: bool, gate_first: bool) {
    log.lock.lock(lock_ord);
    if gate_first {
        if log.poison.healthy(&POISON_ORDERINGS) {
            if fails {
                // The write attempt failed; nothing landed. Sticky.
                log.poison.poison(&POISON_ORDERINGS);
            } else {
                log.records.write(|v| v.push((k, seq)));
            }
        }
    } else {
        // Seeded bug: append first, notice the poison too late.
        if fails {
            log.poison.poison(&POISON_ORDERINGS);
        } else {
            log.records.write(|v| v.push((k, seq)));
            let _ = log.poison.healthy(&POISON_ORDERINGS);
        }
    }
    log.lock.unlock(lock_ord);
}

/// Check the log's core invariants on a snapshot of the records.
fn check_snapshot(records: &[(u8, u8)]) {
    // The failed append and everything the writer attempted after the
    // poison must be invisible.
    assert!(
        !records.iter().any(|&(k, s)| k == 0 && s >= W0_FAIL_AT),
        "append landed after poison: {records:?}"
    );
    // Surviving records per writer form a contiguous prefix (the
    // torn-tail prefix loader depends on this).
    for k in 0..2u8 {
        let seqs: Vec<u8> = records
            .iter()
            .filter(|&&(w, _)| w == k)
            .map(|&(_, s)| s)
            .collect();
        for (i, &s) in seqs.iter().enumerate() {
            assert_eq!(s as usize, i, "writer {k} records not a prefix: {seqs:?}");
        }
    }
}

fn build(spec: &mut ModelSpec, lock_ord: &'static LockOrderings, gate_first: bool) {
    let log = Arc::new(Log::new());
    let (l1, l2, l3) = (log.clone(), log.clone(), log.clone());
    spec.thread(move || {
        for seq in 0..W0_SEQS {
            record(&l1, lock_ord, 0, seq, seq == W0_FAIL_AT, gate_first);
        }
    });
    spec.thread(move || {
        for seq in 0..W1_SEQS {
            record(&l2, lock_ord, 1, seq, false, gate_first);
        }
    });
    spec.thread(move || {
        // SIGINT-style concurrent flush: observe a coherent snapshot.
        l3.lock.lock(lock_ord);
        let snap = l3.records.read(|v| v.clone());
        let healthy = l3.poison.healthy(&POISON_ORDERINGS);
        l3.lock.unlock(lock_ord);
        check_snapshot(&snap);
        // Once the flusher has seen the poison, writer 0's failed seq is
        // certainly absent (already covered by check_snapshot); a healthy
        // observation just means the failure hasn't happened yet.
        let _ = healthy;
    });
    spec.finale(move || {
        assert!(
            !log.poison.healthy(&POISON_ORDERINGS),
            "the failed append did not poison the checkpoint"
        );
        let snap = log.records.read(|v| v.clone());
        check_snapshot(&snap);
        assert!(
            snap.contains(&(0, 0)),
            "writer 0's pre-failure record was lost: {snap:?}"
        );
    });
}

/// The shipped protocol: gate re-checked under the file mutex before
/// every append. Must pass bounded-exhaustive exploration.
pub fn shipped(opts: Options) -> Report {
    explore("checkpoint/shipped", opts, |spec| {
        build(spec, &MUTEX_ORDERINGS, true)
    })
}

/// Mutation: append before consulting the poison gate. A post-poison
/// append lands and the prefix contract breaks; the explorer must find
/// it.
pub fn mut_gate_after_write(opts: Options) -> Report {
    explore("checkpoint/mut-gate-after-write", opts, |spec| {
        build(spec, &MUTEX_ORDERINGS, false)
    })
}

/// Mutation: the file mutex releases with `Relaxed`; appends are no
/// longer published to the flusher. The explorer must report the data
/// race on the record log.
pub fn mut_unlock_relaxed(opts: Options) -> Report {
    static WEAK_LOCK: LockOrderings = LockOrderings {
        acquire_success: Ordering::Acquire,
        acquire_failure: Ordering::Relaxed,
        release: Ordering::Relaxed, // seeded bug: no release edge
    };
    explore("checkpoint/mut-unlock-relaxed", opts, |spec| {
        build(spec, &WEAK_LOCK, true)
    })
}
