//! Protocol model P1: `pulsar_obs::Recorder` shard fork / retire /
//! snapshot merging.
//!
//! The production registry keeps per-thread `Shard`s in a mutex-guarded
//! live list plus a `folded` accumulator shard; `retire` folds a
//! departing shard into the accumulator under the lock, and `snapshot`
//! sums the accumulator plus every live shard under the same lock. The
//! atomic arithmetic is the *shipped* generic
//! [`pulsar_obs::metrics::shard_proto`] with the shipped
//! [`SHARD_ORDERINGS`]; the registry mutex is modeled by [`MLock`] and
//! the live flags by race-checked [`MCell`]s.
//!
//! Invariants checked:
//!
//! * a snapshot never double-counts (total ≤ the amount added);
//! * a snapshot taken after both shards retired sees the exact total
//!   (this is the invariant the pre-fix production `snapshot()` broke
//!   by reading the accumulator outside the lock — mutation
//!   [`mut_snapshot_outside_lock`] reproduces that bug);
//! * no data race on the live flags (mutation [`mut_unlock_relaxed`]
//!   weakens the lock's release ordering and must be caught).

use pulsar_obs::metrics::shard_proto::{self, ShardOrderings, SHARD_ORDERINGS};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::atomics::MAtomicU64;
use crate::cell::{LockOrderings, MCell, MLock, MUTEX_ORDERINGS};
use crate::sim::{explore, ModelSpec, Options, Report};

/// Counter cells per shard (one is enough to cover the protocol; more
/// cells only multiply the schedule space).
const CELLS: usize = 1;

/// Amount worker `k` adds to its shard.
fn amount(k: usize) -> u64 {
    k as u64 + 1
}

/// Total added across both workers.
const TOTAL: u64 = 3;

struct Registry {
    lock: MLock,
    folded: [MAtomicU64; CELLS],
    live: [MCell<bool>; 2],
    shards: [[MAtomicU64; CELLS]; 2],
}

impl Registry {
    fn new() -> Self {
        use pulsar_obs::sync::AtomicU64Like;
        Registry {
            lock: MLock::new(),
            folded: [MAtomicU64::new(0)],
            live: [MCell::new(true), MCell::new(true)],
            shards: [[MAtomicU64::new(0)], [MAtomicU64::new(0)]],
        }
    }
}

/// Worker `k`: record into the owned shard, then retire it (the
/// production `Recorder::fork` drop path).
fn worker(reg: &Registry, k: usize, lock_ord: &LockOrderings, ord: &ShardOrderings) {
    shard_proto::add(&reg.shards[k][0], amount(k), ord);
    reg.lock.lock(lock_ord);
    if reg.live[k].read(|v| *v) {
        shard_proto::fold_slice(&reg.shards[k], &reg.folded, ord);
        reg.live[k].write(|v| *v = false);
    }
    reg.lock.unlock(lock_ord);
}

/// One merged snapshot: accumulator plus every still-live shard.
/// `fold_under_lock` mirrors the fixed production code; `false`
/// reproduces the pre-fix bug of reading the accumulator outside the
/// registry lock.
fn snapshot(
    reg: &Registry,
    lock_ord: &LockOrderings,
    ord: &ShardOrderings,
    fold_under_lock: bool,
) -> (u64, bool, bool) {
    let mut buf = [0u64; CELLS];
    if !fold_under_lock {
        shard_proto::load_slice(&reg.folded, &mut buf, ord);
    }
    reg.lock.lock(lock_ord);
    if fold_under_lock {
        shard_proto::load_slice(&reg.folded, &mut buf, ord);
    }
    let l0 = reg.live[0].read(|v| *v);
    if l0 {
        shard_proto::load_slice(&reg.shards[0], &mut buf, ord);
    }
    let l1 = reg.live[1].read(|v| *v);
    if l1 {
        shard_proto::load_slice(&reg.shards[1], &mut buf, ord);
    }
    reg.lock.unlock(lock_ord);
    (buf[0], l0, l1)
}

fn build(spec: &mut ModelSpec, lock_ord: &'static LockOrderings, fold_under_lock: bool) {
    let reg = Arc::new(Registry::new());
    let (r1, r2, r3) = (reg.clone(), reg.clone(), reg.clone());
    spec.thread(move || worker(&r1, 0, lock_ord, &SHARD_ORDERINGS));
    spec.thread(move || worker(&r2, 1, lock_ord, &SHARD_ORDERINGS));
    spec.thread(move || {
        let (count, l0, l1) = snapshot(&r3, lock_ord, &SHARD_ORDERINGS, fold_under_lock);
        assert!(count <= TOTAL, "snapshot double-counted: {count} > {TOTAL}");
        if !l0 && !l1 {
            assert_eq!(
                count, TOTAL,
                "snapshot after both retires undercounted (missed a fold)"
            );
        }
    });
    spec.finale(move || {
        let (count, l0, l1) = snapshot(&reg, lock_ord, &SHARD_ORDERINGS, fold_under_lock);
        assert!(!l0 && !l1, "a shard survived its retire");
        assert_eq!(count, TOTAL, "final total wrong: {count}");
    });
}

/// The shipped protocol: registry mutex orderings, fold read under the
/// lock. Must pass bounded-exhaustive exploration.
pub fn shipped(opts: Options) -> Report {
    explore("recorder/shipped", opts, |spec| {
        build(spec, &MUTEX_ORDERINGS, true)
    })
}

/// Mutation: the registry lock releases with `Relaxed` — retire's fold
/// and flag update are no longer published to the snapshot thread. The
/// explorer must report the resulting data race on the live flag.
pub fn mut_unlock_relaxed(opts: Options) -> Report {
    static WEAK_LOCK: LockOrderings = LockOrderings {
        acquire_success: Ordering::Acquire,
        acquire_failure: Ordering::Relaxed,
        release: Ordering::Relaxed, // seeded bug: no release edge
    };
    explore("recorder/mut-unlock-relaxed", opts, |spec| {
        build(spec, &WEAK_LOCK, true)
    })
}

/// Mutation: the snapshot reads the folded accumulator *outside* the
/// registry lock — the production bug fixed in `Recorder::snapshot`
/// (a concurrent retire's fold could be missed, undercounting). The
/// explorer must find the undercount.
pub fn mut_snapshot_outside_lock(opts: Options) -> Report {
    explore("recorder/mut-snapshot-outside-lock", opts, |spec| {
        build(spec, &MUTEX_ORDERINGS, false)
    })
}
