//! Protocol model P2: first-reason-wins cancellation with parent/child
//! propagation — the *shipped* [`CancelCore`] instantiated with modeled
//! atomics and the shipped [`CANCEL_ORDERINGS`].
//!
//! Scenario: a run-level token is raced by a SIGINT trip (`User`) and a
//! deadline watchdog trip (`Deadline`); a per-sample child token is
//! tripped by its own timeout watchdog while readers poll both.
//!
//! Invariants checked:
//!
//! * exactly one reason lands on the run token, and a reader that once
//!   observed it never sees it change;
//! * a directly-tripped child reports its own reason immediately and
//!   forever, regardless of the parent's state;
//! * a pure child (never self-tripped) observes the parent's
//!   cancellation, monotonically.
//!
//! The mutation self-test replaces the trip CAS with the racy
//! load-then-store it guards against and asserts the explorer catches
//! two trips both claiming the win.

use pulsar_obs::sync::AtomicU8Like;
use pulsar_obs::{CancelCore, CancelReason, CANCEL_ORDERINGS};
use std::sync::Arc;

use crate::atomics::{MAtomicU8, ModelAtomics};
use crate::cell::MCell;
use crate::sim::{explore, ModelSpec, Options, Report};

type Core = CancelCore<ModelAtomics>;

/// Run-level token raced by SIGINT and deadline, with a self-tripped
/// child and a run-reader. Uses the shipped core + orderings.
pub fn shipped(opts: Options) -> Report {
    explore("cancel/shipped", opts, |spec: &mut ModelSpec| {
        let run: Arc<Core> = Arc::new(CancelCore::new());
        let child: Arc<Core> = Arc::new(CancelCore::child_of(&run));
        let (r1, r2, rf) = (run.clone(), run.clone(), run.clone());
        let (c1, cf) = (child.clone(), child.clone());
        spec.thread(move || r1.cancel(CancelReason::User, &CANCEL_ORDERINGS));
        spec.thread(move || r2.cancel(CancelReason::Deadline, &CANCEL_ORDERINGS));
        spec.thread(move || {
            // The sample's watchdog cuts the child loose, then the
            // sample observes: its own reason, immediately and stably.
            c1.cancel(CancelReason::Timeout, &CANCEL_ORDERINGS);
            assert_eq!(
                c1.cancelled(&CANCEL_ORDERINGS),
                Some(CancelReason::Timeout),
                "child did not observe its own trip"
            );
        });
        spec.thread(move || {
            let a = run.cancelled(&CANCEL_ORDERINGS);
            let b = run.cancelled(&CANCEL_ORDERINGS);
            if let Some(r) = a {
                assert_eq!(Some(r), b, "run token reason changed between reads");
            }
        });
        spec.finale(move || {
            let r = rf.cancelled(&CANCEL_ORDERINGS);
            assert!(
                matches!(r, Some(CancelReason::User) | Some(CancelReason::Deadline)),
                "run token ended with {r:?}"
            );
            assert_eq!(
                cf.cancelled(&CANCEL_ORDERINGS),
                Some(CancelReason::Timeout),
                "child's own trip did not take precedence"
            );
        });
    })
}

/// A pure child (never tripped itself) must observe parent trips
/// monotonically: once cancelled, cancelled forever, same reason.
pub fn child_propagation(opts: Options) -> Report {
    explore("cancel/child-propagation", opts, |spec: &mut ModelSpec| {
        let run: Arc<Core> = Arc::new(CancelCore::new());
        let child: Arc<Core> = Arc::new(CancelCore::child_of(&run));
        let (r1, r2) = (run.clone(), run.clone());
        spec.thread(move || r1.cancel(CancelReason::User, &CANCEL_ORDERINGS));
        spec.thread(move || r2.cancel(CancelReason::Deadline, &CANCEL_ORDERINGS));
        spec.thread(move || {
            let a = child.cancelled(&CANCEL_ORDERINGS);
            let b = child.cancelled(&CANCEL_ORDERINGS);
            if let Some(r) = a {
                assert_eq!(Some(r), b, "child observation regressed: {a:?} then {b:?}");
            }
        });
        spec.finale(move || {
            let r = run.cancelled(&CANCEL_ORDERINGS);
            assert!(r.is_some(), "both trips lost");
        });
    })
}

/// Mutation: the first-reason-wins CAS replaced by the racy
/// load-then-store it exists to prevent. Two concurrent trips can both
/// observe `LIVE` and both believe they won; the explorer must find
/// that schedule.
pub fn mut_racy_trip(opts: Options) -> Report {
    // The protocol shape on a bare modeled AtomicU8 (the core's private
    // flag is deliberately unreachable), with the shipped orderings.
    fn trip_racy(flag: &MAtomicU8, reason: u8) -> bool {
        if flag.load(CANCEL_ORDERINGS.read) == 0 {
            flag.store(reason, CANCEL_ORDERINGS.trip_success);
            true // this trip believes it set the reason
        } else {
            false
        }
    }
    explore("cancel/mut-racy-trip", opts, |spec: &mut ModelSpec| {
        let flag = Arc::new(MAtomicU8::new(0));
        let won = Arc::new([MCell::new(false), MCell::new(false)]);
        let (f1, f2) = (flag.clone(), flag.clone());
        let (w1, w2, wf) = (won.clone(), won.clone(), won.clone());
        spec.thread(move || {
            let w = trip_racy(&f1, 1);
            w1[0].write(|v| *v = w);
        });
        spec.thread(move || {
            let w = trip_racy(&f2, 2);
            w2[1].write(|v| *v = w);
        });
        spec.finale(move || {
            let both = wf[0].read(|v| *v) && wf[1].read(|v| *v);
            assert!(!both, "two trips both won the first-reason race");
        });
    })
}

/// Sanity check for the mutation's harness: the same two-tripper race
/// through the real CAS-based core never double-wins. (The winner is
/// whoever's `compare_exchange` returns `Ok`.)
pub fn cas_single_winner(opts: Options) -> Report {
    explore("cancel/cas-single-winner", opts, |spec: &mut ModelSpec| {
        let flag = Arc::new(MAtomicU8::new(0));
        let won = Arc::new([MCell::new(false), MCell::new(false)]);
        let (f1, f2) = (flag.clone(), flag.clone());
        let (w1, w2, wf) = (won.clone(), won.clone(), won.clone());
        for (k, (f, w)) in [(f1, w1), (f2, w2)].into_iter().enumerate() {
            spec.thread(move || {
                let ok = f
                    .compare_exchange(
                        0,
                        k as u8 + 1,
                        CANCEL_ORDERINGS.trip_success,
                        CANCEL_ORDERINGS.trip_failure,
                    )
                    .is_ok();
                w[k].write(|v| *v = ok);
            });
        }
        spec.finale(move || {
            let a = wf[0].read(|v| *v);
            let b = wf[1].read(|v| *v);
            assert!(a ^ b, "expected exactly one winner, got a={a} b={b}");
        });
    })
}
