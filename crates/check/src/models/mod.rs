//! Checkable models of the workspace's four lock-free protocols, plus
//! the deliberately-broken *mutation* variants the explorer must catch.
//!
//! Each model instantiates the **shipped** generic protocol core
//! (`CancelCore`, `shard_proto`, `PoisonFlag`, `FillSlot`) with
//! [`crate::atomics::ModelAtomics`] and the shipped `*_ORDERINGS`
//! constants, so exploration covers the code and orderings that run in
//! production. The mutation variants weaken one ordering or reorder
//! one step; their self-tests assert the explorer reports the seeded
//! bug — proof the checker can see the failures it guards against.

pub mod cancel;
pub mod checkpoint;
pub mod recorder;
pub mod serve;

use crate::sim::{Options, Report};

/// Preemption bound used by the CI smoke tier.
pub const SMOKE_BOUND: usize = 2;

/// Run every shipped-protocol model bounded-exhaustively and return the
/// reports (one per model). All must pass with `exhausted = true`.
pub fn shipped_suite(opts: Options) -> Vec<Report> {
    vec![
        recorder::shipped(opts),
        cancel::shipped(opts),
        cancel::child_propagation(opts),
        cancel::cas_single_winner(opts),
        checkpoint::shipped(opts),
        serve::fill_shipped(opts),
        serve::queue_shipped(opts),
    ]
}

/// Run every mutation model; returns `(report, expected_needle)` pairs.
/// Each report must contain a violation matching its needle.
pub fn mutation_suite(opts: Options) -> Vec<(Report, &'static str)> {
    // The racy-trip mutation needs one extra preemption to interleave
    // the two load-then-store trips *and* still fit the readers.
    let deeper = Options {
        preemption_bound: opts.preemption_bound.max(3),
        ..opts
    };
    vec![
        (recorder::mut_unlock_relaxed(opts), "data race"),
        (recorder::mut_snapshot_outside_lock(opts), "undercounted"),
        (cancel::mut_racy_trip(deeper), "both won"),
        (checkpoint::mut_gate_after_write(opts), "after poison"),
        (checkpoint::mut_unlock_relaxed(opts), "data race"),
        (serve::mut_publish_relaxed(opts), "data race"),
        (serve::mut_ungated_dequeue(opts), "cancelled job ran"),
    ]
}

/// Default smoke-tier options (the CI gate).
pub fn smoke_options() -> Options {
    Options::exhaustive(SMOKE_BOUND)
}
