//! Litmus tests for the simulator itself: classic weak-memory shapes
//! with known-allowed and known-forbidden outcomes. These pin down the
//! semantics of [`crate::sim`] — if the memory model regresses, these
//! fail before any protocol model does.

use crate::atomics::{MAtomicBool, MAtomicU64};
use crate::cell::{MCell, MLock, MUTEX_ORDERINGS};
use crate::sim::{explore, explore_outcomes, Options};
use pulsar_obs::sync::{AtomicBoolLike, AtomicU64Like};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

/// Message passing with Release/Acquire: the classic publication
/// pattern must never observe `flag == true, data == 0`.
#[test]
fn mp_release_acquire_publishes() {
    let r = explore("litmus/mp-rel-acq", Options::exhaustive(3), |spec| {
        let data = Arc::new(MAtomicU64::new(0));
        let flag = Arc::new(MAtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        spec.thread(move || {
            data.store(42, Relaxed);
            flag.store(true, Release);
        });
        spec.thread(move || {
            if f2.load(Acquire) {
                assert_eq!(d2.load(Relaxed), 42, "MP: stale data behind acquired flag");
            }
        });
    });
    let n = r.assert_pass();
    assert!(r.exhausted, "MP space should be exhaustible");
    assert!(n >= 4, "expected several schedules, got {n}");
}

/// The same shape with a Relaxed flag store must be caught: some
/// schedule lets the reader see the flag without the data.
#[test]
fn mp_relaxed_is_caught() {
    let r = explore("litmus/mp-relaxed", Options::exhaustive(3), |spec| {
        let data = Arc::new(MAtomicU64::new(0));
        let flag = Arc::new(MAtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        spec.thread(move || {
            data.store(42, Relaxed);
            flag.store(true, Relaxed); // bug under test: no release edge
        });
        spec.thread(move || {
            if f2.load(Acquire) {
                assert_eq!(d2.load(Relaxed), 42, "MP: stale data behind acquired flag");
            }
        });
    });
    r.assert_caught("stale data");
}

/// Store buffering with Relaxed ops: the weak `r1 == r2 == 0` outcome
/// must be reachable (stale reads model the store buffer).
#[test]
fn sb_relaxed_allows_both_zero() {
    let (r, outcomes) = explore_outcomes("litmus/sb-relaxed", Options::exhaustive(3), |spec| {
        let x = Arc::new(MAtomicU64::new(0));
        let y = Arc::new(MAtomicU64::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        spec.thread(move || {
            x.store(1, Relaxed);
            if y.load(Relaxed) == 0 {
                // Probe: panic so the outcome tally records this branch.
                panic!("probe: r1 == 0");
            }
        });
        spec.thread(move || {
            y2.store(1, Relaxed);
            if x2.load(Relaxed) == 0 {
                panic!("probe: r2 == 0");
            }
        });
    });
    assert!(r.exhausted || r.truncated);
    // Both single-sided probes must fire somewhere in the space; the
    // both-zero outcome shows up as either probe (first panic wins).
    assert!(
        outcomes.keys().any(|k| k.contains("r1 == 0"))
            && outcomes.keys().any(|k| k.contains("r2 == 0")),
        "SB weak outcomes missing: {outcomes:?}"
    );
}

/// Store buffering with SeqCst: the both-zero outcome is forbidden.
#[test]
fn sb_seqcst_forbids_both_zero() {
    let r = explore("litmus/sb-seqcst", Options::exhaustive(3), |spec| {
        let x = Arc::new(MAtomicU64::new(0));
        let y = Arc::new(MAtomicU64::new(0));
        let r1 = Arc::new(MCell::new(0u64));
        let r2 = Arc::new(MCell::new(0u64));
        let (x2, y2) = (x.clone(), y.clone());
        let (r1f, r2f) = (r1.clone(), r2.clone());
        spec.thread(move || {
            x.store(1, SeqCst);
            let v = y.load(SeqCst);
            r1.write(|r| *r = v);
        });
        spec.thread(move || {
            y2.store(1, SeqCst);
            let v = x2.load(SeqCst);
            r2.write(|r| *r = v);
        });
        spec.finale(move || {
            let a = r1f.read(|r| *r);
            let b = r2f.read(|r| *r);
            assert!(
                a == 1 || b == 1,
                "SeqCst SB produced the forbidden r1 == r2 == 0"
            );
        });
    });
    r.assert_pass();
    assert!(r.exhausted);
}

/// Two concurrent `fetch_add`s never lose an update (RMW atomicity).
#[test]
fn rmw_no_lost_update() {
    let r = explore("litmus/rmw-atomic", Options::exhaustive(3), |spec| {
        let c = Arc::new(MAtomicU64::new(0));
        let c2 = c.clone();
        let cf = c.clone();
        spec.thread(move || {
            c.fetch_add(1, Relaxed);
        });
        spec.thread(move || {
            c2.fetch_add(1, Relaxed);
        });
        spec.finale(move || {
            assert_eq!(cf.load(Relaxed), 2, "lost update");
        });
    });
    r.assert_pass();
    assert!(r.exhausted);
}

/// Per-location coherence: a reader never observes values of one
/// location going backwards, even fully Relaxed.
#[test]
fn coherence_no_backwards_reads() {
    let r = explore("litmus/coherence", Options::exhaustive(3), |spec| {
        let x = Arc::new(MAtomicU64::new(0));
        let x2 = x.clone();
        spec.thread(move || {
            x.store(1, Relaxed);
            x.store(2, Relaxed);
        });
        spec.thread(move || {
            let a = x2.load(Relaxed);
            let b = x2.load(Relaxed);
            assert!(b >= a, "coherence violated: read {a} then {b}");
        });
    });
    r.assert_pass();
    assert!(r.exhausted);
}

/// Unsynchronized cell access is reported as a data race.
#[test]
fn unsynchronized_cell_races() {
    let r = explore("litmus/cell-race", Options::exhaustive(3), |spec| {
        let c = Arc::new(MCell::new(0u64));
        let c2 = c.clone();
        spec.thread(move || c.write(|v| *v = 1));
        spec.thread(move || {
            c2.read(|v| {
                let _ = *v;
            })
        });
    });
    r.assert_caught("data race");
}

/// The same access pattern under a (correct) lock is race-free, and
/// the critical sections still interleave in both orders.
#[test]
fn locked_cell_is_race_free() {
    let r = explore("litmus/cell-locked", Options::exhaustive(3), |spec| {
        let lock = Arc::new(MLock::new());
        let c = Arc::new(MCell::new(0u64));
        let (l2, c2) = (lock.clone(), c.clone());
        let cf = c.clone();
        spec.thread(move || {
            lock.lock(&MUTEX_ORDERINGS);
            c.write(|v| *v += 1);
            lock.unlock(&MUTEX_ORDERINGS);
        });
        spec.thread(move || {
            l2.lock(&MUTEX_ORDERINGS);
            c2.write(|v| *v += 1);
            l2.unlock(&MUTEX_ORDERINGS);
        });
        spec.finale(move || {
            assert_eq!(cf.read(|v| *v), 2);
        });
    });
    let n = r.assert_pass();
    assert!(r.exhausted);
    assert!(
        n >= 2,
        "lock model explored suspiciously few schedules: {n}"
    );
}

/// A thread spinning on a flag nobody sets is reported as a deadlock,
/// not an infinite loop.
#[test]
fn abandoned_spin_is_deadlock() {
    let r = explore("litmus/spin-deadlock", Options::exhaustive(3), |spec| {
        let flag = Arc::new(MAtomicBool::new(false));
        spec.thread(move || {
            while !flag.load(Acquire) {
                crate::sim::spin_yield();
            }
        });
    });
    r.assert_caught("deadlock");
}

/// Seeded-random mode is deterministic per seed and finds the MP bug.
#[test]
fn random_mode_reproducible() {
    let build = |spec: &mut crate::sim::ModelSpec| {
        let data = Arc::new(MAtomicU64::new(0));
        let flag = Arc::new(MAtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        spec.thread(move || {
            data.store(42, Relaxed);
            flag.store(true, Relaxed);
        });
        spec.thread(move || {
            if f2.load(Acquire) {
                assert_eq!(d2.load(Relaxed), 42, "MP: stale data behind acquired flag");
            }
        });
    };
    let a = explore("litmus/mp-random-a", Options::random(0xDECAF, 400), build);
    let b = explore("litmus/mp-random-b", Options::random(0xDECAF, 400), build);
    a.assert_caught("stale data");
    b.assert_caught("stale data");
    assert_eq!(
        a.schedules, b.schedules,
        "same seed must fail at the same run index"
    );
}
