//! `lint-src`: a hand-rolled source-level analyzer for the workspace's
//! concurrency and hot-path hygiene rules.
//!
//! This is **not** a Rust parser — it is a line-oriented scanner with
//! just enough lexical awareness (string literals, `//` and `/* */`
//! comments, brace depth, `#[cfg(test)]` regions) to enforce a small
//! set of grep-resistant house rules over `crates/*/src`:
//!
//! | rule | meaning |
//! |------|---------|
//! | `SRC0001` | `Ordering::Relaxed` / `Ordering::SeqCst` outside an allowlisted path needs a `// ordering:` justification on the same or previous line |
//! | `SRC0002` | `unwrap()` / `expect(` in a hot-path module needs `// hot-path:` |
//! | `SRC0003` | `Instant::now` in a hot-path module needs `// hot-path:` |
//! | `SRC0004` | allocation inside a loop in a hot-path module needs `// hot-path:` |
//! | `SRC0005` | detached `thread::spawn` (result discarded) needs a `// spawn:` justification naming the join/retire story |
//!
//! Hot-path modules are the per-timestep solver core ([`HOT_PATHS`]).
//! `#[cfg(test)]` items and everything outside `src/` are exempt. The
//! allowlist lives at the repository root (`lint_src_allow.txt`, one
//! path prefix per line) and is reserved for code *about* orderings —
//! the model checker itself — rather than code that merely uses them.
//!
//! The justification comments are load-bearing: DESIGN.md §5.8 keeps
//! the memory-ordering contract table, and every `// ordering:` line in
//! the source is the local copy of that row's invariant.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Modules on the per-timestep hot path: `unwrap`, `Instant::now`, and
/// in-loop allocation are banned here (rules `SRC0002`–`SRC0004`).
pub const HOT_PATHS: &[&str] = &[
    "crates/analog/src/solver/mna.rs",
    "crates/analog/src/solver/batch.rs",
    "crates/analog/src/waveform.rs",
    "crates/mc/src/adaptive.rs",
];

/// Name of the allowlist file at the repository root.
pub const ALLOWLIST_FILE: &str = "lint_src_allow.txt";

/// The rule a finding violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SrcRule {
    /// `SRC0001`: unjustified `Ordering::Relaxed` / `Ordering::SeqCst`.
    UnjustifiedOrdering,
    /// `SRC0002`: `unwrap` / `expect` in a hot-path module.
    HotPathUnwrap,
    /// `SRC0003`: `Instant::now` in a hot-path module.
    HotPathInstant,
    /// `SRC0004`: allocation inside a loop in a hot-path module.
    HotPathAlloc,
    /// `SRC0005`: detached `thread::spawn` without a join/retire path.
    DetachedSpawn,
}

impl SrcRule {
    /// Stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            SrcRule::UnjustifiedOrdering => "SRC0001",
            SrcRule::HotPathUnwrap => "SRC0002",
            SrcRule::HotPathInstant => "SRC0003",
            SrcRule::HotPathAlloc => "SRC0004",
            SrcRule::DetachedSpawn => "SRC0005",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct SrcFinding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: SrcRule,
    /// Human-oriented explanation (includes the expected fix).
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}\n    | {}",
            self.file,
            self.line,
            self.rule.code(),
            self.message,
            self.snippet
        )
    }
}

/// The result of scanning a tree (or a single buffer).
#[derive(Debug, Default)]
pub struct SrcReport {
    /// Every violation found, in path/line order.
    pub findings: Vec<SrcFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl SrcReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human rendering, one block per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint-src: {} finding(s) in {} file(s) scanned\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// Machine rendering (JSON), stable field order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
                json_escape(&f.file),
                f.line,
                f.rule.code(),
                json_escape(&f.message),
                if i + 1 == self.findings.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Paths (prefixes, `/`-separated, repo-relative) exempt from
/// `SRC0001`. Parsed from [`ALLOWLIST_FILE`].
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    prefixes: Vec<String>,
}

impl Allowlist {
    /// Parse allowlist text: one path prefix per line, `#` comments.
    pub fn parse(text: &str) -> Allowlist {
        Allowlist {
            prefixes: text
                .lines()
                .map(|l| l.split('#').next().unwrap_or("").trim())
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// True when `file` is covered by an allowlist entry.
    pub fn covers(&self, file: &str) -> bool {
        self.prefixes.iter().any(|p| file.starts_with(p.as_str()))
    }
}

// ---------------------------------------------------------------------------
// Lexical pre-pass: split each line into code and `//`-comment parts,
// tracking multi-line strings and block comments.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    /// Inside `/* */`, with nesting depth (Rust block comments nest).
    Block(u32),
    /// Inside a `"` string literal.
    Str,
    /// Inside a raw string with `n` hashes (`r##"..."##`).
    RawStr(u32),
}

#[derive(Debug, Default)]
struct LexedLine {
    /// Code with string contents blanked and comments removed.
    code: String,
    /// Text of the trailing `//` comment (empty if none).
    comment: String,
}

fn lex(text: &str) -> Vec<LexedLine> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    for line in text.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                LexState::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 0 {
                            LexState::Normal
                        } else {
                            LexState::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                LexState::Str => {
                    if c == '\\' {
                        i += 2;
                    } else {
                        if c == '"' {
                            state = LexState::Normal;
                            code.push('"');
                        }
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if c == '"' {
                        let closes =
                            (0..hashes as usize).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                        if closes {
                            state = LexState::Normal;
                            code.push('"');
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Normal => {
                    if c == '/' && next == Some('/') {
                        comment = bytes[i..].iter().collect();
                        break;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(0);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if c == 'r'
                        && i.checked_sub(1)
                            .and_then(|p| bytes.get(p))
                            .is_none_or(|p| !(p.is_alphanumeric() || *p == '_'))
                        && matches!(next, Some('"') | Some('#'))
                    {
                        // Possible raw string: r"..." or r#"..."#.
                        let mut hashes = 0u32;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('"');
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal or lifetime: a char literal
                        // visibly closes within a few chars.
                        if next == Some('\\') {
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            code.push('\'');
                            i = (j + 1).min(bytes.len());
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            i += 3;
                        } else {
                            // A lifetime: keep as-is.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(LexedLine { code, comment });
    }
    out
}

// ---------------------------------------------------------------------------
// The scanner proper.
// ---------------------------------------------------------------------------

/// A site is justified by a `// <tag>` comment on its own line or
/// anywhere in the contiguous comment block directly above it.
fn has_justification(lines: &[LexedLine], idx: usize, tag: &str) -> bool {
    if lines[idx].comment.contains(tag) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        let prev = &lines[i - 1];
        if !prev.code.trim().is_empty() || prev.comment.is_empty() {
            break;
        }
        if prev.comment.contains(tag) {
            return true;
        }
        i -= 1;
    }
    false
}

/// Does the code between the last statement boundary and a
/// `thread::spawn` token indicate the spawn's result is consumed?
fn spawn_prefix_consumes(prefix: &str) -> bool {
    let p = prefix.trim().trim_end_matches("std::").trim_end();
    !p.is_empty()
}

// Note: `Vec::new`/`String::new` are absent on purpose — Rust's empty
// collection constructors do not allocate.
const ALLOC_MARKERS: &[&str] = &[
    "vec!",
    "String::from",
    "Box::new",
    "format!",
    "with_capacity",
    ".to_vec()",
    ".to_string()",
    ".collect()",
    ".collect::<",
];

/// Lint one source buffer. `file` is the repo-relative label used both
/// for reporting and for the path-dependent rules (hot-path modules,
/// allowlist).
pub fn lint_source(file: &str, text: &str, allow: &Allowlist) -> Vec<SrcFinding> {
    let lines = lex(text);
    let hot = HOT_PATHS.iter().any(|h| file.ends_with(h) || *h == file);
    let allowed = allow.covers(file);

    let mut findings = Vec::new();
    let mut depth: i64 = 0;
    // Brace stack entries: true = loop body.
    let mut loop_stack: Vec<bool> = Vec::new();
    // Code accumulated since the last `;` / `{` / `}` (statement head).
    let mut stmt_head = String::new();
    // A `#[cfg(test)]` attribute awaiting its item body.
    let mut cfg_test_pending = false;
    // Depth above which lines are test-only and skipped.
    let mut cfg_skip_above: Option<i64> = None;
    // In-flight multi-line detached-spawn scan: (line_idx, balance).
    let mut spawn_scan: Option<(usize, i64)> = None;

    for (idx, ll) in lines.iter().enumerate() {
        let code = ll.code.as_str();
        let in_test = cfg_skip_above.is_some();
        let in_loop = loop_stack.iter().any(|&l| l);

        // -- rules (evaluated with the state at the start of the line) --
        if !in_test {
            if !allowed
                && (code.contains("Ordering::Relaxed") || code.contains("Ordering::SeqCst"))
                && !has_justification(&lines, idx, "ordering:")
            {
                findings.push(SrcFinding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: SrcRule::UnjustifiedOrdering,
                    message: "Relaxed/SeqCst atomic ordering without a `// ordering:` \
                              justification (see DESIGN.md \u{a7}5.8)"
                        .to_string(),
                    snippet: code.trim().to_string(),
                });
            }
            if hot {
                if (code.contains(".unwrap()") || code.contains(".expect("))
                    && !has_justification(&lines, idx, "hot-path:")
                {
                    findings.push(SrcFinding {
                        file: file.to_string(),
                        line: idx + 1,
                        rule: SrcRule::HotPathUnwrap,
                        message: "unwrap/expect in a hot-path module without a \
                                  `// hot-path:` justification"
                            .to_string(),
                        snippet: code.trim().to_string(),
                    });
                }
                if code.contains("Instant::now") && !has_justification(&lines, idx, "hot-path:") {
                    findings.push(SrcFinding {
                        file: file.to_string(),
                        line: idx + 1,
                        rule: SrcRule::HotPathInstant,
                        message: "Instant::now in a hot-path module without a \
                                  `// hot-path:` justification (hoist clock reads \
                                  out of the step loop)"
                            .to_string(),
                        snippet: code.trim().to_string(),
                    });
                }
                if in_loop
                    && ALLOC_MARKERS.iter().any(|m| code.contains(m))
                    && !has_justification(&lines, idx, "hot-path:")
                {
                    findings.push(SrcFinding {
                        file: file.to_string(),
                        line: idx + 1,
                        rule: SrcRule::HotPathAlloc,
                        message: "allocation inside a loop in a hot-path module \
                                  without a `// hot-path:` justification (reuse a \
                                  workspace buffer instead)"
                            .to_string(),
                        snippet: code.trim().to_string(),
                    });
                }
            }

            // -- detached thread::spawn tracking --
            if let Some((start_idx, mut bal)) = spawn_scan.take() {
                match close_call(code, 0, &mut bal) {
                    Some(end) => {
                        if code[end..].trim_start().starts_with(';')
                            && !has_justification(&lines, start_idx, "spawn:")
                        {
                            findings.push(detached_spawn_finding(
                                file,
                                start_idx,
                                lines[start_idx].code.as_str(),
                            ));
                        }
                    }
                    None => spawn_scan = Some((start_idx, bal)),
                }
            } else if let Some(pos) = code.find("thread::spawn") {
                // Statement head: everything since the last boundary,
                // including earlier lines when this line has none.
                let head_on_line = &code[..pos];
                let head = match head_on_line.rfind([';', '{', '}']) {
                    Some(b) => head_on_line[b + 1..].to_string(),
                    None => format!("{stmt_head}{head_on_line}"),
                };
                if !spawn_prefix_consumes(&head) {
                    let mut bal = 0i64;
                    match close_call(code, pos, &mut bal) {
                        Some(end) => {
                            if code[end..].trim_start().starts_with(';')
                                && !has_justification(&lines, idx, "spawn:")
                            {
                                findings.push(detached_spawn_finding(file, idx, code));
                            }
                        }
                        None => spawn_scan = Some((idx, bal)),
                    }
                }
            }
        }

        // -- state updates: cfg(test), braces, loops, statement head --
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            cfg_test_pending = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if cfg_test_pending && cfg_skip_above.is_none() {
                        cfg_skip_above = Some(depth);
                        cfg_test_pending = false;
                    }
                    loop_stack.push(head_is_loop(&stmt_head));
                    depth += 1;
                    stmt_head.clear();
                }
                '}' => {
                    depth -= 1;
                    loop_stack.pop();
                    if cfg_skip_above == Some(depth) {
                        cfg_skip_above = None;
                    }
                    stmt_head.clear();
                }
                ';' => {
                    // An attribute on a braceless item (e.g. `mod x;`)
                    // has no body; cancel the pending skip.
                    cfg_test_pending = false;
                    stmt_head.clear();
                }
                c => stmt_head.push(c),
            }
        }
        stmt_head.push(' ');
    }
    findings
}

/// Advance paren `balance` through `code[from..]`; returns the index
/// just past the `)` that closes the call, if it closes on this line.
fn close_call(code: &str, from: usize, balance: &mut i64) -> Option<usize> {
    for (ci, ch) in code[from..].char_indices() {
        match ch {
            '(' => *balance += 1,
            ')' => {
                *balance -= 1;
                if *balance == 0 {
                    return Some(from + ci + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Is this statement head a loop header (`for` / `while` / `loop`),
/// allowing a leading `'label:`? `impl ... for` and HRTBs don't match
/// because the head's first word is `impl` / `fn`.
fn head_is_loop(head: &str) -> bool {
    let mut h = head.trim_start();
    if h.starts_with('\'') {
        if let Some((_, rest)) = h.split_once(':') {
            h = rest.trim_start();
        }
    }
    matches!(
        h.split_whitespace().next().unwrap_or(""),
        "for" | "while" | "loop"
    )
}

fn detached_spawn_finding(file: &str, idx: usize, code: &str) -> SrcFinding {
    SrcFinding {
        file: file.to_string(),
        line: idx + 1,
        rule: SrcRule::DetachedSpawn,
        message: "detached thread::spawn (JoinHandle discarded) without a \
                  `// spawn:` justification naming the retire/shutdown story"
            .to_string(),
        snippet: code.trim().to_string(),
    }
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load the allowlist at `root` (a missing file = empty allowlist).
pub fn load_allowlist(root: &Path) -> Allowlist {
    match fs::read_to_string(root.join(ALLOWLIST_FILE)) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    }
}

/// Scan every `crates/*/src/**/*.rs` under `root` and return the
/// combined report. Findings are sorted by path, then line.
pub fn lint_workspace(root: &Path) -> io::Result<SrcReport> {
    let allow = load_allowlist(root);
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut report = SrcReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        report.findings.extend(lint_source(&rel, &text, &allow));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}
