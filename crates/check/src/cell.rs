//! Modeled non-atomic data ([`MCell`]) and a modeled mutex ([`MLock`]).
//!
//! `MCell` performs FastTrack-style happens-before race detection: any
//! read concurrent with a write (or write concurrent with anything) is
//! reported as a violation. `MLock` is a spinlock built from a modeled
//! `AtomicBool` with the orderings `std::sync::Mutex` guarantees
//! ([`MUTEX_ORDERINGS`]); because the *data* it guards is race-checked,
//! weakening the lock's release ordering (a mutation self-test) is
//! observable as a data race — exactly the failure a broken lock causes
//! on real hardware.

use pulsar_obs::sync::AtomicBoolLike;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

use crate::atomics::MAtomicBool;
use crate::sim;

/// The orderings a lock built over an atomic flag uses. Kept in a
/// struct (like the production `*_ORDERINGS`) so mutation self-tests
/// can weaken one field and assert the explorer notices.
#[derive(Debug, Clone, Copy)]
pub struct LockOrderings {
    /// Success ordering of the acquiring CAS.
    pub acquire_success: Ordering,
    /// Failure ordering of the acquiring CAS.
    pub acquire_failure: Ordering,
    /// Ordering of the releasing store.
    pub release: Ordering,
}

/// What `std::sync::Mutex` (and every sane lock) guarantees: acquire on
/// lock, release on unlock. Models use this to stand in for the real
/// mutexes in `Recorder` / `Checkpoint`.
pub const MUTEX_ORDERINGS: LockOrderings = LockOrderings {
    acquire_success: Ordering::Acquire,
    acquire_failure: Ordering::Relaxed,
    release: Ordering::Release,
};

/// A modeled spinlock. Models call [`MLock::lock`] / [`MLock::unlock`]
/// explicitly (no RAII guard) so mutation tests can misuse it on
/// purpose.
#[derive(Debug)]
pub struct MLock {
    held: MAtomicBool,
}

impl MLock {
    /// A fresh, unlocked lock (must be created inside an exploration).
    pub fn new() -> Self {
        MLock {
            held: MAtomicBool::new(false),
        }
    }

    /// Acquire the lock, spinning until it is free.
    pub fn lock(&self, ord: &LockOrderings) {
        loop {
            if self
                .held
                .compare_exchange(false, true, ord.acquire_success, ord.acquire_failure)
                .is_ok()
            {
                return;
            }
            sim::spin_yield();
        }
    }

    /// Release the lock.
    pub fn unlock(&self, ord: &LockOrderings) {
        self.held.store(false, ord.release);
    }
}

impl Default for MLock {
    fn default() -> Self {
        MLock::new()
    }
}

/// Modeled non-atomic data with happens-before race detection.
///
/// The payload lives behind a real `Mutex` purely so the type is
/// `Sync`; the mutex is uncontended by construction (the explorer runs
/// one thread at a time) and takes no part in the modeled semantics —
/// synchronization must come from modeled atomics or [`MLock`], and the
/// race detector checks that it does.
#[derive(Debug)]
pub struct MCell<T> {
    id: usize,
    data: Mutex<T>,
}

impl<T> MCell<T> {
    /// A fresh cell holding `v` (must be created inside an exploration).
    pub fn new(v: T) -> Self {
        MCell {
            id: sim::op_new_cell(),
            data: Mutex::new(v),
        }
    }

    /// Race-checked read access.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        sim::op_cell_read(self.id);
        let g = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&g)
    }

    /// Race-checked write access.
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        sim::op_cell_write(self.id);
        let mut g = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut g)
    }
}
