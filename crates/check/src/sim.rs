//! A vendored mini-loom: deterministic interleaving exploration for the
//! workspace's lock-free protocol cores.
//!
//! The explorer runs a small fixed set of model threads under a
//! cooperative baton-passing scheduler (real OS threads, exactly one
//! runnable at a time) and enumerates schedules by depth-first search
//! over the recorded decision path, in the style of loom/CHESS. Two
//! search modes are supported:
//!
//! * **bounded-exhaustive** — every schedule within a *preemption
//!   bound* (CHESS-style: involuntary context switches are budgeted,
//!   forced switches — spins, thread exit — are free). Reports the
//!   explored-schedule count and whether the space was exhausted.
//! * **seeded-random** — long runs driven by an xorshift PRNG for
//!   soak-style coverage beyond the exhaustive bound.
//!
//! # Memory model
//!
//! Atomics are simulated with a view-based weak-memory semantics (a
//! simplification of operational C11 models, close to what loom
//! implements):
//!
//! * each atomic location keeps its full *modification order* — a list
//!   of messages, each optionally carrying the writer's release view;
//! * each thread keeps a *view*: for every location, the oldest message
//!   it is still allowed to read. A `Relaxed` load may read **any**
//!   message at or after the view (stale reads model store-buffer and
//!   reordering effects; the relaxed store-buffering litmus outcome is
//!   reachable). Coherence holds because reading advances the view;
//! * a `Release` store attaches the writer's view and vector clock to
//!   the message; an `Acquire` load that reads such a message joins
//!   them (synchronizes-with);
//! * read-modify-writes (`fetch_add`, `compare_exchange`) always read
//!   the **latest** message, giving RMW atomicity (no lost updates);
//! * `SeqCst` is approximated as `AcqRel` plus a join through a global
//!   `sc` view, which forbids the classic SB/IRIW weak outcomes. This
//!   is a sound strengthening for checking the protocols in this
//!   workspace (none rely on `SeqCst`-only distinctions); `lint-src`
//!   independently bans `SeqCst` in production code.
//!
//! Non-atomic data is modeled by [`crate::cell::MCell`], which performs
//! FastTrack-style happens-before race detection using the vector
//! clocks maintained here; the modeled mutex ([`crate::cell::MLock`])
//! is a spinlock built from a modeled atomic, so lock/unlock ordering
//! bugs surface as data races on the cells the lock guards.
//!
//! # Violations
//!
//! A model signals a violation by panicking (plain `assert!` works);
//! the explorer also reports data races, deadlocks (every live thread
//! spinning), and livelocks (per-schedule step budget exhausted). The
//! offending schedule's decision path and an op-level trace are
//! captured in the [`Report`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Maximum model threads per spec; keeps the schedule space bounded.
pub const MAX_THREADS: usize = 4;

/// Thread-record slot used by the setup and finale phases.
const SETUP_SLOT: usize = MAX_THREADS;

/// Panic payload used to unwind model threads when a schedule is
/// aborted (violation found elsewhere, or budget exhausted). Not a
/// model failure by itself.
struct AbortSignal;

/// One recorded scheduling / value choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Decision {
    /// Number of alternatives available at this point.
    options: usize,
    /// The branch taken in the current schedule.
    chosen: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    /// Parked in a spin loop; made `Ready` again by any atomic store.
    Spinning,
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Single-threaded model construction; ops run without scheduling.
    Setup,
    /// Model threads running under the baton scheduler.
    Running,
    /// Post-join single-threaded checks against the joined final state.
    Finale,
}

/// A release message's payload: the writer's view and vector clock at
/// the time of the store.
#[derive(Debug, Clone)]
struct RelPayload {
    view: Vec<usize>,
    vc: Vec<u64>,
}

/// One entry in a location's modification order.
#[derive(Debug)]
struct Msg {
    val: u64,
    rel: Option<RelPayload>,
}

/// FastTrack-style epochs for one non-atomic cell.
#[derive(Debug)]
struct CellState {
    write_tid: usize,
    write_clock: u64,
    /// Last read clock per thread slot.
    reads: [u64; MAX_THREADS + 1],
}

#[derive(Debug, Clone)]
struct ThreadRec {
    state: TState,
    /// Per-location index of the oldest message this thread may read.
    view: Vec<usize>,
    /// Vector clock, one slot per model thread plus the setup slot.
    vc: [u64; MAX_THREADS + 1],
    /// Global store count observed at this thread's latest operation;
    /// lets `spin_yield` park only when nothing changed since (avoids
    /// the lost-wakeup between a failed CAS and the park).
    seen_seq: u64,
}

struct ExecInner {
    phase: Phase,
    threads: Vec<ThreadRec>,
    /// Number of model threads registered by the spec.
    nthreads: usize,
    current: usize,
    /// Per-location modification orders.
    locs: Vec<Vec<Msg>>,
    labels: Vec<String>,
    cells: Vec<CellState>,
    /// Global SeqCst view (value visibility only, not happens-before).
    sc_view: Vec<usize>,
    /// Total stores committed in this schedule (spin-park witness).
    store_seq: u64,
    /// Recorded decision path; replayed then extended within a run.
    path: Vec<Decision>,
    cursor: usize,
    /// xorshift64 state for random mode (`None` = DFS replay mode).
    rng: Option<u64>,
    preemptions: usize,
    steps: usize,
    violation: Option<String>,
    abort: bool,
    tracing: bool,
    trace: Vec<String>,
    opts: Options,
}

/// One schedule's shared execution state; model threads coordinate
/// through the mutex/condvar baton.
pub(crate) struct Exec {
    m: Mutex<ExecInner>,
    cv: Condvar,
}

/// Search mode for [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Depth-first enumeration of every schedule within the preemption
    /// bound; terminates with `exhausted = true` when complete.
    Exhaustive,
    /// `runs` schedules driven by a seeded xorshift PRNG.
    Random {
        /// PRNG seed (any value; 0 is remapped internally).
        seed: u64,
        /// Number of random schedules to execute.
        runs: usize,
    },
}

/// Exploration limits and search mode.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// CHESS-style bound on involuntary context switches per schedule.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules (guards against state explosion);
    /// hitting it sets `truncated` in the [`Report`].
    pub max_schedules: usize,
    /// Per-schedule op budget; exceeding it is reported as a livelock.
    pub max_steps: usize,
    /// Search mode.
    pub mode: Mode,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_schedules: 250_000,
            max_steps: 20_000,
            mode: Mode::Exhaustive,
        }
    }
}

impl Options {
    /// Exhaustive search with the given preemption bound.
    pub fn exhaustive(preemption_bound: usize) -> Self {
        Options {
            preemption_bound,
            ..Options::default()
        }
    }

    /// Seeded-random search (unbounded preemptions) of `runs` schedules.
    pub fn random(seed: u64, runs: usize) -> Self {
        Options {
            preemption_bound: usize::MAX,
            max_schedules: runs,
            max_steps: 20_000,
            mode: Mode::Random { seed, runs },
        }
    }
}

/// Outcome of exploring one model.
#[derive(Debug)]
pub struct Report {
    /// Model name (for logs and the CLI table).
    pub name: String,
    /// Schedules actually executed.
    pub schedules: usize,
    /// `true` when an exhaustive search covered the whole bounded space.
    pub exhausted: bool,
    /// `true` when `max_schedules` stopped the search early.
    pub truncated: bool,
    /// First violation found, if any.
    pub violation: Option<String>,
    /// Decision path of the violating schedule (replayable).
    pub failing_path: Vec<(usize, usize)>,
    /// Op-level trace of the violating schedule.
    pub trace: Vec<String>,
}

impl Report {
    /// Panic (with the trace) unless the model passed; returns the
    /// explored-schedule count so tests can assert coverage floors.
    pub fn assert_pass(&self) -> usize {
        if let Some(v) = &self.violation {
            panic!(
                "model `{}` failed after {} schedule(s): {}\npath: {:?}\ntrace:\n  {}",
                self.name,
                self.schedules,
                v,
                self.failing_path,
                self.trace.join("\n  ")
            );
        }
        self.schedules
    }

    /// Panic unless a violation containing `needle` was found (used by
    /// the mutation self-tests: the seeded bug *must* be detected).
    pub fn assert_caught(&self, needle: &str) {
        match &self.violation {
            Some(v) if v.contains(needle) => {}
            Some(v) => panic!(
                "model `{}` failed, but not as expected: wanted `{}`, got `{}`",
                self.name, needle, v
            ),
            None => panic!(
                "mutation self-test `{}` missed its seeded bug after {} schedule(s) \
                 (wanted a violation containing `{}`)",
                self.name, self.schedules, needle
            ),
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = match &self.violation {
            Some(v) => format!("VIOLATION: {v}"),
            None if self.truncated => "pass (truncated)".to_string(),
            None if self.exhausted => "pass (exhausted)".to_string(),
            None => "pass".to_string(),
        };
        write!(
            f,
            "{:<44} {:>8} schedules  {}",
            self.name, self.schedules, status
        )
    }
}

/// A model under construction: the threads to interleave and an
/// optional post-join check.
#[derive(Default)]
pub struct ModelSpec {
    threads: Vec<Box<dyn FnOnce() + Send>>,
    finale: Option<Box<dyn FnOnce() + Send>>,
}

impl ModelSpec {
    /// Register a model thread. At most [`MAX_THREADS`] per model.
    pub fn thread(&mut self, f: impl FnOnce() + Send + 'static) {
        assert!(
            self.threads.len() < MAX_THREADS,
            "model registered more than {MAX_THREADS} threads"
        );
        self.threads.push(Box::new(f));
    }

    /// Register a check that runs after every thread has finished,
    /// against the joined (fully synchronized) final state.
    pub fn finale(&mut self, f: impl FnOnce() + Send + 'static) {
        self.finale = Some(Box::new(f));
    }
}

// ---------------------------------------------------------------------------
// Thread-local binding of model code to the current execution.
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the current execution handle; panics if called outside
/// an exploration (modeled atomics only work under the explorer).
pub(crate) fn with_exec<R>(f: impl FnOnce(&Exec, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (e, me) = b
            .as_ref()
            .expect("modeled primitive used outside a pulsar-check exploration");
        f(e, *me)
    })
}

fn bind(exec: &Arc<Exec>, me: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), me)));
}

/// Silence panic output from threads bound to an exploration: model
/// violations are asserts whose messages the explorer captures and
/// reports itself, and schedule aborts unwind with a non-string
/// payload. Unbound threads keep the default hook behavior.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let bound = CURRENT
                .try_with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(true))
                .unwrap_or(false);
            if !bound {
                prev(info);
            }
        }));
    });
}

fn unbind() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// View / vector-clock helpers.
// ---------------------------------------------------------------------------

fn view_get(view: &[usize], loc: usize) -> usize {
    view.get(loc).copied().unwrap_or(0)
}

fn view_bump(view: &mut Vec<usize>, loc: usize, idx: usize) {
    if view.len() <= loc {
        view.resize(loc + 1, 0);
    }
    view[loc] = view[loc].max(idx);
}

fn view_join(dst: &mut Vec<usize>, src: &[usize]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn vc_join(dst: &mut [u64; MAX_THREADS + 1], src: &[u64; MAX_THREADS + 1]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn lock_inner(m: &Mutex<ExecInner>) -> MutexGuard<'_, ExecInner> {
    // A model thread can panic (assert! violations) while a peer waits;
    // recover the guard rather than cascading poison panics.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Exec {
    fn new(opts: Options, path: Vec<Decision>, rng: Option<u64>, tracing: bool) -> Exec {
        let blank = ThreadRec {
            state: TState::Finished,
            view: Vec::new(),
            vc: [0; MAX_THREADS + 1],
            seen_seq: 0,
        };
        let mut threads = vec![blank; MAX_THREADS + 1];
        threads[SETUP_SLOT].state = TState::Ready;
        Exec {
            m: Mutex::new(ExecInner {
                phase: Phase::Setup,
                threads,
                nthreads: 0,
                current: SETUP_SLOT,
                locs: Vec::new(),
                labels: Vec::new(),
                cells: Vec::new(),
                sc_view: Vec::new(),
                store_seq: 0,
                path,
                cursor: 0,
                rng,
                preemptions: 0,
                steps: 0,
                violation: None,
                abort: false,
                tracing,
                trace: Vec::new(),
                opts,
            }),
            cv: Condvar::new(),
        }
    }

    /// Record a violation (first one wins) and abort the schedule.
    fn violate(&self, g: &mut ExecInner, msg: String) {
        if g.violation.is_none() {
            g.violation = Some(msg);
        }
        g.abort = true;
        self.cv.notify_all();
    }

    fn trace_op(g: &mut ExecInner, me: usize, line: String) {
        if g.tracing && g.trace.len() < 400 {
            let who = if me == SETUP_SLOT {
                format!("{:?}", g.phase).to_lowercase()
            } else {
                format!("T{me}")
            };
            g.trace.push(format!("{who}: {line}"));
        }
    }

    /// Resolve a choice point with `n` alternatives.
    fn choose(&self, g: &mut ExecInner, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        if let Some(state) = g.rng.as_mut() {
            // xorshift64 — deterministic per seed, no external deps.
            let mut x = *state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *state = x;
            return (x % n as u64) as usize;
        }
        if g.cursor < g.path.len() {
            let d = g.path[g.cursor];
            if d.options != n {
                // The model's choice structure must be a pure function
                // of prior decisions; anything else breaks replay.
                self.violate(
                    g,
                    format!(
                        "nondeterministic model: replay step {} expected {} options, saw {}",
                        g.cursor, d.options, n
                    ),
                );
                return 0;
            }
            g.cursor += 1;
            d.chosen
        } else {
            g.path.push(Decision {
                options: n,
                chosen: 0,
            });
            g.cursor += 1;
            0
        }
    }

    /// The scheduling point executed before every operation of `me`.
    /// May hand the baton to another thread and block until it returns.
    fn sched_point<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecInner>,
        me: usize,
    ) -> MutexGuard<'a, ExecInner> {
        if g.phase != Phase::Running {
            return g;
        }
        if g.abort {
            drop(g);
            std::panic::panic_any(AbortSignal);
        }
        g.steps += 1;
        if g.steps > g.opts.max_steps {
            let msg = format!("step budget exceeded ({} ops): livelock?", g.opts.max_steps);
            self.violate(&mut g, msg);
            drop(g);
            std::panic::panic_any(AbortSignal);
        }

        let ready: Vec<usize> = (0..MAX_THREADS)
            .filter(|&t| t != me && g.threads[t].state == TState::Ready)
            .collect();
        let me_ready = g.threads[me].state == TState::Ready;

        let next = if me_ready {
            // Keeping the baton is free; stealing it costs a preemption.
            if ready.is_empty() || g.preemptions >= g.opts.preemption_bound {
                me
            } else {
                let c = self.choose(&mut g, 1 + ready.len());
                if c == 0 {
                    me
                } else {
                    g.preemptions += 1;
                    ready[c - 1]
                }
            }
        } else {
            // `me` is spinning: a switch is forced (and free).
            match ready.len() {
                0 => {
                    self.violate(
                        &mut g,
                        "deadlock: every unfinished thread is spinning".to_string(),
                    );
                    drop(g);
                    std::panic::panic_any(AbortSignal);
                }
                1 => ready[0],
                k => {
                    let c = self.choose(&mut g, k);
                    ready[c]
                }
            }
        };

        if next != me {
            g.current = next;
            self.cv.notify_all();
            while g.current != me && !g.abort {
                g = self
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if g.abort {
                drop(g);
                std::panic::panic_any(AbortSignal);
            }
            // We were rescheduled: leave any spin state.
            g.threads[me].state = TState::Ready;
        }
        // The op is about to execute: note the current store count so a
        // later `spin_yield` knows whether anything changed in between.
        g.threads[me].seen_seq = g.store_seq;
        g
    }

    // -- location / cell registration ------------------------------------

    fn new_loc(&self, init: u64, label: &str) -> usize {
        let mut g = lock_inner(&self.m);
        g.locs.push(vec![Msg {
            val: init,
            rel: None,
        }]);
        g.labels.push(label.to_string());
        g.locs.len() - 1
    }

    fn new_cell(&self) -> usize {
        let mut g = lock_inner(&self.m);
        // Creation counts as a write by the creating slot at its current
        // clock; threads started later inherit it (no false race), while
        // unsynchronized concurrent access still trips the detector.
        let me = g.current;
        let clock = g.threads[me].vc[me.min(SETUP_SLOT)];
        g.cells.push(CellState {
            write_tid: me,
            write_clock: clock,
            reads: [0; MAX_THREADS + 1],
        });
        g.cells.len() - 1
    }

    // -- atomic operations ------------------------------------------------

    /// Advance `me`'s clock for a new event and return the new stamp.
    fn tick(g: &mut ExecInner, me: usize) -> u64 {
        g.threads[me].vc[me] += 1;
        g.threads[me].vc[me]
    }

    fn acquire_from(g: &mut ExecInner, me: usize, loc: usize, idx: usize) {
        if let Some(rel) = g.locs[loc][idx].rel.clone() {
            view_join(&mut g.threads[me].view, &rel.view);
            let mut vc = [0u64; MAX_THREADS + 1];
            vc.copy_from_slice(&rel.vc);
            vc_join(&mut g.threads[me].vc, &vc);
        }
    }

    fn sc_pre(g: &mut ExecInner, me: usize, ord: Ordering) {
        if matches!(ord, Ordering::SeqCst) {
            let sc = g.sc_view.clone();
            view_join(&mut g.threads[me].view, &sc);
        }
    }

    fn atomic_load(&self, me: usize, loc: usize, ord: Ordering) -> u64 {
        let g = lock_inner(&self.m);
        let mut g = self.sched_point(g, me);
        Self::tick(&mut g, me);
        Self::sc_pre(&mut g, me, ord);
        let lo = view_get(&g.threads[me].view, loc);
        let hi = g.locs[loc].len() - 1;
        // Choice over every coherent message (stale reads included).
        let idx = lo + self.choose(&mut g, hi - lo + 1);
        let val = g.locs[loc][idx].val;
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            Self::acquire_from(&mut g, me, loc, idx);
        }
        view_bump(&mut g.threads[me].view, loc, idx);
        let line = format!(
            "load  {} -> {val} [{ord:?}] (msg {idx}/{hi})",
            g.labels[loc]
        );
        Self::trace_op(&mut g, me, line);
        val
    }

    /// Append a message for `val` at `loc` and wake spinners. Shared by
    /// stores and the write half of RMWs; caller has already ticked.
    fn commit_store(&self, g: &mut ExecInner, me: usize, loc: usize, val: u64, ord: Ordering) {
        Self::sc_pre(g, me, ord);
        let idx = g.locs[loc].len();
        view_bump(&mut g.threads[me].view, loc, idx);
        let release = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        let rel = release.then(|| RelPayload {
            view: g.threads[me].view.clone(),
            vc: g.threads[me].vc.to_vec(),
        });
        g.locs[loc].push(Msg { val, rel });
        if matches!(ord, Ordering::SeqCst) {
            let view = g.threads[me].view.clone();
            view_join(&mut g.sc_view, &view);
        }
        g.store_seq += 1;
        // Any store may be the one a spin loop is waiting for.
        for t in 0..MAX_THREADS {
            if g.threads[t].state == TState::Spinning {
                g.threads[t].state = TState::Ready;
            }
        }
        self.cv.notify_all();
    }

    fn atomic_store(&self, me: usize, loc: usize, val: u64, ord: Ordering) {
        let g = lock_inner(&self.m);
        let mut g = self.sched_point(g, me);
        Self::tick(&mut g, me);
        self.commit_store(&mut g, me, loc, val, ord);
        let line = format!("store {} <- {val} [{ord:?}]", g.labels[loc]);
        Self::trace_op(&mut g, me, line);
    }

    /// The write half of an `Acquire`/`Relaxed` RMW is relaxed, of a
    /// `Release`/`AcqRel` RMW is release.
    fn rmw_write_ord(ord: Ordering) -> Ordering {
        match ord {
            Ordering::Acquire | Ordering::Relaxed => Ordering::Relaxed,
            Ordering::Release | Ordering::AcqRel => Ordering::Release,
            _ => Ordering::SeqCst,
        }
    }

    /// Read-modify-write: always reads the latest message (atomicity).
    fn atomic_rmw(&self, me: usize, loc: usize, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let g = lock_inner(&self.m);
        let mut g = self.sched_point(g, me);
        Self::tick(&mut g, me);
        Self::sc_pre(&mut g, me, ord);
        let idx = g.locs[loc].len() - 1;
        let old = g.locs[loc][idx].val;
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            Self::acquire_from(&mut g, me, loc, idx);
        }
        view_bump(&mut g.threads[me].view, loc, idx);
        let newv = f(old);
        self.commit_store(&mut g, me, loc, newv, Self::rmw_write_ord(ord));
        let line = format!("rmw   {} {old} -> {newv} [{ord:?}]", g.labels[loc]);
        Self::trace_op(&mut g, me, line);
        old
    }

    /// Compare-exchange. A failed CAS is an RMW-read of the latest
    /// message with the `fail` ordering.
    fn atomic_cas(
        &self,
        me: usize,
        loc: usize,
        cur: u64,
        new: u64,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        let g = lock_inner(&self.m);
        let mut g = self.sched_point(g, me);
        Self::tick(&mut g, me);
        let idx = g.locs[loc].len() - 1;
        let old = g.locs[loc][idx].val;
        let ord = if old == cur { succ } else { fail };
        Self::sc_pre(&mut g, me, ord);
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            Self::acquire_from(&mut g, me, loc, idx);
        }
        view_bump(&mut g.threads[me].view, loc, idx);
        if old == cur {
            self.commit_store(&mut g, me, loc, new, Self::rmw_write_ord(succ));
            let line = format!("cas   {} {cur} -> {new} ok [{succ:?}]", g.labels[loc]);
            Self::trace_op(&mut g, me, line);
            Ok(old)
        } else {
            let line = format!(
                "cas   {} {cur} -> {new} failed, saw {old} [{fail:?}]",
                g.labels[loc]
            );
            Self::trace_op(&mut g, me, line);
            Err(old)
        }
    }

    // -- non-atomic cells (race detection) --------------------------------

    fn cell_read(&self, me: usize, cell: usize) {
        let g = lock_inner(&self.m);
        let mut g = self.sched_point(g, me);
        let stamp = Self::tick(&mut g, me);
        let (wt, wc) = {
            let c = &g.cells[cell];
            (c.write_tid, c.write_clock)
        };
        if wc > g.threads[me].vc[wt] {
            let msg = format!(
                "data race on cell #{cell}: read by T{me} concurrent with a write by slot {wt}"
            );
            self.violate(&mut g, msg);
            drop(g);
            std::panic::panic_any(AbortSignal);
        }
        g.cells[cell].reads[me] = stamp;
        Self::trace_op(&mut g, me, format!("read  cell#{cell}"));
    }

    fn cell_write(&self, me: usize, cell: usize) {
        let g = lock_inner(&self.m);
        let mut g = self.sched_point(g, me);
        let stamp = Self::tick(&mut g, me);
        let (wt, wc, reads) = {
            let c = &g.cells[cell];
            (c.write_tid, c.write_clock, c.reads)
        };
        let mut race = wc > g.threads[me].vc[wt];
        if !race {
            for (t, &rc) in reads.iter().enumerate() {
                if t != me && rc > g.threads[me].vc[t] {
                    race = true;
                    break;
                }
            }
        }
        if race {
            let msg =
                format!("data race on cell #{cell}: write by T{me} concurrent with a prior access");
            self.violate(&mut g, msg);
            drop(g);
            std::panic::panic_any(AbortSignal);
        }
        let c = &mut g.cells[cell];
        c.write_tid = me;
        c.write_clock = stamp;
        c.reads = [0; MAX_THREADS + 1];
        c.reads[me] = stamp;
        Self::trace_op(&mut g, me, format!("write cell#{cell}"));
    }

    /// Park the calling thread until any store happens (spin-loop hint).
    /// If a store already happened since this thread's previous op, the
    /// park is skipped (otherwise the wakeup would be lost).
    fn spin_yield(&self, me: usize) {
        let mut g = lock_inner(&self.m);
        if g.phase != Phase::Running {
            return;
        }
        if g.store_seq == g.threads[me].seen_seq {
            g.threads[me].state = TState::Spinning;
        }
        let g = self.sched_point(g, me);
        drop(g);
    }

    // -- schedule lifecycle ----------------------------------------------

    /// Transition Setup -> Running once the model's threads are known.
    fn seal(&self, n: usize) {
        let mut g = lock_inner(&self.m);
        debug_assert_eq!(g.phase, Phase::Setup);
        g.nthreads = n;
        // Model threads inherit the setup slot's final view and clock:
        // construction happens-before every thread start.
        let setup = g.threads[SETUP_SLOT].clone();
        for t in 0..n {
            g.threads[t] = ThreadRec {
                state: TState::Ready,
                view: setup.view.clone(),
                vc: setup.vc,
                seen_seq: g.store_seq,
            };
        }
        g.threads[SETUP_SLOT].state = TState::Finished;
        g.phase = Phase::Running;
        // The initial dispatch is itself a scheduling decision.
        let first = self.choose(&mut g, n);
        g.current = first;
        self.cv.notify_all();
    }

    /// Mark `me` finished and pass the baton on.
    fn finish_thread(&self, me: usize) {
        let mut g = lock_inner(&self.m);
        g.threads[me].state = TState::Finished;
        Self::trace_op(&mut g, me, "exit".to_string());
        if g.abort {
            self.cv.notify_all();
            return;
        }
        let ready: Vec<usize> = (0..MAX_THREADS)
            .filter(|&t| g.threads[t].state == TState::Ready)
            .collect();
        if ready.is_empty() {
            let spinning = (0..MAX_THREADS).any(|t| g.threads[t].state == TState::Spinning);
            if spinning {
                self.violate(
                    &mut g,
                    "deadlock: all remaining threads are spinning after a thread exit".to_string(),
                );
            }
            // else: everyone finished; nothing left to schedule.
            self.cv.notify_all();
            return;
        }
        // A switch at thread exit is forced, hence free.
        let next = if ready.len() == 1 {
            ready[0]
        } else {
            let c = self.choose(&mut g, ready.len());
            ready[c]
        };
        g.current = next;
        self.cv.notify_all();
    }

    /// Transition Running -> Finale with the joined final state.
    fn enter_finale(&self) {
        let mut g = lock_inner(&self.m);
        g.phase = Phase::Finale;
        let mut view: Vec<usize> = Vec::new();
        let mut vc = [0u64; MAX_THREADS + 1];
        for t in 0..MAX_THREADS {
            let tv = g.threads[t].view.clone();
            view_join(&mut view, &tv);
            let tc = g.threads[t].vc;
            vc_join(&mut vc, &tc);
        }
        let setup_vc = g.threads[SETUP_SLOT].vc;
        vc_join(&mut vc, &setup_vc);
        g.threads[SETUP_SLOT].view = view;
        g.threads[SETUP_SLOT].vc = vc;
        g.threads[SETUP_SLOT].state = TState::Ready;
        g.current = SETUP_SLOT;
    }
}

// ---------------------------------------------------------------------------
// Crate-internal op handles used by the modeled primitives.
// ---------------------------------------------------------------------------

pub(crate) fn op_new_loc(init: u64, label: &str) -> usize {
    with_exec(|e, _| e.new_loc(init, label))
}
pub(crate) fn op_load(loc: usize, ord: Ordering) -> u64 {
    with_exec(|e, me| e.atomic_load(me, loc, ord))
}
pub(crate) fn op_store(loc: usize, val: u64, ord: Ordering) {
    with_exec(|e, me| e.atomic_store(me, loc, val, ord));
}
pub(crate) fn op_rmw(loc: usize, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    with_exec(|e, me| e.atomic_rmw(me, loc, ord, f))
}
pub(crate) fn op_cas(
    loc: usize,
    cur: u64,
    new: u64,
    succ: Ordering,
    fail: Ordering,
) -> Result<u64, u64> {
    with_exec(|e, me| e.atomic_cas(me, loc, cur, new, succ, fail))
}
pub(crate) fn op_new_cell() -> usize {
    with_exec(|e, _| e.new_cell())
}
pub(crate) fn op_cell_read(cell: usize) {
    with_exec(|e, me| e.cell_read(me, cell));
}
pub(crate) fn op_cell_write(cell: usize) {
    with_exec(|e, me| e.cell_write(me, cell));
}

/// Yield inside a model spin loop; the thread is parked until another
/// thread performs a store. Use this in any retry loop a model
/// contains, otherwise the explorer reports a livelock when the step
/// budget runs out.
pub fn spin_yield() {
    with_exec(|e, me| e.spin_yield(me));
}

// ---------------------------------------------------------------------------
// The explorer driver.
// ---------------------------------------------------------------------------

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

/// Execute one schedule; returns the (possibly extended) decision path,
/// the violation if any, and the op trace.
fn run_schedule(
    opts: Options,
    path: Vec<Decision>,
    rng: Option<u64>,
    tracing: bool,
    build: &(dyn Fn(&mut ModelSpec) + Sync),
) -> (Vec<Decision>, Option<String>, Vec<String>) {
    let mut spec = ModelSpec::default();
    // Setup runs single-threaded with ops bound to the setup slot.
    let exec = Arc::new(Exec::new(opts, path, rng, tracing));
    bind(&exec, SETUP_SLOT);
    let setup = catch_unwind(AssertUnwindSafe(|| build(&mut spec)));
    unbind();
    if let Err(p) = setup {
        let mut g = lock_inner(&exec.m);
        let msg = format!("model setup panicked: {}", panic_message(p));
        exec.violate(&mut g, msg);
        return (g.path.clone(), g.violation.clone(), g.trace.clone());
    }
    let n = spec.threads.len();
    assert!(n >= 1, "model registered no threads");
    exec.seal(n);

    std::thread::scope(|s| {
        for (i, f) in spec.threads.drain(..).enumerate() {
            let exec = exec.clone();
            s.spawn(move || {
                bind(&exec, i);
                // Wait for the baton before the first op.
                {
                    let mut g = lock_inner(&exec.m);
                    while g.current != i && !g.abort {
                        g = exec
                            .cv
                            .wait(g)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    if g.abort {
                        drop(g);
                        unbind();
                        return;
                    }
                }
                let r = catch_unwind(AssertUnwindSafe(f));
                match r {
                    Ok(()) => exec.finish_thread(i),
                    Err(p) => {
                        let mut g = lock_inner(&exec.m);
                        g.threads[i].state = TState::Finished;
                        if p.is::<AbortSignal>() {
                            exec.cv.notify_all();
                        } else {
                            let msg = panic_message(p);
                            exec.violate(&mut g, msg);
                        }
                    }
                }
                unbind();
            });
        }
    });

    // Finale: single-threaded checks against the joined state.
    let run_finale = {
        let g = lock_inner(&exec.m);
        g.violation.is_none() && spec.finale.is_some()
    };
    if run_finale {
        exec.enter_finale();
        bind(&exec, SETUP_SLOT);
        if let Some(f) = spec.finale.take() {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                let mut g = lock_inner(&exec.m);
                let msg = format!("finale check failed: {}", panic_message(p));
                exec.violate(&mut g, msg);
            }
        }
        unbind();
    }

    let g = lock_inner(&exec.m);
    (g.path.clone(), g.violation.clone(), g.trace.clone())
}

/// Advance a DFS decision path to the next unexplored schedule.
/// Returns `false` when the space is exhausted.
fn advance(path: &mut Vec<Decision>) -> bool {
    while let Some(d) = path.last_mut() {
        if d.chosen + 1 < d.options {
            d.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

fn blank_report(name: &str) -> Report {
    Report {
        name: name.to_string(),
        schedules: 0,
        exhausted: false,
        truncated: false,
        violation: None,
        failing_path: Vec::new(),
        trace: Vec::new(),
    }
}

/// Record a failing schedule in the report, re-running it with tracing
/// enabled to capture the op-level trace (runs are deterministic given
/// the same decision path / seed).
fn record_failure(
    report: &mut Report,
    opts: Options,
    used: Vec<Decision>,
    seed: Option<u64>,
    violation: String,
    build: &(dyn Fn(&mut ModelSpec) + Sync),
) {
    report.failing_path = used.iter().map(|d| (d.options, d.chosen)).collect();
    let replay_path = match seed {
        Some(_) => Vec::new(),
        None => used,
    };
    let (_, replay_violation, trace) = run_schedule(opts, replay_path, seed, true, build);
    report.trace = trace;
    // Keep the original message if the traced replay diverged (it
    // should not; the decision path fully determines the schedule).
    report.violation = Some(replay_violation.unwrap_or(violation));
}

/// Explore `build` under `opts` and return a [`Report`].
///
/// `build` is invoked once per schedule; it constructs fresh model
/// state (modeled atomics and cells bind to that schedule's execution)
/// and registers threads plus an optional finale on the [`ModelSpec`].
pub fn explore(name: &str, opts: Options, build: impl Fn(&mut ModelSpec) + Sync) -> Report {
    install_quiet_panic_hook();
    let mut report = blank_report(name);
    match opts.mode {
        Mode::Exhaustive => {
            let mut path: Vec<Decision> = Vec::new();
            loop {
                if report.schedules >= opts.max_schedules {
                    report.truncated = true;
                    break;
                }
                let (used, violation, _) = run_schedule(opts, path, None, false, &build);
                report.schedules += 1;
                if let Some(v) = violation {
                    record_failure(&mut report, opts, used, None, v, &build);
                    break;
                }
                path = used;
                if !advance(&mut path) {
                    report.exhausted = true;
                    break;
                }
            }
        }
        Mode::Random { seed, runs } => {
            let mut s = seed.max(1);
            for _ in 0..runs {
                // Decorrelate runs: splitmix-style seed scramble.
                s = s
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x2545_F491_4F6C_DD1D);
                let run_seed = s | 1;
                let (used, violation, _) =
                    run_schedule(opts, Vec::new(), Some(run_seed), false, &build);
                report.schedules += 1;
                if let Some(v) = violation {
                    record_failure(&mut report, opts, used, Some(run_seed), v, &build);
                    break;
                }
            }
        }
    }
    report
}

/// Exhaustively explore and tally every distinct violation message
/// (instead of stopping at the first), for tests that want to see
/// *which* failure modes occur across the schedule space.
pub fn explore_outcomes(
    name: &str,
    opts: Options,
    build: impl Fn(&mut ModelSpec) + Sync,
) -> (Report, BTreeMap<String, usize>) {
    install_quiet_panic_hook();
    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    let mut report = blank_report(name);
    let mut path: Vec<Decision> = Vec::new();
    loop {
        if report.schedules >= opts.max_schedules {
            report.truncated = true;
            break;
        }
        let (used, violation, _) = run_schedule(opts, path, None, false, &build);
        report.schedules += 1;
        if let Some(v) = violation {
            *outcomes.entry(v.clone()).or_insert(0) += 1;
            if report.violation.is_none() {
                report.violation = Some(v);
                report.failing_path = used.iter().map(|d| (d.options, d.chosen)).collect();
            }
        }
        path = used;
        if !advance(&mut path) {
            report.exhausted = true;
            break;
        }
    }
    (report, outcomes)
}
