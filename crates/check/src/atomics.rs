//! Modeled atomics: an [`AtomicFamily`] whose operations are simulated
//! by the interleaving explorer in [`crate::sim`].
//!
//! A production protocol core written against
//! [`pulsar_obs::sync::AtomicFamily`] can be instantiated with
//! [`ModelAtomics`] inside a model and explored under the weak-memory
//! semantics — the *same* generic code and the *same* shared ordering
//! constants that ship, with only the atomic cells swapped out.
//!
//! The types here are only usable inside a [`crate::sim::explore`]
//! callback (construction registers a location with the currently
//! bound execution); using them outside one panics.

use pulsar_obs::sync::{AtomicBoolLike, AtomicFamily, AtomicU64Like, AtomicU8Like};
use std::sync::atomic::Ordering;

use crate::sim;

/// Modeled `AtomicU8` (a location id in the current execution).
#[derive(Debug)]
pub struct MAtomicU8 {
    loc: usize,
}

/// Modeled `AtomicU64`.
#[derive(Debug)]
pub struct MAtomicU64 {
    loc: usize,
}

/// Modeled `AtomicBool`.
#[derive(Debug)]
pub struct MAtomicBool {
    loc: usize,
}

impl AtomicU8Like for MAtomicU8 {
    fn new(v: u8) -> Self {
        MAtomicU8 {
            loc: sim::op_new_loc(u64::from(v), "u8"),
        }
    }
    fn load(&self, order: Ordering) -> u8 {
        sim::op_load(self.loc, order) as u8
    }
    fn store(&self, v: u8, order: Ordering) {
        sim::op_store(self.loc, u64::from(v), order);
    }
    fn compare_exchange(
        &self,
        current: u8,
        new: u8,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u8, u8> {
        sim::op_cas(
            self.loc,
            u64::from(current),
            u64::from(new),
            success,
            failure,
        )
        .map(|v| v as u8)
        .map_err(|v| v as u8)
    }
}

impl AtomicU64Like for MAtomicU64 {
    fn new(v: u64) -> Self {
        MAtomicU64 {
            loc: sim::op_new_loc(v, "u64"),
        }
    }
    fn load(&self, order: Ordering) -> u64 {
        sim::op_load(self.loc, order)
    }
    fn store(&self, v: u64, order: Ordering) {
        sim::op_store(self.loc, v, order);
    }
    fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        sim::op_rmw(self.loc, order, |old| old.wrapping_add(n))
    }
}

impl AtomicBoolLike for MAtomicBool {
    fn new(v: bool) -> Self {
        MAtomicBool {
            loc: sim::op_new_loc(u64::from(v), "bool"),
        }
    }
    fn load(&self, order: Ordering) -> bool {
        sim::op_load(self.loc, order) != 0
    }
    fn store(&self, v: bool, order: Ordering) {
        sim::op_store(self.loc, u64::from(v), order);
    }
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        sim::op_cas(
            self.loc,
            u64::from(current),
            u64::from(new),
            success,
            failure,
        )
        .map(|v| v != 0)
        .map_err(|v| v != 0)
    }
}

/// The model-checked family: plug into any core generic over
/// [`AtomicFamily`] to explore it with [`crate::sim::explore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelAtomics;

impl AtomicFamily for ModelAtomics {
    type U8 = MAtomicU8;
    type U64 = MAtomicU64;
    type Bool = MAtomicBool;
}
