//! `pulsar-check`: the workspace's concurrency-checking and
//! source-analysis gate.
//!
//! ```text
//! pulsar-check lint-src [--deny] [--json] [--root PATH]
//! pulsar-check models   [--long] [--seed N] [--runs N]
//! ```
//!
//! * `lint-src` scans `crates/*/src` for the SRC0001–SRC0005 rules
//!   (see `pulsar_check::lint_src`); `--deny` exits non-zero on any
//!   finding, which is how CI uses it.
//! * `models` runs the bounded-exhaustive interleaving suite over the
//!   shipped protocol models plus the mutation self-tests, printing
//!   explored-schedule counts; `--long` adds seeded-random long runs.
//!
//! Exit codes: 0 clean, 1 findings/violations, 2 usage or I/O error.

#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use pulsar_check::lint_src;
use pulsar_check::models;
use pulsar_check::sim::Options;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pulsar-check <command>\n\n\
         commands:\n\
         \u{20}  lint-src [--deny] [--json] [--root PATH]   source-level rules over crates/*/src\n\
         \u{20}  models   [--long] [--seed N] [--runs N]    interleaving suite + mutation self-tests"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-src") => cmd_lint_src(&args[1..]),
        Some("models") => cmd_models(&args[1..]),
        _ => usage(),
    }
}

fn cmd_lint_src(args: &[String]) -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    // Walk up to the workspace root if invoked from a subdirectory.
    if !root.join("crates").is_dir() {
        if let Some(found) = find_root(&root) {
            root = found;
        }
    }
    let report = match lint_src::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pulsar-check: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if deny && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn find_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn cmd_models(args: &[String]) -> ExitCode {
    let mut long = false;
    let mut seed: u64 = 0x70756C7365;
    let mut runs: usize = 20_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--long" => long = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => runs = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let mut failed = false;

    println!(
        "== shipped models: bounded-exhaustive (preemption bound {}) ==",
        models::SMOKE_BOUND
    );
    for report in models::shipped_suite(models::smoke_options()) {
        println!("{report}");
        if report.violation.is_some() || !report.exhausted {
            failed = true;
        }
    }

    println!("== mutation self-tests: each must be caught ==");
    for (report, needle) in models::mutation_suite(models::smoke_options()) {
        let caught = report
            .violation
            .as_deref()
            .is_some_and(|v| v.contains(needle));
        println!("{report}");
        if caught {
            println!("  caught as expected (`{needle}`)");
        } else {
            println!("  NOT CAUGHT (expected `{needle}`)");
            failed = true;
        }
    }

    if long {
        println!("== long tier: seeded-random (seed {seed:#x}, {runs} runs/model) ==");
        for report in models::shipped_suite(Options::random(seed, runs)) {
            println!("{report}");
            if report.violation.is_some() {
                failed = true;
            }
        }
        for (report, needle) in models::mutation_suite(Options::random(seed, runs)) {
            let caught = report
                .violation
                .as_deref()
                .is_some_and(|v| v.contains(needle));
            println!("{report}");
            if !caught {
                println!("  NOT CAUGHT (expected `{needle}`)");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
