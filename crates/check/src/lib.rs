#![warn(missing_docs)]
// Same policy as the rest of the workspace: library code surfaces
// failures as typed errors or documented panics; #[cfg(test)] modules
// opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-check
//!
//! Concurrency model checking and source-level static analysis for the
//! pulsar workspace's lock-free runtime.
//!
//! The Monte Carlo campaign runtime contains three small
//! interleaving-sensitive protocols: metrics shard fork/retire/snapshot
//! merging (`pulsar_obs::Recorder`), first-reason-wins cancellation
//! with parent/child propagation (`pulsar_obs::CancelToken`), and
//! checkpoint write-failure poisoning (`pulsar_core::Checkpoint`).
//! Each is written once, generic over
//! [`pulsar_obs::sync::AtomicFamily`], with its memory orderings in a
//! shared `*_ORDERINGS` constant. This crate instantiates those *same*
//! cores with modeled atomics and explores their interleavings:
//!
//! * [`sim`] — a vendored mini-loom: cooperative baton scheduler over
//!   a bounded thread set, view-based weak-memory semantics for
//!   `Relaxed`/`Acquire`/`Release` (plus an approximated `SeqCst`),
//!   bounded-exhaustive DFS with CHESS-style preemption bounding, and
//!   seeded-random long runs. No external dependencies.
//! * [`atomics`] — [`atomics::ModelAtomics`], the modeled
//!   `AtomicFamily`.
//! * [`cell`] — modeled non-atomic data with FastTrack-style race
//!   detection ([`cell::MCell`]) and a modeled mutex ([`cell::MLock`]).
//! * [`models`] — the three protocol models, their invariants, and the
//!   *mutation* variants (deliberately weakened orderings / reordered
//!   steps) whose bugs the explorer must find — the self-tests that
//!   prove the checker can see the failures it guards against.
//! * [`lint_src`] — a hand-rolled source analyzer for the workspace:
//!   atomic-ordering hygiene, hot-path bans (`unwrap`, `Instant::now`,
//!   allocation in loops), and detached-`thread::spawn` detection.
//!
//! The `pulsar-check` binary exposes both: `pulsar-check models` runs
//! the bounded-exhaustive suite and prints explored-schedule counts;
//! `pulsar-check lint-src --deny` is the CI static-analysis gate.

pub mod atomics;
pub mod cell;
pub mod lint_src;
pub mod models;
pub mod sim;

#[cfg(test)]
mod litmus;
