#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-core
//!
//! Reproduction of *M. Favalli, C. Metra, "Pulse propagation for the
//! detection of small delay defects", DATE 2007*.
//!
//! Resistive opens and bridges on non-critical paths create delay defects
//! smaller than the slack, so even reduced-clock delay-fault (DF) testing
//! misses them. The paper's method instead **injects a pulse** of width
//! `ω_in` at the input of a sensitized path and checks with a sensing
//! circuit (minimum detectable width `ω_th`) whether the pulse survives to
//! the output: a defect that would merely nibble at the slack *dampens*
//! the pulse, and the *absence of output transitions* flags the fault.
//!
//! This crate implements the full methodology:
//!
//! * [`PathInstance`] — the measurement abstraction (path delay, pulse
//!   width transfer, defect-resistance sweep), with an electrical
//!   implementation ([`AnalogPath`], transistor-level via `pulsar-cells`)
//!   and a fast logic-level one ([`ModelPath`], via `pulsar-timing`);
//! * [`TransferCurve`] — the `w_out = f_p(w_in)` characterization with
//!   the paper's three regions (dampened / attenuation / asymptotic) and
//!   the **region-3 rule** for picking `ω_in` (§5, Fig. 10);
//! * [`FfTiming`] + [`df_detects`] — the reduced-clock DF-testing
//!   baseline the paper compares against (§4);
//! * [`calibrate_t0`] / [`calibrate_pulse`] — the zero-false-positive
//!   calibration of `T₀` and `(ω_in⁰, ω_th⁰)` over a fault-free Monte
//!   Carlo sample;
//! * [`DfStudy`] / [`PulseStudy`] — the coverage experiments
//!   `C_del(T, R)` and `C_pulse(ω_th, R)` of Figs. 6–9;
//! * [`plan_for_site`] — test generation (§5): per fault site, enumerate
//!   sensitizable paths, derive `(ω_in, ω_th)` per path and the minimum
//!   detectable resistance `R_min` (Fig. 11).
//!
//! ## Quick example
//!
//! ```
//! use pulsar_core::{AnalogPath, DefectKind, PathInstance, PathUnderTest};
//! use pulsar_cells::{PathSpec, Tech};
//! use pulsar_analog::Polarity;
//!
//! # fn main() -> Result<(), pulsar_core::CoreError> {
//! let put = PathUnderTest {
//!     spec: PathSpec::paper_chain(),
//!     defect: DefectKind::ExternalRop,
//!     stage: 1,
//!     tech: Tech::generic_180nm(),
//! };
//! let mut path: AnalogPath = put.instantiate_nominal(1_000.0);
//! let healthy = path.pulse_width_out(500e-12, Polarity::PositiveGoing)?;
//! path.set_resistance(30_000.0)?;
//! let faulty = path.pulse_width_out(500e-12, Polarity::PositiveGoing)?;
//! assert!(faulty < healthy, "the defect dampens the pulse");
//! # Ok(())
//! # }
//! ```

mod adaptive;
mod bridge;
mod calib;
mod campaign;
mod checkpoint;
mod compact;
mod df;
mod digest;
mod durable;
mod engine;
mod error;
mod faultsim;
mod iddq;
mod model_study;
mod ordering;
mod resilience;
mod study;
mod testgen;
mod tradeoff;
mod transfer;
mod variation;

pub use adaptive::{AdaptivePoint, AdaptiveReport};
pub use bridge::critical_resistance;
pub use calib::{calibrate_pulse, calibrate_t0, DfCalibration, PulseCalibration};
pub use campaign::{Campaign, CampaignReport, SiteOutcome, SitePlanRecord};
pub use checkpoint::{
    Checkpoint, CheckpointSpec, CheckpointValue, PoisonFlag, PoisonOrderings, CHECKPOINT_VERSION,
    POISON_ORDERINGS,
};
pub use compact::{compact_patterns, TestSession};
pub use df::{df_detects, FfTiming};
pub use digest::{campaign_digest_repr, study_digest_repr};
pub use durable::{Completeness, DurableRun};
pub use engine::{AnalogPath, DefectKind, ModelFault, ModelPath, PathInstance, PathUnderTest};
pub use error::CoreError;
pub use faultsim::{all_branch_faults, fault_simulate, BranchFault, FaultSimReport, PulsePattern};
pub use iddq::IddqStudy;
pub use model_study::{ModelDfStudy, ModelPulseStudy};
pub use ordering::{OrderingCalibration, OrderingStudy};
pub use pulsar_analog::SymbolicCache;
pub use pulsar_lint::LintReport;
pub use pulsar_mc::{AdaptivePolicy, BinomialInterval, IntervalRule, PointAccuracy};
pub use pulsar_obs::{CancelReason, CancelToken};
pub use resilience::{
    error_kind, is_retryable, is_run_cancelled, FailureReport, McRunReport, ResilienceConfig,
};
pub use study::{CoverageCurve, DfStudy, McConfig, PulseStudy};
pub use testgen::{
    electrical_spec, plan_for_site, validate_plan_electrically, PathTestPlan, TestgenConfig,
};
pub use tradeoff::TradeoffPoint;
pub use transfer::{Region, TransferCurve};
pub use variation::VariationModel;
