//! The self-timed **output-ordering** DF baseline (the paper's ref.\[7\],
//! A. Singh, ITC 2005), implemented for comparison.
//!
//! Instead of an absolute clock, the method observes the *order* in which
//! two outputs of the block switch after a common launch event: "a DF is
//! detected if the switching order of any two outputs is opposite to that
//! evaluated by means of fault-free simulation". No clock distribution is
//! involved — but, as the paper argues in §1, the usable output pairs
//! "must use signal transitions which are not too close: a too fine
//! ordering may be impaired by timing fluctuations". This module makes
//! that limitation measurable: the reference path must be structurally
//! slower than the monitored path by enough margin that process
//! variation never flips the fault-free order, and that margin is
//! precisely the delay defect the method cannot see.

use crate::durable::Completeness;
use crate::engine::{PathInstance, PathUnderTest};
use crate::error::CoreError;
use crate::study::{CoverageCurve, McConfig};
use pulsar_analog::Edge;
use pulsar_cells::{PathFault, PathSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The output-ordering study: the monitored (possibly faulty) path of
/// [`PathUnderTest`] raced against a fault-free reference path in the
/// same block.
#[derive(Debug, Clone)]
pub struct OrderingStudy {
    /// The monitored path + defect.
    pub put: PathUnderTest,
    /// Monte Carlo setup (same instance streams as the other studies).
    pub mc: McConfig,
    /// Largest reference chain length the calibration may pick.
    pub max_ref_stages: usize,
}

impl OrderingStudy {
    /// A study with a generous reference-length budget.
    pub fn new(put: PathUnderTest, mc: McConfig) -> Self {
        OrderingStudy {
            put,
            mc,
            max_ref_stages: 24,
        }
    }

    fn driver(&self) -> pulsar_mc::MonteCarlo {
        let d = pulsar_mc::MonteCarlo::new(self.mc.samples, self.mc.seed);
        match self.mc.threads {
            Some(t) => d.with_threads(t),
            None => d,
        }
    }

    /// Monitored-path instance techs for sample `i`'s RNG.
    fn draw_mon(&self, rng: &mut StdRng) -> Vec<pulsar_cells::Tech> {
        self.mc
            .variation
            .sample_techs(&self.put.tech, self.put.spec.len(), rng)
    }

    /// Reference-path techs: an independent stream (salted), since the
    /// reference is a physically different path on the same die.
    fn draw_ref(&self, i: usize, n_ref: usize) -> Vec<pulsar_cells::Tech> {
        let mut rng = StdRng::seed_from_u64(self.mc.seed ^ order_salt(i as u64));
        self.mc
            .variation
            .sample_techs(&self.put.tech, n_ref, &mut rng)
    }

    /// Per-sample delays of a fault-free reference chain of `n_ref`
    /// stages.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn reference_delays(&self, n_ref: usize) -> Result<Vec<f64>, CoreError> {
        self.driver()
            .run(move |i, _| {
                let techs = self.draw_ref(i, n_ref);
                let spec = PathSpec::inverter_chain(n_ref);
                let mut p = pulsar_cells::BuiltPath::new(&spec, &PathFault::None, &techs);
                let out = p.propagate_transition(Edge::Rising, None)?;
                Ok(out.delay.unwrap_or(f64::INFINITY))
            })
            .into_iter()
            .collect()
    }

    /// Per-sample delays of the monitored path, fault-free.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn monitored_fault_free_delays(&self) -> Result<Vec<f64>, CoreError> {
        self.driver()
            .run(move |_, rng| {
                let techs = self.draw_mon(rng);
                let mut p = self.put.instantiate_fault_free(&techs);
                p.delay(Edge::Rising)
            })
            .into_iter()
            .collect()
    }

    /// Calibration: the shortest reference chain (longer than the
    /// monitored path) whose delay exceeds *every* fault-free monitored
    /// instance's delay — i.e. zero false order flips over the sample.
    ///
    /// The returned margin (`min_s(ref_s − mon_s)`) is the blind spot:
    /// delay defects smaller than the per-instance separation go
    /// undetected by construction.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyCalibration`] when no chain up to
    /// `max_ref_stages` achieves zero fault-free flips.
    pub fn calibrate(&self) -> Result<OrderingCalibration, CoreError> {
        let mon = self.monitored_fault_free_delays()?;
        for n_ref in (self.put.spec.len() + 1)..=self.max_ref_stages {
            let reference = self.reference_delays(n_ref)?;
            let ok = mon.iter().zip(&reference).all(|(m, r)| m < r);
            if ok {
                let margin = mon
                    .iter()
                    .zip(&reference)
                    .map(|(m, r)| r - m)
                    .fold(f64::INFINITY, f64::min);
                return Ok(OrderingCalibration {
                    ref_stages: n_ref,
                    min_margin: margin,
                });
            }
        }
        Err(CoreError::EmptyCalibration {
            what: "ordering reference (no flip-free length)",
        })
    }

    /// `C_order(R)`: the fraction of instances whose faulty monitored
    /// path now switches *after* its reference — an order flip.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn coverage(
        &self,
        calib: &OrderingCalibration,
        r_values: &[f64],
    ) -> Result<CoverageCurve, CoreError> {
        let reference = self.reference_delays(calib.ref_stages)?;
        let r_vec = r_values.to_vec();
        let faulty: Vec<Vec<f64>> = self
            .driver()
            .run(move |_, rng| {
                let techs = self.draw_mon(rng);
                let mut p = self.put.instantiate(&techs, r_vec[0]);
                let mut row = Vec::with_capacity(r_vec.len());
                for &r in &r_vec {
                    p.set_resistance(r)?;
                    row.push(p.delay(Edge::Rising)?);
                }
                Ok(row)
            })
            .into_iter()
            .collect::<Result<_, CoreError>>()?;

        let coverage = (0..r_values.len())
            .map(|ri| {
                let flips = faulty
                    .iter()
                    .zip(&reference)
                    .filter(|(row, r)| row[ri] >= **r)
                    .count();
                flips as f64 / faulty.len().max(1) as f64
            })
            .collect();
        Ok(CoverageCurve {
            factor: 1.0,
            resistance: r_values.to_vec(),
            coverage,
            // This study still aborts on the first solver error, so a
            // returned curve always covers every sample.
            unresolved: 0.0,
            completeness: Completeness::full(faulty.len()),
        })
    }
}

/// Calibrated ordering-test configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderingCalibration {
    /// Reference chain length chosen by calibration.
    pub ref_stages: usize,
    /// Smallest fault-free separation `ref − monitored` over the sample —
    /// the method's structural blind spot, seconds.
    pub min_margin: f64,
}

/// Salt for the reference path's independent RNG stream.
fn order_salt(i: u64) -> u64 {
    0x0D0E_0F10_1112_1314u64 ^ i.wrapping_mul(0x9E3779B97F4A7C15)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::engine::DefectKind;
    use pulsar_cells::Tech;

    fn put() -> PathUnderTest {
        PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::ExternalRop,
            stage: 1,
            tech: Tech::generic_180nm(),
        }
    }

    fn study() -> OrderingStudy {
        OrderingStudy::new(put(), McConfig::paper(6, 55))
    }

    #[test]
    fn calibration_finds_a_flip_free_reference() {
        let s = study();
        let cal = s.calibrate().unwrap();
        assert!(
            cal.ref_stages > 7,
            "reference must be longer than the monitored path"
        );
        assert!(cal.min_margin > 0.0);
        // No fault-free flips by construction.
        let mon = s.monitored_fault_free_delays().unwrap();
        let reference = s.reference_delays(cal.ref_stages).unwrap();
        assert!(mon.iter().zip(&reference).all(|(m, r)| m < r));
    }

    #[test]
    fn ordering_coverage_rises_with_resistance() {
        let s = study();
        let cal = s.calibrate().unwrap();
        let curve = s.coverage(&cal, &[500.0, 200e3]).unwrap();
        assert!(
            curve.coverage[0] < 0.5,
            "small defects hide below the margin"
        );
        assert!(curve.coverage[1] > 0.9, "a 200 kΩ open must flip the order");
    }

    #[test]
    fn blind_spot_matches_the_margin() {
        // A defect adding less delay than the calibrated margin cannot be
        // detected: verify at the nominal instance.
        let s = study();
        let cal = s.calibrate().unwrap();
        let mut clean = s.put.instantiate_fault_free(&vec![s.put.tech; 7]);
        let d0 = clean.delay(Edge::Rising).unwrap();
        // Find a resistance whose *nominal* extra delay is half the margin.
        let mut p = s.put.instantiate_nominal(1e3);
        let mut r_small = 1e3;
        for r in [1e3, 2e3, 4e3, 8e3] {
            p.set_resistance(r).unwrap();
            if p.delay(Edge::Rising).unwrap() - d0 < 0.5 * cal.min_margin {
                r_small = r;
            }
        }
        let curve = s.coverage(&cal, &[r_small]).unwrap();
        assert!(
            curve.coverage[0] < 0.5,
            "defects below the ordering margin must mostly escape: {:?}",
            curve.coverage
        );
    }
}
