//! Circuit-wide fault campaigns: run §5 test generation over *every*
//! candidate fault site of a netlist and aggregate the result into the
//! numbers a test engineer needs — how many sites are testable, with what
//! pattern count, and what defect-resistance coverage the pattern set
//! achieves. This is the "large combinational networks" application the
//! paper's conclusion points to.

use crate::error::CoreError;
use crate::resilience::error_kind;
use crate::testgen::{plan_for_site, PathTestPlan, TestgenConfig};
use pulsar_analog::FaultPlan;
use pulsar_logic::{collapsed_fault_sites, Netlist, SignalId};
use pulsar_mc::Summary;
use pulsar_obs::{Counter as ObsCounter, Event, Phase, Recorder};
use pulsar_timing::TimingLibrary;
use std::fmt::Write as _;

/// A campaign over all (or a stride-sampled subset of) fault sites of a
/// netlist.
///
/// Fault sites are the external-ROP locations: every gate output and
/// every primary input (a resistive via on the net's fan-out branch).
/// With `collapse` enabled, path-equivalent sites are grouped first
/// (see [`collapsed_fault_sites`]) and only the group representatives are
/// planned — same coverage, fewer runs.
///
/// # Example
///
/// ```
/// use pulsar_core::Campaign;
/// use pulsar_logic::c17;
/// use pulsar_timing::TimingLibrary;
///
/// # fn main() -> Result<(), pulsar_core::CoreError> {
/// let nl = c17();
/// let report = Campaign::default().run(&nl, &TimingLibrary::generic())?;
/// assert!(report.planned > 0);
/// // Huge opens are always caught by the planned sites' tests.
/// assert!(report.coverage_at(1e6) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Test-generation knobs applied per site.
    pub cfg: TestgenConfig,
    /// Probe every `stride`-th site (1 = exhaustive).
    pub stride: usize,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Collapse path-equivalent sites before planning.
    pub collapse: bool,
    /// Test-only deterministic fault plan, keyed by *probed site index*
    /// (after collapsing and striding). A due fault fails that site's
    /// planning with the planned error — campaign planning never reaches
    /// the analog solver, so the plan is honored at this level. `None`
    /// in production.
    pub fault_plan: Option<FaultPlan>,
    /// Observability recorder for the campaign. Disabled by default;
    /// enabled, it times site enumeration, counts per-site outcomes, and
    /// journals one `"site"` event per probed site.
    pub obs: Recorder,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            cfg: TestgenConfig::default(),
            stride: 1,
            threads: None,
            collapse: true,
            fault_plan: None,
            obs: Recorder::disabled(),
        }
    }
}

/// Outcome of one site inside a campaign.
#[derive(Debug, Clone)]
pub enum SiteOutcome {
    /// A ranked plan exists; carries the best one.
    Planned(PathTestPlan),
    /// No path through the site could be sensitized.
    Unsensitizable,
    /// Test generation failed for another reason (kept for the report).
    Failed(CoreError),
}

/// Aggregated campaign result.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-site outcomes, in site order.
    pub sites: Vec<(SignalId, SiteOutcome)>,
    /// Number of sites with a usable plan.
    pub planned: usize,
    /// Number of unsensitizable sites.
    pub unsensitizable: usize,
    /// Number of sites that errored.
    pub failed: usize,
}

impl CampaignReport {
    /// All best plans, in site order.
    pub fn plans(&self) -> impl Iterator<Item = (&SignalId, &PathTestPlan)> {
        self.sites.iter().filter_map(|(s, o)| match o {
            SiteOutcome::Planned(p) => Some((s, p)),
            _ => None,
        })
    }

    /// Summary of the minimum detectable resistance across planned sites
    /// (only sites detectable inside the bracket contribute).
    ///
    /// Returns `None` when no site was detectable.
    pub fn r_min_summary(&self) -> Option<Summary> {
        let rmins: Vec<f64> = self.plans().filter_map(|(_, p)| p.r_min).collect();
        if rmins.is_empty() {
            None
        } else {
            Some(Summary::of(&rmins))
        }
    }

    /// Site-level fault coverage as a function of defect resistance: the
    /// fraction of *probed, sensitizable* sites whose best plan detects a
    /// defect of resistance `r` or larger (`r_min ≤ r`).
    pub fn coverage_at(&self, r: f64) -> f64 {
        let planned: Vec<_> = self.plans().collect();
        if planned.is_empty() {
            return 0.0;
        }
        let detected = planned
            .iter()
            .filter(|(_, p)| p.r_min.map(|m| m <= r).unwrap_or(false))
            .count();
        detected as f64 / planned.len() as f64
    }

    /// The campaign's pattern count: one (vector, pulse) pair per planned
    /// site — the "small amount of test data" argument of the paper's §1.
    pub fn pattern_count(&self) -> usize {
        self.planned
    }

    /// The sites whose test generation errored, with their errors, in
    /// site order. Unsensitizable sites are *not* failures — they are an
    /// expected outcome of real netlists and are counted separately.
    pub fn failures(&self) -> impl Iterator<Item = (&SignalId, &CoreError)> {
        self.sites.iter().filter_map(|(s, o)| match o {
            SiteOutcome::Failed(e) => Some((s, e)),
            _ => None,
        })
    }

    /// Human-readable multi-line summary: site counts, pattern count,
    /// `R_min` statistics, and every failed site with its error.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sites probed = {}, planned = {}, unsensitizable = {}, failed = {}",
            self.sites.len(),
            self.planned,
            self.unsensitizable,
            self.failed
        );
        let _ = writeln!(s, "pattern count = {}", self.pattern_count());
        if let Some(r) = self.r_min_summary() {
            let _ = writeln!(
                s,
                "R_min over planned sites: min {:.3e}, mean {:.3e}, max {:.3e} ohm",
                r.min, r.mean, r.max
            );
        }
        for (site, e) in self.failures() {
            let _ = writeln!(s, "failed site {site:?}: {e}");
        }
        s
    }
}

impl Campaign {
    /// Runs the campaign over `nl` using gate-kind models from `lib`.
    ///
    /// Sites that cannot be sensitized or whose generation fails are
    /// recorded, not fatal — a campaign must survive odd corners of real
    /// netlists.
    ///
    /// # Errors
    ///
    /// Only structural netlist errors (e.g. a combinational loop) abort
    /// the whole campaign.
    pub fn run(&self, nl: &Netlist, lib: &TimingLibrary) -> Result<CampaignReport, CoreError> {
        let setup_span = self.obs.span(Phase::StudySetup);
        nl.topological_order().map_err(CoreError::from)?;

        // Candidate sites: PIs + gate outputs — collapsed to group
        // representatives when enabled — then stride-sampled.
        let sites: Vec<SignalId> = if self.collapse {
            collapsed_fault_sites(nl)
                .into_iter()
                .map(|g| g.representative)
                .collect()
        } else {
            let mut v: Vec<SignalId> = nl.inputs().to_vec();
            v.extend(nl.gates().iter().map(|g| g.output));
            v
        };
        let sites: Vec<SignalId> = sites.into_iter().step_by(self.stride.max(1)).collect();
        drop(setup_span);

        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(1)
            })
            .min(sites.len().max(1));

        let plan_one = |index: usize, site: SignalId| -> SiteOutcome {
            // A planned fault for this probed-site index fails it here:
            // campaign planning is logic-level and never reaches the
            // analog solver, so the plan is honored at this level.
            if let Some((kind, _)) = self.fault_plan.as_ref().and_then(|p| p.due(index, 1)) {
                return SiteOutcome::Failed(CoreError::Analog(kind.planned_error()));
            }
            match plan_for_site(nl, site, lib, &self.cfg) {
                Ok(mut plans) => SiteOutcome::Planned(plans.swap_remove(0)),
                Err(CoreError::NoSensitizablePath { .. }) => SiteOutcome::Unsensitizable,
                Err(e) => SiteOutcome::Failed(e),
            }
        };

        // Each worker returns its own chunk's outcomes; joining in spawn
        // order restores site order with no placeholder slots to unwrap.
        let chunk = sites.len().div_ceil(threads.max(1)).max(1);
        let mut outcomes: Vec<SiteOutcome> = Vec::with_capacity(sites.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = sites
                .chunks(chunk)
                .enumerate()
                .map(|(c, site_chunk)| {
                    let plan_one = &plan_one;
                    scope.spawn(move || {
                        site_chunk
                            .iter()
                            .enumerate()
                            .map(|(j, site)| plan_one(c * chunk + j, *site))
                            .collect::<Vec<SiteOutcome>>()
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => outcomes.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let sites: Vec<(SignalId, SiteOutcome)> = sites.into_iter().zip(outcomes).collect();
        if self.obs.is_enabled() {
            for (i, (site, o)) in sites.iter().enumerate() {
                let mut ev = Event::new("site", i);
                ev.label = Some(format!("{site:?}"));
                match o {
                    SiteOutcome::Planned(_) => {
                        ev.outcome = "planned";
                        self.obs.add(ObsCounter::SitesPlanned, 1);
                    }
                    SiteOutcome::Unsensitizable => {
                        ev.outcome = "unsensitizable";
                        self.obs.add(ObsCounter::SitesUnsensitizable, 1);
                    }
                    SiteOutcome::Failed(e) => {
                        ev.outcome = "failed";
                        ev.error_kind = Some(error_kind(e).to_owned());
                        self.obs.add(ObsCounter::SitesFailed, 1);
                    }
                }
                self.obs.event(ev);
            }
        }
        let planned = sites
            .iter()
            .filter(|(_, o)| matches!(o, SiteOutcome::Planned(_)))
            .count();
        let unsensitizable = sites
            .iter()
            .filter(|(_, o)| matches!(o, SiteOutcome::Unsensitizable))
            .count();
        let failed = sites
            .iter()
            .filter(|(_, o)| matches!(o, SiteOutcome::Failed(_)))
            .count();
        Ok(CampaignReport {
            sites,
            planned,
            unsensitizable,
            failed,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_logic::{c432_like, GateKind, Netlist};

    #[test]
    fn campaign_covers_a_small_circuit_exhaustively() {
        // A clean 4-gate chain: every site sensitizable.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g0 = nl.add_gate(GateKind::Nand, &[a, b], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[g0], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1], "g2").unwrap();
        nl.mark_output(g2);

        // Without collapsing: every net is its own site.
        let report = Campaign {
            collapse: false,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(report.sites.len(), 5); // 2 PIs + 3 gates
        assert_eq!(report.failed, 0);
        assert_eq!(report.planned + report.unsensitizable, 5);
        assert!(
            report.planned >= 4,
            "chain sites must be plannable: {report:?}"
        );
        assert_eq!(report.pattern_count(), report.planned);

        // With collapsing, the g0→g1→g2 inverter chain folds into one
        // group: a, b and the chain representative remain.
        let collapsed = Campaign::default()
            .run(&nl, &TimingLibrary::generic())
            .unwrap();
        assert_eq!(collapsed.sites.len(), 3, "{:?}", collapsed.sites);
    }

    #[test]
    fn coverage_profile_is_monotone_in_r() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let report = campaign.run(&nl, &TimingLibrary::generic()).unwrap();
        assert!(report.planned > 0, "some sites must be plannable");
        let c_small = report.coverage_at(1e3);
        let c_mid = report.coverage_at(30e3);
        let c_big = report.coverage_at(2e6);
        assert!(
            c_small <= c_mid && c_mid <= c_big,
            "{c_small} {c_mid} {c_big}"
        );
        assert!(
            c_big > 0.9,
            "every planned site detects a huge open, got {c_big}"
        );
    }

    #[test]
    fn r_min_summary_aggregates_plans() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 10,
            ..Campaign::default()
        };
        let report = campaign.run(&nl, &TimingLibrary::generic()).unwrap();
        let s = report.r_min_summary().expect("detectable sites exist");
        assert!(s.min > 0.0 && s.max >= s.min);
    }

    #[test]
    fn fault_plan_fails_planned_sites_and_surfaces_in_failures() {
        use pulsar_analog::{FaultKind, FaultPlan};

        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            fault_plan: Some(
                FaultPlan::new()
                    .fail_sample(1, FaultKind::NonConvergence, FaultPlan::ALWAYS)
                    .fail_sample(3, FaultKind::SingularMatrix, FaultPlan::ALWAYS),
            ),
            ..Campaign::default()
        };
        let report = campaign.run(&nl, &TimingLibrary::generic()).unwrap();
        assert_eq!(report.failed, 2, "exactly the two planned sites fail");
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 2);
        assert_eq!(*failures[0].0, report.sites[1].0);
        assert!(matches!(
            failures[0].1,
            CoreError::Analog(pulsar_analog::Error::NoConvergence { .. })
        ));
        assert!(matches!(
            failures[1].1,
            CoreError::Analog(pulsar_analog::Error::SingularMatrix { .. })
        ));

        // The summary names the failed sites.
        let s = report.summary();
        assert!(s.contains("failed = 2"), "{s}");
        assert!(s.contains("failed site"), "{s}");

        // The rest of the campaign is unaffected: same outcomes as a
        // plan-free run everywhere else.
        let clean = Campaign {
            stride: 8,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(clean.failed, 0);
        assert_eq!(
            clean.planned + clean.unsensitizable,
            report.planned + report.unsensitizable + 2,
            "the two failed sites resolve normally without the plan"
        );
        for (i, ((sa, oa), (sb, ob))) in clean.sites.iter().zip(&report.sites).enumerate() {
            assert_eq!(sa, sb);
            if i != 1 && i != 3 {
                assert_eq!(
                    matches!(oa, SiteOutcome::Planned(_)),
                    matches!(ob, SiteOutcome::Planned(_)),
                    "site {i} outcome changed"
                );
            }
        }
    }

    #[test]
    fn clean_campaign_reports_no_failures() {
        let nl = c432_like();
        let report = Campaign {
            stride: 16,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(report.failures().count(), 0);
        assert!(!report.summary().contains("failed site"));
    }

    #[test]
    fn stride_reduces_the_probed_set() {
        let nl = c432_like();
        let full_sites = nl.inputs().len() + nl.gate_count();
        let report = Campaign {
            stride: 4,
            threads: Some(2),
            collapse: false,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(report.sites.len(), full_sites.div_ceil(4));
    }
}
