//! Circuit-wide fault campaigns: run §5 test generation over *every*
//! candidate fault site of a netlist and aggregate the result into the
//! numbers a test engineer needs — how many sites are testable, with what
//! pattern count, and what defect-resistance coverage the pattern set
//! achieves. This is the "large combinational networks" application the
//! paper's conclusion points to.

use crate::checkpoint::{decode_f64, encode_f64, Checkpoint, CheckpointSpec, CheckpointValue};
use crate::durable::{Completeness, Watchdog};
use crate::error::CoreError;
use crate::resilience::{error_kind, is_run_cancelled, ResilienceConfig};
use crate::testgen::{plan_for_site, PathTestPlan, TestgenConfig};
use pulsar_analog::{FaultPlan, Polarity};
use pulsar_logic::{collapsed_fault_sites, GateId, InputVector, Netlist, Path, PathStep, SignalId};
use pulsar_mc::{MonteCarlo, RunHooks, SampleOutcome, Summary};
use pulsar_obs::json::{json_str, Json};
use pulsar_obs::{config_digest, CancelToken, Counter as ObsCounter, Event, Phase, Recorder};
use pulsar_timing::TimingLibrary;
use std::fmt::Write as _;

/// A campaign over all (or a stride-sampled subset of) fault sites of a
/// netlist.
///
/// Fault sites are the external-ROP locations: every gate output and
/// every primary input (a resistive via on the net's fan-out branch).
/// With `collapse` enabled, path-equivalent sites are grouped first
/// (see [`collapsed_fault_sites`]) and only the group representatives are
/// planned — same coverage, fewer runs.
///
/// # Example
///
/// ```
/// use pulsar_core::Campaign;
/// use pulsar_logic::c17;
/// use pulsar_timing::TimingLibrary;
///
/// # fn main() -> Result<(), pulsar_core::CoreError> {
/// let nl = c17();
/// let report = Campaign::default().run(&nl, &TimingLibrary::generic())?;
/// assert!(report.planned > 0);
/// // Huge opens are always caught by the planned sites' tests.
/// assert!(report.coverage_at(1e6) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Test-generation knobs applied per site.
    pub cfg: TestgenConfig,
    /// Probe every `stride`-th site (1 = exhaustive).
    pub stride: usize,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Collapse path-equivalent sites before planning.
    pub collapse: bool,
    /// Test-only deterministic fault plan, keyed by *probed site index*
    /// (after collapsing and striding). A due fault fails that site's
    /// planning with the planned error — campaign planning never reaches
    /// the analog solver, so the plan is honored at this level. `None`
    /// in production.
    pub fault_plan: Option<FaultPlan>,
    /// Observability recorder for the campaign. Disabled by default;
    /// enabled, it times site enumeration, counts per-site outcomes, and
    /// journals one `"site"` event per probed site.
    pub obs: Recorder,
    /// Resilience knobs honored by the durable entry points
    /// ([`Campaign::run_durable`] / [`Campaign::resume_from`]): `deadline`
    /// truncates the run at a site boundary, `contain_panics` converts a
    /// panicking site into a [`SiteOutcome::Failed`]. The plain
    /// [`Campaign::run`] ignores this field.
    pub resilience: ResilienceConfig,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            cfg: TestgenConfig::default(),
            stride: 1,
            threads: None,
            collapse: true,
            fault_plan: None,
            obs: Recorder::disabled(),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Outcome of one site inside a campaign.
#[derive(Debug, Clone)]
pub enum SiteOutcome {
    /// A ranked plan exists; carries the best one.
    Planned(PathTestPlan),
    /// No path through the site could be sensitized.
    Unsensitizable,
    /// Test generation failed for another reason (kept for the report).
    Failed(CoreError),
}

/// Checkpoint payload for one campaign site: the durable subset of
/// [`SiteOutcome`]. `Failed` is deliberately *not* representable — a
/// failed site re-plans deterministically on resume instead of having its
/// error serialized.
#[derive(Debug, Clone)]
pub enum SitePlanRecord {
    /// The site's best plan.
    Planned(PathTestPlan),
    /// No path through the site could be sensitized.
    Unsensitizable,
}

impl SitePlanRecord {
    fn into_site_outcome(self) -> SiteOutcome {
        match self {
            SitePlanRecord::Planned(p) => SiteOutcome::Planned(p),
            SitePlanRecord::Unsensitizable => SiteOutcome::Unsensitizable,
        }
    }
}

/// Decodes the `"planned"` shape; `None` on any mismatch.
fn decode_planned(v: &Json) -> Option<SitePlanRecord> {
    let from = SignalId::from_index(crate::checkpoint::as_usize(v.get("from")?)?);
    let steps = match v.get("steps")? {
        Json::Arr(items) => {
            let mut steps = Vec::with_capacity(items.len());
            for it in items {
                let Json::Arr(pair) = it else { return None };
                if pair.len() != 2 {
                    return None;
                }
                steps.push(PathStep {
                    gate: GateId::from_index(crate::checkpoint::as_usize(&pair[0])?),
                    pin: crate::checkpoint::as_usize(&pair[1])?,
                });
            }
            steps
        }
        _ => return None,
    };
    let mut values = Vec::new();
    for c in v.get("vector")?.as_str()?.chars() {
        values.push(match c {
            '1' => Some(true),
            '0' => Some(false),
            'x' => None,
            _ => return None,
        });
    }
    let polarity = match v.get("polarity")?.as_str()? {
        "positive" => Polarity::PositiveGoing,
        "negative" => Polarity::NegativeGoing,
        _ => return None,
    };
    let w_in = decode_f64(v.get("w_in")?)?;
    let w_th = decode_f64(v.get("w_th")?)?;
    let r_min = match v.get("r_min")? {
        Json::Null => None,
        other => Some(decode_f64(other)?),
    };
    Some(SitePlanRecord::Planned(PathTestPlan {
        path: Path { from, steps },
        vector: InputVector { values },
        polarity,
        w_in,
        w_th,
        r_min,
    }))
}

impl CheckpointValue for SitePlanRecord {
    const TAG: &'static str = "site-plan";

    fn encode_json(&self) -> String {
        let p = match self {
            SitePlanRecord::Unsensitizable => {
                return "{\"site\":\"unsensitizable\"}".to_owned();
            }
            SitePlanRecord::Planned(p) => p,
        };
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"site\":\"planned\",\"from\":{},\"steps\":[",
            p.path.from.index()
        );
        for (i, st) in p.path.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},{}]", st.gate.index(), st.pin);
        }
        // The input vector as a trit string: '0' / '1' / 'x' (don't-care),
        // indexed by signal id like the vector itself.
        let mut trits = String::with_capacity(p.vector.values.len());
        for v in &p.vector.values {
            trits.push(match v {
                Some(true) => '1',
                Some(false) => '0',
                None => 'x',
            });
        }
        let pol = match p.polarity {
            Polarity::PositiveGoing => "positive",
            Polarity::NegativeGoing => "negative",
        };
        let _ = write!(
            s,
            "],\"vector\":{},\"polarity\":{},\"w_in\":{},\"w_th\":{},\"r_min\":",
            json_str(&trits),
            json_str(pol),
            encode_f64(p.w_in),
            encode_f64(p.w_th)
        );
        match p.r_min {
            Some(r) => s.push_str(&encode_f64(r)),
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }

    fn decode_json(v: &Json) -> Option<Self> {
        match v.get("site")?.as_str()? {
            "unsensitizable" => Some(SitePlanRecord::Unsensitizable),
            "planned" => decode_planned(v),
            _ => None,
        }
    }
}

/// Aggregated campaign result.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-site outcomes, in site order. In a durable run truncated by a
    /// deadline or interrupt, only the *done* sites appear — see
    /// [`CampaignReport::completeness`].
    pub sites: Vec<(SignalId, SiteOutcome)>,
    /// Number of sites with a usable plan.
    pub planned: usize,
    /// Number of unsensitizable sites.
    pub unsensitizable: usize,
    /// Number of sites that errored.
    pub failed: usize,
    /// How much of the campaign actually ran. Always complete for
    /// [`Campaign::run`]; a durable run reports honest partial progress.
    pub completeness: Completeness,
}

impl CampaignReport {
    /// Builds a report from per-site outcomes, deriving the counts.
    fn from_parts(sites: Vec<(SignalId, SiteOutcome)>, completeness: Completeness) -> Self {
        let planned = sites
            .iter()
            .filter(|(_, o)| matches!(o, SiteOutcome::Planned(_)))
            .count();
        let unsensitizable = sites
            .iter()
            .filter(|(_, o)| matches!(o, SiteOutcome::Unsensitizable))
            .count();
        let failed = sites
            .iter()
            .filter(|(_, o)| matches!(o, SiteOutcome::Failed(_)))
            .count();
        CampaignReport {
            sites,
            planned,
            unsensitizable,
            failed,
            completeness,
        }
    }
    /// All best plans, in site order.
    pub fn plans(&self) -> impl Iterator<Item = (&SignalId, &PathTestPlan)> {
        self.sites.iter().filter_map(|(s, o)| match o {
            SiteOutcome::Planned(p) => Some((s, p)),
            _ => None,
        })
    }

    /// Summary of the minimum detectable resistance across planned sites
    /// (only sites detectable inside the bracket contribute).
    ///
    /// Returns `None` when no site was detectable.
    pub fn r_min_summary(&self) -> Option<Summary> {
        let rmins: Vec<f64> = self.plans().filter_map(|(_, p)| p.r_min).collect();
        if rmins.is_empty() {
            None
        } else {
            Some(Summary::of(&rmins))
        }
    }

    /// Site-level fault coverage as a function of defect resistance: the
    /// fraction of *probed, sensitizable* sites whose best plan detects a
    /// defect of resistance `r` or larger (`r_min ≤ r`).
    pub fn coverage_at(&self, r: f64) -> f64 {
        let planned: Vec<_> = self.plans().collect();
        if planned.is_empty() {
            return 0.0;
        }
        let detected = planned
            .iter()
            .filter(|(_, p)| p.r_min.map(|m| m <= r).unwrap_or(false))
            .count();
        detected as f64 / planned.len() as f64
    }

    /// The campaign's pattern count: one (vector, pulse) pair per planned
    /// site — the "small amount of test data" argument of the paper's §1.
    pub fn pattern_count(&self) -> usize {
        self.planned
    }

    /// The sites whose test generation errored, with their errors, in
    /// site order. Unsensitizable sites are *not* failures — they are an
    /// expected outcome of real netlists and are counted separately.
    pub fn failures(&self) -> impl Iterator<Item = (&SignalId, &CoreError)> {
        self.sites.iter().filter_map(|(s, o)| match o {
            SiteOutcome::Failed(e) => Some((s, e)),
            _ => None,
        })
    }

    /// Human-readable multi-line summary: site counts, pattern count,
    /// `R_min` statistics, and every failed site with its error.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sites probed = {}, planned = {}, unsensitizable = {}, failed = {}",
            self.sites.len(),
            self.planned,
            self.unsensitizable,
            self.failed
        );
        if let Some(why) = self.completeness.truncated {
            let _ = writeln!(
                s,
                "TRUNCATED ({why}): {}/{} sites done ({} restored from checkpoint)",
                self.completeness.done, self.completeness.requested, self.completeness.resumed
            );
        }
        let _ = writeln!(s, "pattern count = {}", self.pattern_count());
        if let Some(r) = self.r_min_summary() {
            let _ = writeln!(
                s,
                "R_min over planned sites: min {:.3e}, mean {:.3e}, max {:.3e} ohm",
                r.min, r.mean, r.max
            );
        }
        for (site, e) in self.failures() {
            let _ = writeln!(s, "failed site {site:?}: {e}");
        }
        s
    }

    /// The canonical `pulsar campaign` report text: site counts,
    /// checkpoint/truncation accounting, pattern and compacted-session
    /// counts, `R_min` statistics, and the fixed coverage ladder. The
    /// one-shot CLI and the serve daemon both render through here, so an
    /// identical config digest yields byte-identical report text
    /// regardless of the entry point. `resumed_from` names the
    /// checkpoint the run restored sites from, when it did.
    pub fn render_report(&self, nl: &Netlist, resumed_from: Option<&str>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} sites probed: {} planned, {} unsensitizable, {} failed",
            self.sites.len(),
            self.planned,
            self.unsensitizable,
            self.failed
        );
        if self.completeness.resumed > 0 {
            let _ = writeln!(
                out,
                "checkpoint: {} of {} sites restored from {}",
                self.completeness.resumed,
                self.completeness.done,
                resumed_from.unwrap_or("-"),
            );
        }
        if let Some(why) = self.completeness.truncated {
            let _ = writeln!(
                out,
                "TRUNCATED ({why}): {} of {} sites done",
                self.completeness.done, self.completeness.requested
            );
        }
        let _ = writeln!(out, "pattern count: {}", self.pattern_count());
        let plans: Vec<_> = self
            .sites
            .iter()
            .filter_map(|(_, o)| match o {
                SiteOutcome::Planned(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        let sessions = crate::compact_patterns(nl, &plans);
        let _ = writeln!(out, "compacted vector-load sessions: {}", sessions.len());
        if let Some(s) = self.r_min_summary() {
            let _ = writeln!(
                out,
                "R_min: min {:.3e}, mean {:.3e}, max {:.3e} ohm",
                s.min, s.mean, s.max
            );
        }
        for r in [1e3, 10e3, 100e3, 1e6] {
            let _ = writeln!(
                out,
                "site coverage at {:>9.0} ohm: {:.3}",
                r,
                self.coverage_at(r)
            );
        }
        out
    }
}

impl Campaign {
    /// Runs the campaign over `nl` using gate-kind models from `lib`.
    ///
    /// Sites that cannot be sensitized or whose generation fails are
    /// recorded, not fatal — a campaign must survive odd corners of real
    /// netlists.
    ///
    /// # Errors
    ///
    /// Only structural netlist errors (e.g. a combinational loop) abort
    /// the whole campaign.
    pub fn run(&self, nl: &Netlist, lib: &TimingLibrary) -> Result<CampaignReport, CoreError> {
        let setup_span = self.obs.span(Phase::StudySetup);
        let sites = self.probed_sites(nl)?;
        drop(setup_span);

        let threads = self.worker_threads(sites.len());

        let plan_one = |index: usize, site: SignalId| -> SiteOutcome {
            // A planned fault for this probed-site index fails it here:
            // campaign planning is logic-level and never reaches the
            // analog solver, so the plan is honored at this level.
            if let Some((kind, _)) = self.fault_plan.as_ref().and_then(|p| p.due(index, 1)) {
                if let Some(e) = kind.planned_outcome() {
                    return SiteOutcome::Failed(CoreError::Analog(e));
                }
            }
            match plan_for_site(nl, site, lib, &self.cfg) {
                Ok(mut plans) => SiteOutcome::Planned(plans.swap_remove(0)),
                Err(CoreError::NoSensitizablePath { .. }) => SiteOutcome::Unsensitizable,
                Err(e) => SiteOutcome::Failed(e),
            }
        };

        // Each worker returns its own chunk's outcomes; joining in spawn
        // order restores site order with no placeholder slots to unwrap.
        let chunk = sites.len().div_ceil(threads.max(1)).max(1);
        let mut outcomes: Vec<SiteOutcome> = Vec::with_capacity(sites.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = sites
                .chunks(chunk)
                .enumerate()
                .map(|(c, site_chunk)| {
                    let plan_one = &plan_one;
                    scope.spawn(move || {
                        site_chunk
                            .iter()
                            .enumerate()
                            .map(|(j, site)| plan_one(c * chunk + j, *site))
                            .collect::<Vec<SiteOutcome>>()
                    })
                })
                .collect();
            // Join *every* worker before re-raising a panic: siblings get
            // to finish (and flush any journaling) instead of being torn
            // down mid-site by an unwinding scope.
            let mut first_panic = None;
            for h in handles {
                match h.join() {
                    Ok(part) => outcomes.extend(part),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });

        let sites: Vec<(SignalId, SiteOutcome)> = sites.into_iter().zip(outcomes).collect();
        if self.obs.is_enabled() {
            for (i, (site, o)) in sites.iter().enumerate() {
                self.journal_site(i, *site, o);
            }
        }
        let completeness = Completeness {
            requested: sites.len(),
            done: sites.len(),
            resumed: 0,
            truncated: None,
        };
        Ok(CampaignReport::from_parts(sites, completeness))
    }

    /// The deterministic probed-site list for `nl` under this campaign's
    /// collapse/stride settings. This ordering is also the checkpoint
    /// index space: site `i` here is record index `i` in a durable run's
    /// checkpoint file.
    fn probed_sites(&self, nl: &Netlist) -> Result<Vec<SignalId>, CoreError> {
        nl.topological_order().map_err(CoreError::from)?;
        // Candidate sites: PIs + gate outputs — collapsed to group
        // representatives when enabled — then stride-sampled.
        let sites: Vec<SignalId> = if self.collapse {
            collapsed_fault_sites(nl)
                .into_iter()
                .map(|g| g.representative)
                .collect()
        } else {
            let mut v: Vec<SignalId> = nl.inputs().to_vec();
            v.extend(nl.gates().iter().map(|g| g.output));
            v
        };
        Ok(sites.into_iter().step_by(self.stride.max(1)).collect())
    }

    fn worker_threads(&self, sites: usize) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(1)
            })
            .min(sites.max(1))
    }

    /// Emits one `"site"` journal event and bumps the per-outcome counter.
    fn journal_site(&self, i: usize, site: SignalId, o: &SiteOutcome) {
        let mut ev = Event::new("site", i);
        ev.label = Some(format!("{site:?}"));
        match o {
            SiteOutcome::Planned(_) => {
                ev.outcome = "planned";
                self.obs.add(ObsCounter::SitesPlanned, 1);
            }
            SiteOutcome::Unsensitizable => {
                ev.outcome = "unsensitizable";
                self.obs.add(ObsCounter::SitesUnsensitizable, 1);
            }
            SiteOutcome::Failed(e) => {
                ev.outcome = "failed";
                ev.error_kind = Some(error_kind(e).to_owned());
                if let CoreError::Panic { message } = e {
                    ev.detail = Some(message.clone());
                }
                self.obs.add(ObsCounter::SitesFailed, 1);
            }
        }
        self.obs.event(ev);
    }

    /// The [`CheckpointSpec`] identifying a durable run of this campaign
    /// over `nl`: the config digest covers the testgen knobs, collapse,
    /// stride, *and* the resolved probed-site list, so a checkpoint can
    /// never be resumed against a different netlist or site ordering.
    ///
    /// # Errors
    ///
    /// Structural netlist errors, as for [`Campaign::run`].
    pub fn checkpoint_spec(&self, nl: &Netlist) -> Result<CheckpointSpec, CoreError> {
        let sites = self.probed_sites(nl)?;
        let digest = config_digest(&format!(
            "campaign cfg={:?} stride={} collapse={} sites={:?}",
            self.cfg, self.stride, self.collapse, sites
        ));
        Ok(CheckpointSpec {
            config_digest: digest,
            seed: 0,
            samples: sites.len(),
        })
    }

    /// Durable variant of [`Campaign::run`]: cooperative cancellation
    /// through `run_token`, the [`ResilienceConfig::deadline`] wall-clock
    /// budget, opt-in panic containment, and crash-consistent
    /// checkpoint/resume (per-site completion records; failed sites
    /// re-plan deterministically on resume).
    ///
    /// A cancelled or deadline-cut run returns the sites it finished —
    /// [`CampaignReport::completeness`] says how many and why it stopped —
    /// and the checkpoint (when given) holds everything needed to resume.
    /// An uninterrupted durable run is identical to [`Campaign::run`]
    /// outcome-for-outcome.
    ///
    /// # Errors
    ///
    /// Structural netlist errors as for [`Campaign::run`];
    /// [`CoreError::Checkpoint`] when `checkpoint` belongs to a different
    /// campaign or a record append failed mid-run.
    pub fn run_durable(
        &self,
        nl: &Netlist,
        lib: &TimingLibrary,
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<SitePlanRecord>>,
    ) -> Result<CampaignReport, CoreError> {
        let setup_span = self.obs.span(Phase::StudySetup);
        let sites = self.probed_sites(nl)?;
        drop(setup_span);
        if let Some(c) = checkpoint {
            let expected = self.checkpoint_spec(nl)?;
            if *c.spec() != expected {
                return Err(CoreError::Checkpoint {
                    reason: format!(
                        "checkpoint {} was opened under a different campaign spec",
                        c.path().display()
                    ),
                });
            }
        }

        let driver = MonteCarlo::new(sites.len(), 0).with_threads(self.worker_threads(sites.len()));
        // Deadline only: site planning is logic-level with no inner
        // cancellation point, so a per-site timeout could never fire.
        let watchdog = Watchdog::new(run_token.clone(), self.resilience.deadline, None);

        let plan_one = |index: usize, site: SignalId| -> SiteOutcome {
            if let Some((kind, _)) = self.fault_plan.as_ref().and_then(|p| p.due(index, 1)) {
                if let Some(e) = kind.planned_outcome() {
                    return SiteOutcome::Failed(CoreError::Analog(e));
                }
            }
            match plan_for_site(nl, site, lib, &self.cfg) {
                Ok(mut plans) => SiteOutcome::Planned(plans.swap_remove(0)),
                Err(CoreError::NoSensitizablePath { .. }) => SiteOutcome::Unsensitizable,
                Err(e) => SiteOutcome::Failed(e),
            }
        };

        let prior = |i: usize| checkpoint.and_then(|c| c.prior().get(&i).cloned());
        let on_done = |i: usize, o: &SampleOutcome<SitePlanRecord, CoreError>| {
            if let Some(c) = checkpoint {
                c.record(i, driver.stream_seed(i), o);
            }
        };
        let contain = |message: String| CoreError::Panic { message };
        let hooks = RunHooks {
            prior: Some(&prior),
            on_done: Some(&on_done),
            cancel: Some(run_token),
            contain_panics: if self.resilience.contain_panics {
                Some(&contain)
            } else {
                None
            },
        };
        let raw = driver.try_run_resumed(
            1,
            |_: &CoreError| false,
            hooks,
            |i, _attempt, _rng| match plan_one(i, sites[i]) {
                SiteOutcome::Planned(p) => Ok(SitePlanRecord::Planned(p)),
                SiteOutcome::Unsensitizable => Ok(SitePlanRecord::Unsensitizable),
                SiteOutcome::Failed(e) => Err(e),
            },
        );
        drop(watchdog);

        let resumed = checkpoint.map_or(0, |c| {
            (0..raw.len())
                .filter(|i| raw[*i].is_some() && c.prior().contains_key(i))
                .count()
        });
        let requested = sites.len();
        let mut done_sites: Vec<(SignalId, SiteOutcome)> = Vec::with_capacity(requested);
        for (i, slot) in raw.into_iter().enumerate() {
            let outcome = match slot {
                None => None,
                Some(SampleOutcome::Failed { error, .. }) if is_run_cancelled(&error) => None,
                Some(SampleOutcome::Ok(rec))
                | Some(SampleOutcome::Recovered { value: rec, .. }) => {
                    Some(rec.into_site_outcome())
                }
                Some(SampleOutcome::Failed { error, .. }) => Some(SiteOutcome::Failed(error)),
            };
            if let Some(o) = outcome {
                if self.obs.is_enabled() {
                    self.journal_site(i, sites[i], &o);
                }
                done_sites.push((sites[i], o));
            }
        }
        if let Some(c) = checkpoint {
            c.ensure_healthy()?;
        }
        let completeness = Completeness {
            requested,
            done: done_sites.len(),
            resumed,
            // A cancellation that landed after the last site resolved (or
            // when every site was restored from the checkpoint) truncated
            // nothing: the campaign is complete.
            truncated: (done_sites.len() < requested)
                .then(|| run_token.cancelled().map(|r| r.label()))
                .flatten(),
        };
        Ok(CampaignReport::from_parts(done_sites, completeness))
    }

    /// Opens (or creates) the checkpoint at `path` for this campaign over
    /// `nl` and runs durably against it — the one-call version of
    /// [`Campaign::checkpoint_spec`] + [`Checkpoint::open`] +
    /// [`Campaign::run_durable`], and the CLI's `--resume` semantics.
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run_durable`].
    pub fn resume_from(
        &self,
        nl: &Netlist,
        lib: &TimingLibrary,
        run_token: &CancelToken,
        path: &std::path::Path,
    ) -> Result<CampaignReport, CoreError> {
        let spec = self.checkpoint_spec(nl)?;
        let ck = Checkpoint::open(path, spec)?;
        self.run_durable(nl, lib, run_token, Some(&ck))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_logic::{c432_like, GateKind, Netlist};

    #[test]
    fn campaign_covers_a_small_circuit_exhaustively() {
        // A clean 4-gate chain: every site sensitizable.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g0 = nl.add_gate(GateKind::Nand, &[a, b], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[g0], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1], "g2").unwrap();
        nl.mark_output(g2);

        // Without collapsing: every net is its own site.
        let report = Campaign {
            collapse: false,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(report.sites.len(), 5); // 2 PIs + 3 gates
        assert_eq!(report.failed, 0);
        assert_eq!(report.planned + report.unsensitizable, 5);
        assert!(
            report.planned >= 4,
            "chain sites must be plannable: {report:?}"
        );
        assert_eq!(report.pattern_count(), report.planned);

        // With collapsing, the g0→g1→g2 inverter chain folds into one
        // group: a, b and the chain representative remain.
        let collapsed = Campaign::default()
            .run(&nl, &TimingLibrary::generic())
            .unwrap();
        assert_eq!(collapsed.sites.len(), 3, "{:?}", collapsed.sites);
    }

    #[test]
    fn coverage_profile_is_monotone_in_r() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let report = campaign.run(&nl, &TimingLibrary::generic()).unwrap();
        assert!(report.planned > 0, "some sites must be plannable");
        let c_small = report.coverage_at(1e3);
        let c_mid = report.coverage_at(30e3);
        let c_big = report.coverage_at(2e6);
        assert!(
            c_small <= c_mid && c_mid <= c_big,
            "{c_small} {c_mid} {c_big}"
        );
        assert!(
            c_big > 0.9,
            "every planned site detects a huge open, got {c_big}"
        );
    }

    #[test]
    fn r_min_summary_aggregates_plans() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 10,
            ..Campaign::default()
        };
        let report = campaign.run(&nl, &TimingLibrary::generic()).unwrap();
        let s = report.r_min_summary().expect("detectable sites exist");
        assert!(s.min > 0.0 && s.max >= s.min);
    }

    #[test]
    fn fault_plan_fails_planned_sites_and_surfaces_in_failures() {
        use pulsar_analog::{FaultKind, FaultPlan};

        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            fault_plan: Some(
                FaultPlan::new()
                    .fail_sample(1, FaultKind::NonConvergence, FaultPlan::ALWAYS)
                    .fail_sample(3, FaultKind::SingularMatrix, FaultPlan::ALWAYS),
            ),
            ..Campaign::default()
        };
        let report = campaign.run(&nl, &TimingLibrary::generic()).unwrap();
        assert_eq!(report.failed, 2, "exactly the two planned sites fail");
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 2);
        assert_eq!(*failures[0].0, report.sites[1].0);
        assert!(matches!(
            failures[0].1,
            CoreError::Analog(pulsar_analog::Error::NoConvergence { .. })
        ));
        assert!(matches!(
            failures[1].1,
            CoreError::Analog(pulsar_analog::Error::SingularMatrix { .. })
        ));

        // The summary names the failed sites.
        let s = report.summary();
        assert!(s.contains("failed = 2"), "{s}");
        assert!(s.contains("failed site"), "{s}");

        // The rest of the campaign is unaffected: same outcomes as a
        // plan-free run everywhere else.
        let clean = Campaign {
            stride: 8,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(clean.failed, 0);
        assert_eq!(
            clean.planned + clean.unsensitizable,
            report.planned + report.unsensitizable + 2,
            "the two failed sites resolve normally without the plan"
        );
        for (i, ((sa, oa), (sb, ob))) in clean.sites.iter().zip(&report.sites).enumerate() {
            assert_eq!(sa, sb);
            if i != 1 && i != 3 {
                assert_eq!(
                    matches!(oa, SiteOutcome::Planned(_)),
                    matches!(ob, SiteOutcome::Planned(_)),
                    "site {i} outcome changed"
                );
            }
        }
    }

    #[test]
    fn clean_campaign_reports_no_failures() {
        let nl = c432_like();
        let report = Campaign {
            stride: 16,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(report.failures().count(), 0);
        assert!(!report.summary().contains("failed site"));
    }

    #[test]
    fn stride_reduces_the_probed_set() {
        let nl = c432_like();
        let full_sites = nl.inputs().len() + nl.gate_count();
        let report = Campaign {
            stride: 4,
            threads: Some(2),
            collapse: false,
            ..Campaign::default()
        }
        .run(&nl, &TimingLibrary::generic())
        .unwrap();
        assert_eq!(report.sites.len(), full_sites.div_ceil(4));
    }

    /// Canonical per-site fingerprint: exact down to f64 bit patterns for
    /// planned sites, error kind for failures.
    fn fingerprint(o: &SiteOutcome) -> String {
        match o {
            SiteOutcome::Planned(p) => SitePlanRecord::Planned(p.clone()).encode_json(),
            SiteOutcome::Unsensitizable => "unsensitizable".to_owned(),
            SiteOutcome::Failed(e) => format!("failed:{}", error_kind(e)),
        }
    }

    fn report_fingerprints(r: &CampaignReport) -> Vec<(SignalId, String)> {
        r.sites.iter().map(|(s, o)| (*s, fingerprint(o))).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pulsar-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}.ckpt", name, std::process::id()))
    }

    #[test]
    fn durable_run_matches_plain_run_exactly() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let lib = TimingLibrary::generic();
        let plain = campaign.run(&nl, &lib).unwrap();
        let durable = campaign
            .run_durable(&nl, &lib, &CancelToken::new(), None)
            .unwrap();
        assert_eq!(report_fingerprints(&plain), report_fingerprints(&durable));
        assert!(durable.completeness.is_complete());
        assert_eq!(durable.completeness.resumed, 0);
    }

    #[test]
    fn site_plan_records_round_trip_through_the_checkpoint() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let lib = TimingLibrary::generic();
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);

        let spec = campaign.checkpoint_spec(&nl).unwrap();
        let ck = Checkpoint::create(&path, spec).unwrap();
        let first = campaign
            .run_durable(&nl, &lib, &CancelToken::new(), Some(&ck))
            .unwrap();
        drop(ck);

        // Re-open: every site decodes back and the resumed run recomputes
        // nothing, yet reports bit-identical outcomes.
        let ck = Checkpoint::open(&path, spec).unwrap();
        assert_eq!(ck.resumed_count(), first.sites.len());
        let resumed = campaign
            .run_durable(&nl, &lib, &CancelToken::new(), Some(&ck))
            .unwrap();
        assert_eq!(report_fingerprints(&first), report_fingerprints(&resumed));
        assert_eq!(resumed.completeness.resumed, first.sites.len());
        assert!(resumed.completeness.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_a_truncated_checkpoint_is_bit_identical() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let lib = TimingLibrary::generic();
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);

        let spec = campaign.checkpoint_spec(&nl).unwrap();
        let ck = Checkpoint::create(&path, spec).unwrap();
        let full = campaign
            .run_durable(&nl, &lib, &CancelToken::new(), Some(&ck))
            .unwrap();
        drop(ck);

        // Chop the file mid-record — a kill can land on any byte.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

        let resumed = campaign
            .resume_from(&nl, &lib, &CancelToken::new(), &path)
            .unwrap();
        assert_eq!(report_fingerprints(&full), report_fingerprints(&resumed));
        assert!(
            resumed.completeness.resumed < full.sites.len(),
            "truncation must have dropped some records"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancelled_run_reports_honest_truncation() {
        let nl = c432_like();
        let campaign = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let token = CancelToken::new();
        token.cancel(pulsar_obs::CancelReason::User);
        let report = campaign
            .run_durable(&nl, &TimingLibrary::generic(), &token, None)
            .unwrap();
        assert_eq!(report.completeness.done, 0);
        assert_eq!(report.completeness.truncated, Some("interrupted"));
        assert!(!report.completeness.is_complete());
        assert!(
            report.summary().contains("TRUNCATED"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn checkpoint_from_a_different_campaign_is_rejected() {
        let nl = c432_like();
        let a = Campaign {
            stride: 8,
            ..Campaign::default()
        };
        let b = Campaign {
            stride: 16,
            ..Campaign::default()
        };
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        let ck = Checkpoint::create(&path, a.checkpoint_spec(&nl).unwrap()).unwrap();
        let err = b
            .run_durable(
                &nl,
                &TimingLibrary::generic(),
                &CancelToken::new(),
                Some(&ck),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }
}
