//! The adaptive sequential-sampling engine behind
//! [`DfStudy::coverage_adaptive`](crate::DfStudy::coverage_adaptive) and
//! [`PulseStudy::coverage_adaptive`](crate::PulseStudy::coverage_adaptive).
//!
//! A fixed-budget coverage study spends the same N transient solves on
//! every grid point even where 32 samples already pin the coverage down.
//! The adaptive engine consumes the `stream_seed`-ordered sample stream
//! in rounds and runs two phases:
//!
//! 1. **Early stopping** — after each round, every still-running
//!    resistance column computes a binomial confidence interval
//!    ([`AdaptivePolicy`] picks Wilson or Clopper–Pearson) on each
//!    factor's coverage over the *ordered prefix* consumed so far, and
//!    stops once the loosest factor's half-width meets the requested
//!    precision. Workers compute a round's samples in parallel, but the
//!    decision loop consumes rounds in stream order, so the decided
//!    per-column sample count is bit-identical across thread counts.
//! 2. **Crossover refinement** — the budget saved by early stops is
//!    reallocated to the columns whose interval straddles the coverage
//!    threshold, neighbors a sign change of `coverage − threshold`, or
//!    (when a reference study is supplied) neighbors a sign change of
//!    the cross-method difference `C_pulse − C_del`. Refined columns
//!    extend their *own* sample stream — sample `i`'s instance depends
//!    only on `(seed, i)` — toward a twice-as-tight target, capped at
//!    [`AdaptivePolicy::refine_cap`]; the pass spends at most
//!    [`AdaptivePolicy::refine_fraction`] of the savings, so anything
//!    below `1.0` banks the rest as net speedup.
//!
//! Durability: phase-1 samples checkpoint at their stream index, phase-2
//! extensions at `max_samples + index`, so the record spaces never
//! collide and [`CheckpointSpec::samples`](crate::CheckpointSpec) is
//! `3 × max_samples`. A resumed run replays the same decision loop over
//! restored values and therefore re-derives the same per-column stopping
//! points — the resumed curves are bit-identical to an uninterrupted run.
//!
//! Subset purity is the load-bearing assumption: a sample's measured
//! value at resistance `r` must not depend on which *other* resistances
//! the row evaluates. The study closures guarantee it by drawing the
//! instance before any measurement and cold-starting every DC solve,
//! which is why the engine rejects [`McConfig::dc_warm_start`].

use crate::checkpoint::Checkpoint;
use crate::durable::Completeness;
use crate::error::CoreError;
use crate::resilience::{error_kind, is_retryable, FailureReport};
use crate::study::{CoverageCurve, McConfig};
use pulsar_mc::{
    sign_change_neighbors, AdaptivePolicy, BinomialInterval, PointAccuracy, RunHooks,
    SampleOutcome, SequentialTally,
};
use pulsar_obs::{Counter as ObsCounter, Event, Phase, Recorder};
use rand::rngs::StdRng;

/// The coverage grid an adaptive run evaluates: resistance columns ×
/// test-condition factors, with one detection threshold per factor.
pub(crate) struct AdaptiveGrid<'a> {
    /// Fault resistances (the columns), ohms.
    pub r_values: &'a [f64],
    /// Test-condition factors (`T/T₀` or `ω_th/ω_th⁰`).
    pub factors: &'a [f64],
    /// Absolute detection threshold per factor (`factor × T₀` or
    /// `factor × ω_th⁰`).
    pub thresholds: &'a [f64],
    /// `true`: a measured value *below* the threshold detects (pulse
    /// dampening); `false`: a value above detects (DF slack violation).
    pub detect_below: bool,
}

/// One grid point of an adaptive run: estimate, interval, and the
/// accuracy actually achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePoint {
    /// Test-condition factor of the point.
    pub factor: f64,
    /// Fault resistance of the point, ohms.
    pub resistance: f64,
    /// Coverage estimate at stop (resolved samples only).
    pub coverage: f64,
    /// Confidence interval on the coverage at stop.
    pub interval: BinomialInterval,
    /// Requested vs measured precision and the spend that bought it.
    pub accuracy: PointAccuracy,
    /// True when the refinement pass extended this point's column.
    pub refined: bool,
}

/// The result of an adaptive coverage run: the usual curves plus the
/// per-point measured accuracy and the evaluation accounting.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Coverage curves, one per factor — same shape as the fixed-budget
    /// [`DfStudy::coverage`](crate::DfStudy::coverage) output.
    pub curves: Vec<CoverageCurve>,
    /// Per-point records in factor-major grid order.
    pub points: Vec<AdaptivePoint>,
    /// The first-pass precision the run was asked for.
    pub precision: f64,
    /// The first-pass per-column sample budget.
    pub max_samples: usize,
    /// `(sample, column)` evaluations actually spent, both phases.
    pub evals: u64,
    /// Evaluations a fixed-budget run over the same grid would spend.
    pub fixed_budget_evals: u64,
    /// Evaluations spent by the refinement pass alone.
    pub refine_evals: u64,
    /// Failure accounting over every evaluated stream sample.
    pub failures: FailureReport,
}

impl AdaptiveReport {
    /// The manifest block recording this run's measured accuracy.
    pub fn to_manifest(&self) -> pulsar_obs::AdaptiveManifest {
        pulsar_obs::AdaptiveManifest {
            precision: self.precision,
            max_samples: self.max_samples as u64,
            evals: self.evals,
            fixed_budget_evals: self.fixed_budget_evals,
            points: self
                .points
                .iter()
                .map(|p| pulsar_obs::AdaptivePointRecord {
                    factor: p.factor,
                    resistance: p.resistance,
                    coverage: p.coverage,
                    requested_halfwidth: p.accuracy.requested_halfwidth,
                    achieved_halfwidth: p.accuracy.achieved_halfwidth,
                    samples_spent: p.accuracy.samples_spent,
                    stopped_early: p.accuracy.stopped_early,
                    refined: p.refined,
                })
                .collect(),
        }
    }
}

/// Mutable state threaded through the rounds of one adaptive run.
struct RunState {
    /// One tally per resistance column.
    tally: Vec<SequentialTally>,
    /// Stream samples evaluated per column (failed ones included).
    spent: Vec<u64>,
    /// Every evaluated stream sample, keyed by its checkpoint record
    /// index, for the failure report.
    outcomes: Vec<(usize, SampleOutcome<(), CoreError>)>,
    /// Total `(sample, column)` evaluations.
    evals: u64,
    /// Refinement-pass share of `evals`.
    refine_evals: u64,
    /// Per-sample detection scratch, reused across pushes.
    det: Vec<bool>,
}

/// Runs one round of stream samples `[lo, hi)` over the `active` columns
/// and folds the outcomes — in stream order — into the tallies. Phase 2
/// passes `offset = max_samples` so its checkpoint records and journal
/// indices never collide with phase 1's.
#[allow(clippy::too_many_arguments)]
fn run_round<F>(
    mc: &McConfig,
    grid: &AdaptiveGrid<'_>,
    label: &'static str,
    lo: usize,
    hi: usize,
    active: &[usize],
    offset: usize,
    checkpoint: Option<&Checkpoint<Vec<f64>>>,
    state: &mut RunState,
    eval: &F,
) -> Result<(), CoreError>
where
    F: Fn(usize, u32, &mut StdRng, &Recorder, &[f64]) -> Result<Vec<f64>, CoreError> + Sync,
{
    let driver = mc.driver();
    let plan = mc.fault_plan.clone().unwrap_or_default();
    let active_r: Vec<f64> = active.iter().map(|&c| grid.r_values[c]).collect();
    // Fork on the main thread so shard creation order is deterministic.
    let recs: Vec<Recorder> = (lo..hi).map(|_| mc.obs.fork()).collect();
    let prior = |i: usize| checkpoint.and_then(|c| c.prior().get(&(offset + i)).cloned());
    let on_done = |i: usize, o: &SampleOutcome<Vec<f64>, CoreError>| {
        if let Some(c) = checkpoint {
            c.record(offset + i, driver.stream_seed(i), o);
        }
    };
    let hooks = RunHooks {
        prior: Some(&prior),
        on_done: Some(&on_done),
        cancel: None,
        contain_panics: None,
    };
    let raw = driver.try_run_range_resumed_batched(
        lo,
        hi,
        0, // rounds are narrow; the lock-step batch engine never engages
        mc.resilience.max_attempts,
        is_retryable,
        hooks,
        |_: &[usize], _: &mut [StdRng]| Vec::new(),
        |i, attempt, rng| {
            let rec = &recs[i - lo];
            let _span = rec.span(Phase::McSample);
            // Inert unless a test installed a plan naming sample `i`.
            let _fault = plan.arm(i, attempt);
            eval(i, attempt, rng, rec, &active_r)
        },
    );

    let refine = offset > 0;
    let journal = mc.obs.is_enabled();
    for (j, slot) in raw.into_iter().enumerate() {
        let i = lo + j;
        let o = slot.expect("no cancel hook, so every sample resolves");
        if journal {
            let mut ev = Event::new("sample", offset + i);
            ev.label = Some(if refine {
                format!("{label}-refine")
            } else {
                label.to_owned()
            });
            ev.seed = Some(driver.stream_seed(i));
            match &o {
                SampleOutcome::Ok(_) => {
                    mc.obs.add(ObsCounter::SamplesOk, 1);
                }
                SampleOutcome::Recovered { attempts, .. } => {
                    ev.outcome = "recovered";
                    ev.attempts = *attempts;
                    mc.obs.add(ObsCounter::SamplesRecovered, 1);
                }
                SampleOutcome::Failed { error, attempts } => {
                    ev.outcome = "failed";
                    ev.attempts = *attempts;
                    ev.error_kind = Some(error_kind(error).to_owned());
                    mc.obs.add(ObsCounter::SamplesFailed, 1);
                }
            }
            ev.escalation_rung = ev.attempts.saturating_sub(1);
            mc.obs
                .add(ObsCounter::RetryAttempts, u64::from(ev.escalation_rung));
            ev.counters = recs[j].local_snapshot().nonzero_counters();
            mc.obs.event(ev);
        }
        state.evals += active.len() as u64;
        if refine {
            state.refine_evals += active.len() as u64;
        }
        if let Some(row) = o.value() {
            if row.len() != active.len() {
                return Err(CoreError::Checkpoint {
                    reason: format!(
                        "record {} holds {} values but {} columns were active — \
                         the checkpoint was written by a different sweep",
                        offset + i,
                        row.len(),
                        active.len()
                    ),
                });
            }
            for (k, &c) in active.iter().enumerate() {
                state.det.clear();
                for &th in grid.thresholds {
                    state.det.push(if grid.detect_below {
                        row[k] < th
                    } else {
                        th < row[k]
                    });
                }
                state.tally[c].push(&state.det);
            }
        }
        let stripped = match o {
            SampleOutcome::Ok(_) => SampleOutcome::Ok(()),
            SampleOutcome::Recovered { attempts, .. } => SampleOutcome::Recovered {
                value: (),
                attempts,
            },
            SampleOutcome::Failed { error, attempts } => SampleOutcome::Failed { error, attempts },
        };
        state.outcomes.push((offset + i, stripped));
    }
    for rec in &recs {
        rec.retire();
    }
    Ok(())
}

/// Which columns the refinement pass extends: any column whose interval
/// straddles the coverage threshold at some factor, any neighbor of a
/// sign change of `coverage − threshold` along the resistance axis, and
/// any neighbor of a sign change of `coverage − reference` when a
/// crossover reference study is supplied.
fn refine_mask(
    policy: &AdaptivePolicy,
    grid: &AdaptiveGrid<'_>,
    tally: &[SequentialTally],
    crossover: Option<&[CoverageCurve]>,
) -> Vec<bool> {
    let ncols = grid.r_values.len();
    let mut refine = vec![false; ncols];
    for (c, t) in tally.iter().enumerate() {
        for f in 0..grid.factors.len() {
            if t.interval(policy, f).straddles(policy.threshold) {
                refine[c] = true;
            }
        }
    }
    let mut mark_signs = |diffs: &[f64]| {
        for (c, m) in sign_change_neighbors(diffs).into_iter().enumerate() {
            if m {
                refine[c] = true;
            }
        }
    };
    let mut diffs = vec![0.0; ncols];
    for f in 0..grid.factors.len() {
        for (c, d) in diffs.iter_mut().enumerate() {
            *d = tally[c].coverage(f) - policy.threshold;
        }
        mark_signs(&diffs);
    }
    if let Some(reference) = crossover {
        for (f, curve) in reference.iter().enumerate().take(grid.factors.len()) {
            for (c, d) in diffs.iter_mut().enumerate() {
                *d = tally[c].coverage(f) - curve.coverage[c];
            }
            mark_signs(&diffs);
        }
    }
    refine
}

/// The generic adaptive coverage runner. `eval` measures one Monte Carlo
/// instance at the given *active* resistance subset and must be a pure
/// function of `(stream index, attempt, resistance)` — the same instance
/// evaluated under a different subset must produce bit-identical values
/// at the shared resistances.
pub(crate) fn run_adaptive<F>(
    mc: &McConfig,
    policy: &AdaptivePolicy,
    label: &'static str,
    grid: &AdaptiveGrid<'_>,
    crossover: Option<&[CoverageCurve]>,
    checkpoint: Option<&Checkpoint<Vec<f64>>>,
    eval: F,
) -> Result<AdaptiveReport, CoreError>
where
    F: Fn(usize, u32, &mut StdRng, &Recorder, &[f64]) -> Result<Vec<f64>, CoreError> + Sync,
{
    if mc.dc_warm_start {
        // Warm starting makes a measurement depend on the previous sweep
        // point, which breaks the subset-purity contract above.
        return Err(CoreError::Unsupported {
            what: "adaptive sampling with dc_warm_start",
        });
    }
    let ncols = grid.r_values.len();
    let nfac = grid.factors.len();
    assert_eq!(nfac, grid.thresholds.len(), "one threshold per factor");
    if let Some(reference) = crossover {
        if reference.iter().any(|c| c.coverage.len() != ncols) {
            return Err(CoreError::Unsupported {
                what: "crossover reference curves on a different resistance grid",
            });
        }
    }
    let max = policy.max_samples;
    if let Some(ck) = checkpoint {
        if ck.spec().samples != 3 * max {
            return Err(CoreError::Checkpoint {
                reason: format!(
                    "adaptive checkpoint must reserve 3 × max_samples record slots \
                     (expected {}, spec has {})",
                    3 * max,
                    ck.spec().samples
                ),
            });
        }
    }

    let mut state = RunState {
        tally: (0..ncols).map(|_| SequentialTally::new(nfac)).collect(),
        spent: vec![0; ncols],
        outcomes: Vec::new(),
        evals: 0,
        refine_evals: 0,
        det: Vec::with_capacity(nfac),
    };
    let mut stopped_early = vec![false; ncols];

    // Phase 1: early stopping over the shared stream prefix. All live
    // columns consume the same rounds, so a stop decision at `cursor`
    // means the column's prefix is exactly `cursor` samples long.
    let mut live: Vec<usize> = (0..ncols).collect();
    let mut cursor = 0usize;
    while !live.is_empty() && cursor < max {
        let len = policy.round_len(cursor, max);
        run_round(
            mc,
            grid,
            label,
            cursor,
            cursor + len,
            &live,
            0,
            checkpoint,
            &mut state,
            &eval,
        )?;
        for &c in &live {
            state.spent[c] += len as u64;
        }
        cursor += len;
        live.retain(|&c| {
            let t = &state.tally[c];
            if policy.met(t.worst_halfwidth(policy), t.trials() as usize) {
                stopped_early[c] = cursor < max;
                false
            } else {
                true
            }
        });
    }

    // Phase 2: reallocate the saved budget to the crossover columns.
    // Each refined column resumes its own stream where phase 1 stopped
    // it, so the extension is a pure continuation of the same prefix.
    let entry: Vec<usize> = state.spent.iter().map(|&s| s as usize).collect();
    let saved: u64 = state.spent.iter().map(|&s| max as u64 - s).sum();
    let refine = refine_mask(policy, grid, &state.tally, crossover);
    let refine_count = refine.iter().filter(|&&b| b).count() as u64;
    let share = policy
        .refine_budget(saved)
        .checked_div(refine_count)
        .unwrap_or(0) as usize;
    let mut refined = vec![false; ncols];
    if share > 0 {
        let cap: Vec<usize> = (0..ncols)
            .map(|c| {
                if refine[c] {
                    (entry[c] + share).min(policy.refine_cap())
                } else {
                    entry[c]
                }
            })
            .collect();
        let target = policy.refined_precision();
        let mut live: Vec<usize> = (0..ncols).filter(|&c| cap[c] > entry[c]).collect();
        for &c in &live {
            refined[c] = true;
        }
        let mut cursor = live.iter().map(|&c| entry[c]).min().unwrap_or(0);
        while !live.is_empty() {
            let active: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&c| entry[c] <= cursor)
                .collect();
            if active.is_empty() {
                cursor = live
                    .iter()
                    .map(|&c| entry[c])
                    .filter(|&e| e > cursor)
                    .min()
                    .expect("a live column either entered or has a future entry");
                continue;
            }
            // Round ends at the chunk boundary, the next column entry, or
            // the earliest active cap — whichever comes first — so the
            // active set is constant within every driver call.
            let mut hi = cursor + policy.chunk.max(1);
            for &c in &live {
                if entry[c] > cursor {
                    hi = hi.min(entry[c]);
                }
            }
            for &c in &active {
                hi = hi.min(cap[c]);
            }
            debug_assert!(hi > cursor, "refinement rounds must advance");
            run_round(
                mc, grid, label, cursor, hi, &active, max, checkpoint, &mut state, &eval,
            )?;
            for &c in &active {
                state.spent[c] += (hi - cursor) as u64;
            }
            cursor = hi;
            live.retain(|&c| {
                if entry[c] > cursor {
                    return true;
                }
                let t = &state.tally[c];
                let met = t.trials() as usize >= policy.min_samples
                    && t.worst_halfwidth(policy) <= target;
                if met || cursor >= cap[c] {
                    stopped_early[c] = met && cursor < cap[c];
                    false
                } else {
                    true
                }
            });
        }
    }

    let failures = FailureReport::from_indexed(
        state.outcomes.iter().map(|(i, o)| (*i, o)),
        state.outcomes.len(),
        mc.resilience.failure_budget,
    );
    if failures.exceeds_budget() {
        return Err(CoreError::FailureBudgetExceeded {
            report: Box::new(failures),
        });
    }
    if let Some(ck) = checkpoint {
        ck.ensure_healthy()?;
    }

    let fixed_budget_evals = ncols as u64 * max as u64;
    mc.obs.add(
        ObsCounter::AdaptiveSamplesSaved,
        fixed_budget_evals.saturating_sub(state.evals),
    );
    mc.obs
        .add(ObsCounter::AdaptiveRefineSamples, state.refine_evals);

    let unresolved = failures.unresolved_fraction();
    let curves: Vec<CoverageCurve> = grid
        .factors
        .iter()
        .enumerate()
        .map(|(f, &factor)| CoverageCurve {
            factor,
            resistance: grid.r_values.to_vec(),
            coverage: state.tally.iter().map(|t| t.coverage(f)).collect(),
            unresolved,
            completeness: Completeness::full(failures.samples),
        })
        .collect();
    let mut points = Vec::with_capacity(nfac * ncols);
    for (f, &factor) in grid.factors.iter().enumerate() {
        for (c, &resistance) in grid.r_values.iter().enumerate() {
            let interval = state.tally[c].interval(policy, f);
            let accuracy = PointAccuracy {
                requested_halfwidth: if refined[c] {
                    policy.refined_precision()
                } else {
                    policy.precision
                },
                achieved_halfwidth: interval.halfwidth(),
                samples_spent: state.spent[c],
                stopped_early: stopped_early[c],
            };
            if mc.obs.is_enabled() {
                let mut ev = Event::new("point", f * ncols + c);
                ev.label = Some(format!("{label} f={factor} r={resistance}"));
                if refined[c] {
                    ev.detail = Some("refined".to_owned());
                }
                ev.requested_halfwidth = Some(accuracy.requested_halfwidth);
                ev.achieved_halfwidth = Some(accuracy.achieved_halfwidth);
                ev.samples_spent = Some(accuracy.samples_spent);
                ev.stopped_early = Some(accuracy.stopped_early);
                mc.obs.event(ev);
            }
            points.push(AdaptivePoint {
                factor,
                resistance,
                coverage: state.tally[c].coverage(f),
                interval,
                accuracy,
                refined: refined[c],
            });
        }
    }

    Ok(AdaptiveReport {
        curves,
        points,
        precision: policy.precision,
        max_samples: max,
        evals: state.evals,
        fixed_budget_evals,
        refine_evals: state.refine_evals,
        failures,
    })
}
