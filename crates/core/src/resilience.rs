//! Resilient Monte Carlo runs: retry policy, per-sample outcome
//! accounting, and the failure budget.
//!
//! A coverage study is thousands of transient solves; one Newton
//! non-convergence must not throw the rest away. The machinery here turns
//! abort-on-first-error into a three-state resolution per sample
//! ([`SampleOutcome`]: `Ok` / `Recovered` / `Failed`), with:
//!
//! * a **retry ladder** — failed samples re-run under an escalated solver
//!   configuration (see `BuiltPath::set_robustness` in `pulsar-cells`),
//!   bounded by [`ResilienceConfig::max_attempts`] and bit-identical
//!   across thread counts because every attempt re-derives the sample's
//!   seeded RNG stream;
//! * a **failure budget** — the tolerated fraction of samples that may
//!   stay `Failed`; exceeding it aborts the study with
//!   [`CoreError::FailureBudgetExceeded`] carrying a [`FailureReport`],
//!   so partial results are never silently wrong.

use crate::error::CoreError;
use pulsar_mc::SampleOutcome;
use std::collections::BTreeMap;
use std::fmt;

/// How many failed samples a report keeps verbatim (worst first).
const MAX_WORST: usize = 8;

/// Retry and failure-budget policy for fault-isolated Monte Carlo runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Attempts per sample, the first one included (≥ 1; 1 = no retries).
    /// Retry `k` runs at escalation level `k − 1` of the solver ladder.
    pub max_attempts: u32,
    /// Tolerated fraction of samples that may end `Failed` after all
    /// retries. `0.0` (the default) means any unrecovered failure aborts
    /// the study — the legacy abort-on-error semantics, now with a full
    /// [`FailureReport`] instead of a bare first error.
    pub failure_budget: f64,
    /// Wall-clock budget for the whole run (durable entry points only).
    /// When it expires the run token trips with
    /// [`CancelReason::Deadline`](pulsar_obs::CancelReason): in-flight
    /// samples bail out at the next step-loop check, unstarted samples
    /// never run, and the partial result is reported with honest
    /// completeness instead of being thrown away. `None` (default) = no
    /// deadline.
    pub deadline: Option<std::time::Duration>,
    /// Wall-clock budget for a single sample *attempt* (durable entry
    /// points only). A stuck attempt is cancelled with
    /// [`CancelReason::Timeout`](pulsar_obs::CancelReason), which is
    /// retryable — the sample re-runs under the escalated solver ladder
    /// with a fresh budget before it is declared failed. `None` (default)
    /// = no per-sample watchdog.
    pub sample_timeout: Option<std::time::Duration>,
    /// Opt-in panic containment (durable entry points only): a panicking
    /// sample is caught and accounted as a [`CoreError::Panic`] failure
    /// against the failure budget. Off by default — a panic then unwinds
    /// the run (after sibling worker shards have been joined), preserving
    /// the legacy fail-fast behavior.
    pub contain_panics: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_attempts: 3,
            failure_budget: 0.0,
            deadline: None,
            sample_timeout: None,
            contain_panics: false,
        }
    }
}

impl ResilienceConfig {
    /// No retries, no tolerance: every sample must succeed first try.
    pub fn strict() -> Self {
        ResilienceConfig {
            max_attempts: 1,
            ..ResilienceConfig::default()
        }
    }

    /// `max_attempts` retries with a failure budget of `failure_budget`.
    pub fn tolerant(max_attempts: u32, failure_budget: f64) -> Self {
        ResilienceConfig {
            max_attempts,
            failure_budget,
            ..ResilienceConfig::default()
        }
    }
}

/// Whether an error is worth retrying under a tightened solver
/// configuration. Newton non-convergence and step-budget exhaustion are
/// plausibly numerical and retryable, as are a per-sample timeout (the
/// retry gets a fresh wall-clock budget under the escalated ladder) and a
/// contained panic (the hardened configuration may sidestep it);
/// everything else — singular matrix, bad parameters, methodology errors,
/// and run-level cancellation (interrupt/deadline, which no retry can
/// outlive) — is not.
pub fn is_retryable(e: &CoreError) -> bool {
    use pulsar_obs::CancelReason;
    matches!(
        e,
        CoreError::Analog(
            pulsar_analog::Error::NoConvergence { .. }
                | pulsar_analog::Error::StepBudgetExhausted { .. }
                | pulsar_analog::Error::Cancelled {
                    reason: CancelReason::Timeout,
                    ..
                }
        ) | CoreError::Panic { .. }
    )
}

/// True when the error is a *run-level* cancellation (operator interrupt
/// or deadline expiry) rather than a per-sample failure: the sample was
/// cut short by the run ending, so durable entry points report it as
/// not-done (completeness accounting) instead of failed (budget
/// accounting).
pub fn is_run_cancelled(e: &CoreError) -> bool {
    use pulsar_obs::CancelReason;
    matches!(
        e,
        CoreError::Analog(pulsar_analog::Error::Cancelled {
            reason: CancelReason::User | CancelReason::Deadline,
            ..
        })
    )
}

/// Stable label for an error's kind, used to aggregate failure counts.
pub fn error_kind(e: &CoreError) -> &'static str {
    match e {
        CoreError::Analog(a) => match a {
            pulsar_analog::Error::SingularMatrix { .. } => "singular-matrix",
            pulsar_analog::Error::NoConvergence { .. } => "non-convergence",
            pulsar_analog::Error::StepBudgetExhausted { .. } => "step-budget-exhausted",
            pulsar_analog::Error::InvalidParameter { .. } => "invalid-parameter",
            pulsar_analog::Error::UnknownNode { .. } => "unknown-node",
            pulsar_analog::Error::InvalidTranConfig { .. } => "invalid-tran-config",
            // "interrupted" / "deadline" / "sample-timeout".
            pulsar_analog::Error::Cancelled { reason, .. } => reason.label(),
            pulsar_analog::Error::Internal { .. } => "internal",
            _ => "analog-other",
        },
        CoreError::Logic(_) => "logic",
        CoreError::NoSensitizablePath { .. } => "no-sensitizable-path",
        CoreError::EmptyCalibration { .. } => "empty-calibration",
        CoreError::Unsupported { .. } => "unsupported",
        CoreError::FailureBudgetExceeded { .. } => "failure-budget-exceeded",
        CoreError::LintRejected { .. } => "lint-rejected",
        CoreError::Panic { .. } => "panic",
        CoreError::Checkpoint { .. } => "checkpoint",
        // `CoreError` is non_exhaustive: future variants default here.
        #[allow(unreachable_patterns)]
        _ => "other",
    }
}

/// Aggregate failure accounting of one fault-isolated Monte Carlo run.
///
/// Attached to [`CoreError::FailureBudgetExceeded`] when the run aborts,
/// and available from [`McRunReport::failures`] when it completes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureReport {
    /// Total samples in the run.
    pub samples: usize,
    /// Samples that resolved only after retries.
    pub recovered: usize,
    /// Samples that stayed failed after all permitted attempts.
    pub failed: usize,
    /// The budget the run was held to (fraction of `samples`).
    pub failure_budget: f64,
    /// Failure counts by error kind (see [`error_kind`]), most frequent
    /// first.
    pub by_kind: Vec<(&'static str, usize)>,
    /// The worst failed samples — most attempts spent first, capped at a
    /// handful: `(sample index, attempts, final error)`.
    pub worst: Vec<(usize, u32, CoreError)>,
    /// Retry histogram: `(attempts, samples that spent exactly that
    /// many)`, ascending in attempts, all samples counted.
    pub retry_histogram: Vec<(u32, usize)>,
}

impl FailureReport {
    /// Builds the accounting from index-aligned sample outcomes.
    pub fn from_outcomes<T>(outcomes: &[SampleOutcome<T, CoreError>], failure_budget: f64) -> Self {
        Self::from_indexed(outcomes.iter().enumerate(), outcomes.len(), failure_budget)
    }

    /// Builds the accounting from explicitly indexed outcomes — the
    /// durable-run path, where cancelled (not-done) samples are absent
    /// and `samples` counts only the ones that ran to a conclusion.
    pub fn from_indexed<'a, T: 'a>(
        outcomes: impl IntoIterator<Item = (usize, &'a SampleOutcome<T, CoreError>)>,
        samples: usize,
        failure_budget: f64,
    ) -> Self {
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut hist: BTreeMap<u32, usize> = BTreeMap::new();
        let mut failures: Vec<(usize, u32, CoreError)> = Vec::new();
        let mut recovered = 0usize;

        for (i, o) in outcomes {
            *hist.entry(o.attempts()).or_default() += 1;
            match o {
                SampleOutcome::Ok(_) => {}
                SampleOutcome::Recovered { .. } => recovered += 1,
                SampleOutcome::Failed { error, attempts } => {
                    *by_kind.entry(error_kind(error)).or_default() += 1;
                    failures.push((i, *attempts, error.clone()));
                }
            }
        }

        let failed = failures.len();
        // Worst offenders: most attempts burned, then lowest index.
        failures.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        failures.truncate(MAX_WORST);
        let mut by_kind: Vec<(&'static str, usize)> = by_kind.into_iter().collect();
        by_kind.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

        FailureReport {
            samples,
            recovered,
            failed,
            failure_budget,
            by_kind,
            worst: failures,
            retry_histogram: hist.into_iter().collect(),
        }
    }

    /// Fraction of samples that stayed failed (0.0 for an empty run).
    pub fn unresolved_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.failed as f64 / self.samples as f64
        }
    }

    /// Whether the failed count exceeds the budget. The budget is a
    /// fraction of the sample count; with a budget of `0.0` any failure
    /// exceeds it.
    pub fn exceeds_budget(&self) -> bool {
        self.failed as f64 > self.failure_budget * self.samples as f64 + 1e-12
    }

    /// True when every sample resolved on the first attempt.
    pub fn is_clean(&self) -> bool {
        self.failed == 0 && self.recovered == 0
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} samples unresolved, {} recovered (budget {:.2}%)",
            self.failed,
            self.samples,
            self.recovered,
            self.failure_budget * 100.0
        )?;
        if !self.by_kind.is_empty() {
            write!(f, "; failures:")?;
            for (kind, n) in &self.by_kind {
                write!(f, " {kind}×{n}")?;
            }
        }
        if self.retry_histogram.iter().any(|&(a, _)| a > 1) {
            write!(f, "; attempts:")?;
            for (attempts, n) in &self.retry_histogram {
                write!(f, " {attempts}×{n}")?;
            }
        }
        Ok(())
    }
}

/// The full result of a fault-isolated Monte Carlo run: per-sample
/// outcomes (index-aligned with the sample stream) plus the aggregate
/// [`FailureReport`].
#[derive(Debug, Clone)]
pub struct McRunReport<T> {
    /// Outcome of sample `i` at index `i`.
    pub outcomes: Vec<SampleOutcome<T, CoreError>>,
    /// Aggregate failure accounting.
    pub failures: FailureReport,
}

impl<T> McRunReport<T> {
    /// Values of the resolved samples, in sample order.
    pub fn resolved(&self) -> impl Iterator<Item = &T> + '_ {
        self.outcomes.iter().filter_map(|o| o.value())
    }

    /// Consumes the report, keeping only resolved values (sample order).
    pub fn into_resolved(self) -> Vec<T> {
        self.outcomes
            .into_iter()
            .filter_map(|o| o.into_value())
            .collect()
    }

    /// Fraction of samples that stayed failed.
    pub fn unresolved_fraction(&self) -> f64 {
        self.failures.unresolved_fraction()
    }

    /// Total samples in the run.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for a zero-sample run.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn failed(i: usize, attempts: u32, e: CoreError) -> SampleOutcome<f64, CoreError> {
        let _ = i;
        SampleOutcome::Failed { error: e, attempts }
    }

    fn nonconv() -> CoreError {
        CoreError::Analog(pulsar_analog::Error::NoConvergence {
            context: "transient",
            iterations: 60,
            time: 1e-9,
        })
    }

    #[test]
    fn retryability_is_by_kind() {
        assert!(is_retryable(&nonconv()));
        assert!(is_retryable(&CoreError::Analog(
            pulsar_analog::Error::StepBudgetExhausted {
                points: 10,
                time: 0.0
            }
        )));
        assert!(!is_retryable(&CoreError::Analog(
            pulsar_analog::Error::SingularMatrix { row: 0 }
        )));
        assert!(!is_retryable(&CoreError::Unsupported { what: "x" }));
    }

    #[test]
    fn report_aggregates_counts_and_histogram() {
        let outcomes: Vec<SampleOutcome<f64, CoreError>> = vec![
            SampleOutcome::Ok(1.0),
            SampleOutcome::Recovered {
                value: 2.0,
                attempts: 2,
            },
            failed(2, 3, nonconv()),
            SampleOutcome::Ok(3.0),
            failed(
                4,
                1,
                CoreError::Analog(pulsar_analog::Error::SingularMatrix { row: 7 }),
            ),
        ];
        let r = FailureReport::from_outcomes(&outcomes, 0.01);
        assert_eq!(r.samples, 5);
        assert_eq!(r.recovered, 1);
        assert_eq!(r.failed, 2);
        assert_eq!(
            r.by_kind,
            vec![("non-convergence", 1), ("singular-matrix", 1)]
        );
        assert_eq!(r.retry_histogram, vec![(1, 3), (2, 1), (3, 1)]);
        // Worst first: most attempts spent.
        assert_eq!(r.worst[0].0, 2);
        assert_eq!(r.worst[0].1, 3);
        assert!(r.exceeds_budget(), "2/5 is far above a 1% budget");
        assert!((r.unresolved_fraction() - 0.4).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("non-convergence×1"), "{text}");
    }

    #[test]
    fn budget_boundary_is_respected() {
        let mk = |failed_n: usize, total: usize, budget: f64| {
            let outcomes: Vec<SampleOutcome<f64, CoreError>> = (0..total)
                .map(|i| {
                    if i < failed_n {
                        failed(i, 1, nonconv())
                    } else {
                        SampleOutcome::Ok(0.0)
                    }
                })
                .collect();
            FailureReport::from_outcomes(&outcomes, budget)
        };
        assert!(!mk(0, 64, 0.0).exceeds_budget());
        assert!(mk(1, 64, 0.0).exceeds_budget());
        assert!(mk(3, 64, 0.01).exceeds_budget(), "3 > 0.64 allowed");
        assert!(!mk(3, 64, 0.05).exceeds_budget(), "3 <= 3.2 allowed");
        assert!(!mk(0, 0, 0.0).exceeds_budget(), "empty run is clean");
    }

    #[test]
    fn run_report_filters_resolved() {
        let report = McRunReport {
            outcomes: vec![
                SampleOutcome::Ok(1.0),
                failed(1, 2, nonconv()),
                SampleOutcome::Recovered {
                    value: 3.0,
                    attempts: 2,
                },
            ],
            failures: FailureReport::default(),
        };
        assert_eq!(
            report.resolved().copied().collect::<Vec<_>>(),
            vec![1.0, 3.0]
        );
        assert_eq!(report.len(), 3);
        assert_eq!(report.into_resolved(), vec![1.0, 3.0]);
    }
}
