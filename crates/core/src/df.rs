//! The delay-fault-testing baseline (paper §4).
//!
//! In DF testing with a reduced clock, a launch flip-flop `FF` feeds the
//! path and a capture flip-flop samples its output after the test period
//! `T`. A circuit instance `s` is *detected* (fails the test) when
//! `T < d_p^s(R) + τ_CQ^s + τ_DC^s`: the transition arrives too late to
//! meet the capture flop's setup window.

/// Launch/capture flip-flop timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FfTiming {
    /// Clock-to-Q delay of the launch flip-flop, seconds.
    pub tau_cq: f64,
    /// Setup time of the capture flip-flop, seconds.
    pub tau_dc: f64,
}

impl FfTiming {
    /// Nominal values used across the experiments (80 ps / 60 ps — a
    /// plausible deep-submicron flop).
    pub fn nominal() -> Self {
        FfTiming {
            tau_cq: 80e-12,
            tau_dc: 60e-12,
        }
    }

    /// Total flop overhead added to the path delay.
    pub fn overhead(&self) -> f64 {
        self.tau_cq + self.tau_dc
    }
}

impl Default for FfTiming {
    fn default() -> Self {
        FfTiming::nominal()
    }
}

impl From<pulsar_cells::DffTiming> for FfTiming {
    /// Adopts electrically characterized flop timing (see
    /// [`pulsar_cells::characterize_dff`]) so the DF baseline's constants
    /// come from the same technology as the paths under test.
    fn from(t: pulsar_cells::DffTiming) -> FfTiming {
        FfTiming {
            tau_cq: t.tau_cq,
            tau_dc: t.setup,
        }
    }
}

/// The logic-level detection criterion of the paper's §4: the instance
/// fails (i.e. the fault is detected) when the tested clock period
/// `t_test` is shorter than the faulty path delay plus flop overhead.
pub fn df_detects(t_test: f64, path_delay: f64, ff: FfTiming) -> bool {
    t_test < path_delay + ff.overhead()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn detection_boundary() {
        let ff = FfTiming {
            tau_cq: 100e-12,
            tau_dc: 50e-12,
        };
        let d = 1e-9;
        // Exactly meeting the window passes (not detected).
        assert!(!df_detects(1.15e-9, d, ff));
        // Any shortfall is a detection.
        assert!(df_detects(1.1499e-9, d, ff));
    }

    #[test]
    fn slower_paths_are_easier_to_detect() {
        let ff = FfTiming::nominal();
        let t = 1.0e-9;
        assert!(!df_detects(t, 0.5e-9, ff));
        assert!(df_detects(t, 0.95e-9, ff));
    }

    #[test]
    fn nominal_is_default() {
        assert_eq!(FfTiming::default(), FfTiming::nominal());
        assert!((FfTiming::nominal().overhead() - 140e-12).abs() < 1e-15);
    }

    #[test]
    fn characterized_flop_timing_lands_near_the_assumed_constants() {
        let dff = pulsar_cells::characterize_dff(&pulsar_cells::Tech::generic_180nm()).unwrap();
        let ff: FfTiming = dff.into();
        // The hand-set nominal constants must be the right order of
        // magnitude for the generic technology (within ~10x; the bare
        // 6-NAND flop measures a very small setup window).
        let nominal = FfTiming::nominal();
        assert!(
            ff.tau_cq > nominal.tau_cq / 10.0 && ff.tau_cq < nominal.tau_cq * 10.0,
            "tau_cq {:e}",
            ff.tau_cq
        );
        assert!(
            ff.tau_dc > nominal.tau_dc / 10.0 && ff.tau_dc < nominal.tau_dc * 10.0,
            "setup {:e}",
            ff.tau_dc
        );
    }
}
