//! The test-quality vs yield trade-off (paper §4).
//!
//! Both methods pick an operating point under uncertainty: lowering the
//! DF clock `T` or raising the sensing threshold `ω_th` widens the range
//! of detectable resistances but starts rejecting *fault-free* circuits
//! whose parameters drifted the wrong way. The paper calibrates
//! conservatively ("giving priority to yield") and notes that "different
//! strategies can be used to enhance test quality" — this module maps the
//! whole frontier so those strategies can be compared quantitatively.

use crate::error::CoreError;
use crate::study::{DfStudy, PulseStudy};
use pulsar_mc::Gaussian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One operating point on the quality/yield frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The calibration margin this point was computed at (clock margin
    /// for DF, sensor margin for the pulse test; 1.0 = no guard band).
    pub margin: f64,
    /// Fraction of *fault-free* Monte Carlo instances rejected once the
    /// method's own parameter fluctuates (yield loss).
    pub yield_loss: f64,
    /// Smallest sweep resistance at which fault coverage reaches the
    /// requested target, `None` if never reached inside the sweep.
    pub r_at_target: Option<f64>,
}

/// Instrument-side fluctuation draws, one per Monte Carlo instance,
/// deterministic in the study's seed (offset so they do not alias the
/// circuit-instance streams).
fn instrument_factors(seed: u64, n: usize, sigma: f64) -> Vec<f64> {
    // Salted so the instrument stream never aliases the circuit streams.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1235_7ADD_900D_5EED);
    let g = Gaussian::new(1.0, sigma);
    (0..n)
        .map(|_| g.sample_clamped(&mut rng, 0.5, 1.5))
        .collect()
}

impl DfStudy {
    /// Maps the DF-testing frontier: for each clock `margin` (the applied
    /// `T` is `worst_fault_free_need / margin`; larger margin = more
    /// aggressive clock), computes the yield loss under per-instance
    /// clock-distribution fluctuation and the smallest resistance whose
    /// coverage reaches `coverage_target`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; fails on an empty sweep.
    pub fn tradeoff(
        &self,
        margins: &[f64],
        r_values: &[f64],
        coverage_target: f64,
    ) -> Result<Vec<TradeoffPoint>, CoreError> {
        if r_values.is_empty() || margins.is_empty() {
            return Err(CoreError::EmptyCalibration {
                what: "tradeoff sweep",
            });
        }
        let needs = self.fault_free_needs()?;
        let worst = needs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let faulty = self.faulty_needs(r_values)?;
        // Per-instance clock factor: the actually-applied period is
        // factor × T.
        let clock = instrument_factors(self.mc.seed, needs.len(), self.mc.variation.sigma);

        Ok(margins
            .iter()
            .map(|&m| {
                let t = worst / m;
                let yield_loss = needs
                    .iter()
                    .zip(&clock)
                    .filter(|(need, f)| t * **f < **need)
                    .count() as f64
                    / needs.len() as f64;
                let r_at_target = (0..r_values.len())
                    .find(|&ri| {
                        let detected = faulty
                            .iter()
                            .zip(&clock)
                            .filter(|(row, f)| t * **f < row[ri])
                            .count() as f64
                            / faulty.len() as f64;
                        detected >= coverage_target
                    })
                    .map(|ri| r_values[ri]);
                TradeoffPoint {
                    margin: m,
                    yield_loss,
                    r_at_target,
                }
            })
            .collect())
    }
}

impl PulseStudy {
    /// Maps the pulse-test frontier: for each sensor `margin` the
    /// threshold is `margin × weakest_fault_free_width`, so — like the DF
    /// frontier — **larger margin = more aggressive test**. Margin 1.0
    /// puts the threshold right at the weakest fault-free instance; the
    /// paper's conservative calibration corresponds to
    /// `margin = 1 / sensor_margin ≈ 0.91`. Computes yield loss under
    /// per-instance sensor fluctuation and the smallest resistance whose
    /// coverage reaches `coverage_target`.
    ///
    /// # Errors
    ///
    /// Propagates simulation and calibration failures.
    pub fn tradeoff(
        &self,
        margins: &[f64],
        r_values: &[f64],
        coverage_target: f64,
    ) -> Result<Vec<TradeoffPoint>, CoreError> {
        if r_values.is_empty() || margins.is_empty() {
            return Err(CoreError::EmptyCalibration {
                what: "tradeoff sweep",
            });
        }
        let curve = self.nominal_curve()?;
        let w_in = curve.region3_start(self.region_tol, self.guard).ok_or(
            CoreError::EmptyCalibration {
                what: "transfer curve asymptotic region",
            },
        )?;
        let healthy = self.fault_free_wouts(w_in)?;
        let weakest = healthy.iter().copied().fold(f64::INFINITY, f64::min);
        let faulty = self.faulty_wouts(w_in, r_values)?;
        // Per-instance sensor threshold factor.
        let sensor = instrument_factors(self.mc.seed, healthy.len(), self.mc.variation.sigma);

        Ok(margins
            .iter()
            .map(|&m| {
                let th = weakest * m;
                let yield_loss = healthy
                    .iter()
                    .zip(&sensor)
                    .filter(|(w, f)| **w < th * **f)
                    .count() as f64
                    / healthy.len() as f64;
                let r_at_target = (0..r_values.len())
                    .find(|&ri| {
                        let detected = faulty
                            .iter()
                            .zip(&sensor)
                            .filter(|(row, f)| row[ri] < th * **f)
                            .count() as f64
                            / faulty.len() as f64;
                        detected >= coverage_target
                    })
                    .map(|ri| r_values[ri]);
                TradeoffPoint {
                    margin: m,
                    yield_loss,
                    r_at_target,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::engine::{DefectKind, PathUnderTest};
    use crate::study::McConfig;
    use pulsar_analog::Polarity;
    use pulsar_cells::{PathSpec, Tech};

    fn put() -> PathUnderTest {
        PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::ExternalRop,
            stage: 1,
            tech: Tech::generic_180nm(),
        }
    }

    #[test]
    fn df_frontier_is_monotone() {
        let study = DfStudy::new(put(), McConfig::paper(8, 31));
        let rs = [2e3, 8e3, 25e3, 80e3];
        let pts = study.tradeoff(&[0.85, 0.95, 1.05], &rs, 0.75).unwrap();
        assert_eq!(pts.len(), 3);
        // More aggressive clock (larger margin) ⇒ at least as much yield
        // loss and at most as large an r-at-target.
        for w in pts.windows(2) {
            assert!(w[1].yield_loss >= w[0].yield_loss - 1e-12);
            match (w[0].r_at_target, w[1].r_at_target) {
                (Some(a), Some(b)) => assert!(b <= a + 1e-9),
                (None, Some(_)) | (None, None) => {}
                (Some(_), None) => panic!("quality must not collapse as the clock tightens"),
            }
        }
    }

    #[test]
    fn pulse_frontier_is_monotone() {
        let study = PulseStudy::new(put(), McConfig::paper(8, 31), Polarity::PositiveGoing);
        let rs = [2e3, 8e3, 25e3, 80e3];
        let pts = study.tradeoff(&[0.9, 1.0, 1.1], &rs, 0.75).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].yield_loss >= w[0].yield_loss - 1e-12);
            match (w[0].r_at_target, w[1].r_at_target) {
                (Some(a), Some(b)) => assert!(b <= a + 1e-9),
                (None, Some(_)) | (None, None) => {}
                (Some(_), None) => panic!("quality must not collapse as the sensor sharpens"),
            }
        }
    }

    #[test]
    fn conservative_points_have_zero_yield_loss_and_aggressive_points_lose() {
        // A margin far on the safe side must reject no fault-free
        // instance; one far on the aggressive side must reject some.
        // (Deterministic for a fixed seed.)
        let df = DfStudy::new(put(), McConfig::paper(8, 31));
        let pts = df.tradeoff(&[0.6, 1.4], &[50e3], 0.5).unwrap();
        assert_eq!(pts[0].yield_loss, 0.0, "conservative DF point loses yield");
        assert!(
            pts[1].yield_loss > 0.0,
            "a 1.4x-aggressive clock must cost yield"
        );

        let pulse = PulseStudy::new(put(), McConfig::paper(8, 31), Polarity::PositiveGoing);
        let pts = pulse.tradeoff(&[0.6, 1.4], &[50e3], 0.5).unwrap();
        assert_eq!(
            pts[0].yield_loss, 0.0,
            "conservative pulse point loses yield"
        );
        assert!(pts[1].yield_loss > 0.0, "a 1.4x sensor must cost yield");
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        let df = DfStudy::new(put(), McConfig::paper(2, 1));
        assert!(df.tradeoff(&[], &[1e3], 0.5).is_err());
        assert!(df.tradeoff(&[0.9], &[], 0.5).is_err());
    }
}
