//! The Monte Carlo coverage studies of the paper's §4 (Figs. 6–9):
//! `C_del(T, R)` for reduced-clock DF testing and `C_pulse(ω_th, R)` for
//! the pulse-propagation method, over the same circuit instances.

use crate::adaptive::{run_adaptive, AdaptiveGrid, AdaptiveReport};
use crate::calib::{calibrate_pulse, calibrate_t0, DfCalibration, PulseCalibration};
use crate::checkpoint::{Checkpoint, CheckpointSpec, CheckpointValue};
use crate::df::FfTiming;
use crate::durable::{Completeness, DurableRun, Watchdog};
use crate::engine::{AnalogPath, PathInstance, PathUnderTest};
use crate::error::CoreError;
use crate::resilience::{
    error_kind, is_retryable, is_run_cancelled, FailureReport, McRunReport, ResilienceConfig,
};
use crate::transfer::TransferCurve;
use crate::variation::VariationModel;
use pulsar_analog::{BatchWorkspace, FaultPlan, Polarity, SymbolicCache};
use pulsar_cells::{pulse_width_only_batch, BuiltPath, Tech};
use pulsar_mc::{AdaptivePolicy, MonteCarlo, RunHooks, SampleOutcome};
use pulsar_obs::{CancelToken, Counter as ObsCounter, Event, Phase, Recorder};
use rand::rngs::StdRng;
use rand::RngExt;

/// A lock-guarded pool of [`BatchWorkspace`]s shared by the concurrent
/// batch groups of one run: each group checks a workspace out for the
/// duration of its lock-step solve and returns it afterwards, so the
/// SoA buffers and per-lane scratch are recycled across samples instead
/// of reallocated per group. A poisoned lock degrades to a fresh
/// workspace (correctness never depends on reuse).
#[derive(Default)]
struct WorkspacePool(std::sync::Mutex<Vec<BatchWorkspace>>);

impl WorkspacePool {
    fn check_out(&self) -> BatchWorkspace {
        self.0
            .lock()
            .ok()
            .and_then(|mut v| v.pop())
            .unwrap_or_default()
    }

    fn check_in(&self, bw: BatchWorkspace) {
        if let Ok(mut v) = self.0.lock() {
            v.push(bw);
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut BatchWorkspace) -> R) -> R {
        let mut bw = self.check_out();
        let out = f(&mut bw);
        self.check_in(bw);
        out
    }
}

/// Monte Carlo configuration shared by both studies.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of circuit instances.
    pub samples: usize,
    /// Master seed (same seed ⇒ same instances in calibration and
    /// coverage runs — the paper's methodology requires this).
    pub seed: u64,
    /// Process-variation model (the paper uses 10 % sigma).
    pub variation: VariationModel,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Retry and failure-budget policy for solver failures.
    pub resilience: ResilienceConfig,
    /// Test-only deterministic solver fault plan (`None` in production).
    pub fault_plan: Option<FaultPlan>,
    /// Warm-start each sample's DC solves from the previous resistance
    /// sweep point. Off by default: warm starting reproduces cold solves
    /// only within solver tolerances, so leave it off wherever
    /// bit-identical reproducibility matters more than speed.
    pub dc_warm_start: bool,
    /// Observability recorder for the run. Disabled by default — every
    /// instrumentation call is then a single branch and the run is
    /// bit-identical to an uninstrumented one. Install an enabled
    /// recorder to collect per-sample journal events, solver counters,
    /// and phase timings for the whole study.
    pub obs: Recorder,
    /// Batched device-evaluation width: groups of up to this many
    /// consecutive samples are solved lock-step through the SIMD-friendly
    /// [`pulsar_analog::BatchWorkspace`] engine. `0` (the default) or `1`
    /// disables batching. Batching is a pure optimization: first attempts
    /// that the batch engine resolves are bit-identical to scalar runs,
    /// and any lane it cannot hold (topology mismatch, planned fault,
    /// divergence, cancellation, sparse-path circuit) falls back to the
    /// scalar retry ladder, which replays the same seeded RNG stream.
    pub batch: usize,
    /// A pre-primed symbolic factorization adopted instead of running the
    /// study's own one-per-topology analysis. `None` (the default) primes
    /// as before; a long-running service that executes many studies over
    /// the same topology installs the cache primed by an earlier run so
    /// later jobs skip even that single analysis. Safe by construction:
    /// the handle carries the structural fingerprint of its circuit, and
    /// a mismatched adoption falls back to a fresh analysis
    /// ([`pulsar_analog::SymbolicCache`]). Symbolic analysis is
    /// value-independent, so adopting a cache never changes results.
    pub symbolic: Option<SymbolicCache>,
}

impl McConfig {
    /// `samples` instances at the paper's 10 % sigma.
    pub fn paper(samples: usize, seed: u64) -> Self {
        McConfig {
            samples,
            seed,
            variation: VariationModel::paper(),
            threads: None,
            resilience: ResilienceConfig::default(),
            fault_plan: None,
            dc_warm_start: false,
            obs: Recorder::disabled(),
            batch: 0,
            symbolic: None,
        }
    }

    pub(crate) fn driver(&self) -> MonteCarlo {
        let mc = MonteCarlo::new(self.samples, self.seed);
        match self.threads {
            Some(t) => mc.with_threads(t),
            None => mc,
        }
    }

    /// Runs `f` over every sample with per-sample fault isolation: a
    /// failed sample is retried up to [`ResilienceConfig::max_attempts`]
    /// times (each attempt replays the *same* seeded RNG stream, so the
    /// circuit instance is identical — only the solver configuration
    /// escalates, which `f` applies from its `attempt` argument), and the
    /// run completes with per-sample outcomes instead of aborting on the
    /// first error. Bit-identical across thread counts.
    ///
    /// # Errors
    ///
    /// [`CoreError::FailureBudgetExceeded`] when the fraction of samples
    /// still failed after all retries exceeds
    /// [`ResilienceConfig::failure_budget`].
    pub fn try_run_samples<T, F>(&self, f: F) -> Result<McRunReport<T>, CoreError>
    where
        T: Send,
        F: Fn(usize, u32, &mut StdRng) -> Result<T, CoreError> + Sync,
    {
        self.try_run_samples_with("mc", move |i, attempt, rng, _rec| f(i, attempt, rng))
    }

    /// Like [`McConfig::try_run_samples`], additionally handing each
    /// sample a private [`Recorder`] forked from [`McConfig::obs`], so
    /// solver counters attribute to individual samples without cross-shard
    /// contention. After the run, one `"sample"` journal event per sample
    /// (labelled `label`, in index order) records the outcome, attempts,
    /// escalation rung, RNG stream seed, and that sample's non-zero
    /// counters — the raw material for post-hoc diagnosis of retries and
    /// budget spend. With a disabled recorder all of this is inert.
    ///
    /// # Errors
    ///
    /// Same contract as [`McConfig::try_run_samples`].
    pub fn try_run_samples_with<T, F>(
        &self,
        label: &'static str,
        f: F,
    ) -> Result<McRunReport<T>, CoreError>
    where
        T: Send,
        F: Fn(usize, u32, &mut StdRng, &Recorder) -> Result<T, CoreError> + Sync,
    {
        // Batch width 0: the driver never calls the batch closure.
        self.run_plain(
            label,
            0,
            |_: &[usize], _: &mut [StdRng], _: &[Recorder]| Vec::new(),
            f,
        )
    }

    /// Like [`McConfig::try_run_samples_with`], with a batched fast path:
    /// groups of up to [`McConfig::batch`] consecutive samples are first
    /// offered to `f_batch`, which may resolve any subset of them
    /// (typically via the [`pulsar_analog::BatchWorkspace`] engine) and
    /// must return `None` for the rest. Unresolved samples — and every
    /// sample needing a retry — run through the scalar closure `f`
    /// exactly as in the unbatched entry point, replaying the same seeded
    /// RNG stream, so results are bit-identical whether or not the batch
    /// engine engaged.
    ///
    /// `f_batch` receives the group's sample indices, one RNG per sample
    /// (pre-seeded to the sample's stream), and the per-sample recorders;
    /// it runs with one open `McSample` span per lane, so span wall time
    /// honestly overlaps for concurrently solved lanes. It is always
    /// attempt 1 and must not arm fault plans — callers pre-eject samples
    /// with a planned fault instead (the injector is a thread-local,
    /// single-sample slot).
    ///
    /// # Errors
    ///
    /// Same contract as [`McConfig::try_run_samples`].
    pub fn try_run_samples_batched<T, F, B>(
        &self,
        label: &'static str,
        f_batch: B,
        f: F,
    ) -> Result<McRunReport<T>, CoreError>
    where
        T: Send,
        F: Fn(usize, u32, &mut StdRng, &Recorder) -> Result<T, CoreError> + Sync,
        B: Fn(&[usize], &mut [StdRng], &[Recorder]) -> Vec<Option<T>> + Sync,
    {
        self.run_plain(label, self.batch, f_batch, f)
    }

    fn run_plain<T, F, B>(
        &self,
        label: &'static str,
        batch: usize,
        f_batch: B,
        f: F,
    ) -> Result<McRunReport<T>, CoreError>
    where
        T: Send,
        F: Fn(usize, u32, &mut StdRng, &Recorder) -> Result<T, CoreError> + Sync,
        B: Fn(&[usize], &mut [StdRng], &[Recorder]) -> Vec<Option<T>> + Sync,
    {
        let plan = self.fault_plan.clone().unwrap_or_default();
        let driver = self.driver();
        // Fork on the main thread so shard creation order is deterministic
        // regardless of worker scheduling.
        let sample_recs: Vec<Recorder> = (0..self.samples).map(|_| self.obs.fork()).collect();
        let raw = driver.try_run_resumed_batched(
            batch,
            self.resilience.max_attempts,
            is_retryable,
            RunHooks::default(),
            |idx, rngs| {
                // One span per lane: batched samples solve lock-step, so
                // their McSample wall times legitimately overlap.
                let _spans: Vec<_> = idx
                    .iter()
                    .map(|&i| sample_recs[i].span(Phase::McSample))
                    .collect();
                f_batch(idx, rngs, &sample_recs)
            },
            |i, attempt, rng| {
                let rec = &sample_recs[i];
                let _span = rec.span(Phase::McSample);
                // Inert unless a test installed a plan naming sample `i`.
                let _fault = plan.arm(i, attempt);
                f(i, attempt, rng, rec)
            },
        );
        // Without cancel or prior hooks every sample resolves to an
        // outcome; `None` slots cannot occur here.
        let outcomes: Vec<SampleOutcome<T, CoreError>> = raw
            .into_iter()
            .map(|o| o.expect("no cancel hook, so every sample resolves"))
            .collect();
        if self.obs.is_enabled() {
            for (i, (o, rec)) in outcomes.iter().zip(&sample_recs).enumerate() {
                let mut ev = Event::new("sample", i);
                ev.label = Some(label.to_owned());
                ev.seed = Some(driver.stream_seed(i));
                match o {
                    SampleOutcome::Ok(_) => {
                        self.obs.add(ObsCounter::SamplesOk, 1);
                    }
                    SampleOutcome::Recovered { attempts, .. } => {
                        ev.outcome = "recovered";
                        ev.attempts = *attempts;
                        self.obs.add(ObsCounter::SamplesRecovered, 1);
                    }
                    SampleOutcome::Failed { error, attempts } => {
                        ev.outcome = "failed";
                        ev.attempts = *attempts;
                        ev.error_kind = Some(error_kind(error).to_owned());
                        self.obs.add(ObsCounter::SamplesFailed, 1);
                    }
                }
                ev.escalation_rung = ev.attempts.saturating_sub(1);
                self.obs
                    .add(ObsCounter::RetryAttempts, u64::from(ev.escalation_rung));
                ev.counters = rec.local_snapshot().nonzero_counters();
                self.obs.event(ev);
            }
        }
        // Fold per-sample shards into the registry accumulator so a long
        // campaign of many runs does not grow the live set without bound.
        for rec in &sample_recs {
            rec.retire();
        }
        let failures = FailureReport::from_outcomes(&outcomes, self.resilience.failure_budget);
        if failures.exceeds_budget() {
            return Err(CoreError::FailureBudgetExceeded {
                report: Box::new(failures),
            });
        }
        Ok(McRunReport { outcomes, failures })
    }

    /// Durable variant of [`McConfig::try_run_samples_with`]: cooperative
    /// cancellation through `run_token`, the wall-clock budgets from
    /// [`ResilienceConfig::deadline`] and
    /// [`ResilienceConfig::sample_timeout`], opt-in panic containment
    /// ([`ResilienceConfig::contain_panics`]), and crash-consistent
    /// checkpoint/resume. The sample closure additionally receives the
    /// attempt's [`CancelToken`] — install it in the solver workspace so
    /// the transient step loop observes cancellation.
    ///
    /// Determinism contract: a resumed run restores completed samples
    /// from the checkpoint and recomputes the rest from the *same* seeded
    /// RNG streams, so the final report is bit-identical to an
    /// uninterrupted run. Samples cut short by *run* cancellation
    /// (interrupt or deadline) come back as `None` slots: they are not
    /// failures, never count against the failure budget or a coverage
    /// denominator, and are reported through [`Completeness`] instead.
    /// Per-sample timeouts, by contrast, cancel only that attempt's child
    /// token — the sample retries under the escalation ladder and, if it
    /// stays stuck, counts as an ordinary `"sample-timeout"` failure.
    ///
    /// # Errors
    ///
    /// [`CoreError::FailureBudgetExceeded`] as for
    /// [`McConfig::try_run_samples`], computed over the *done* samples
    /// only; [`CoreError::Checkpoint`] when a checkpoint write failed
    /// mid-run (the run aborts rather than report durability it does not
    /// have).
    pub fn try_run_samples_durable<T, F>(
        &self,
        label: &'static str,
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<T>>,
        f: F,
    ) -> Result<DurableRun<T>, CoreError>
    where
        T: Send + Sync + Clone + CheckpointValue,
        F: Fn(usize, u32, &mut StdRng, &Recorder, &CancelToken) -> Result<T, CoreError> + Sync,
    {
        // Batch width 0: the driver never calls the batch closure.
        self.run_durable(
            label,
            run_token,
            checkpoint,
            0,
            |_: &[usize], _: &mut [StdRng], _: &[Recorder], _: &[CancelToken]| Vec::new(),
            f,
        )
    }

    /// Durable variant of [`McConfig::try_run_samples_batched`]: the
    /// batched fast path of the latter with the cancellation, deadline,
    /// checkpoint/resume, and panic-containment machinery of
    /// [`McConfig::try_run_samples_durable`]. `f_batch` additionally
    /// receives one attempt [`CancelToken`] per lane (already registered
    /// with the run's watchdog) — install each in its lane's solver
    /// workspace so run cancellation ejects in-flight lanes mid-solve;
    /// ejected lanes fall back to the scalar ladder, observe the tripped
    /// run token there, and resolve to `None` slots accounted through
    /// [`Completeness`], never through the failure budget. Samples
    /// restored from a checkpoint never enter a batch.
    ///
    /// # Errors
    ///
    /// Same contract as [`McConfig::try_run_samples_durable`].
    pub fn try_run_samples_durable_batched<T, F, B>(
        &self,
        label: &'static str,
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<T>>,
        f_batch: B,
        f: F,
    ) -> Result<DurableRun<T>, CoreError>
    where
        T: Send + Sync + Clone + CheckpointValue,
        F: Fn(usize, u32, &mut StdRng, &Recorder, &CancelToken) -> Result<T, CoreError> + Sync,
        B: Fn(&[usize], &mut [StdRng], &[Recorder], &[CancelToken]) -> Vec<Option<T>> + Sync,
    {
        self.run_durable(label, run_token, checkpoint, self.batch, f_batch, f)
    }

    fn run_durable<T, F, B>(
        &self,
        label: &'static str,
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<T>>,
        batch: usize,
        f_batch: B,
        f: F,
    ) -> Result<DurableRun<T>, CoreError>
    where
        T: Send + Sync + Clone + CheckpointValue,
        F: Fn(usize, u32, &mut StdRng, &Recorder, &CancelToken) -> Result<T, CoreError> + Sync,
        B: Fn(&[usize], &mut [StdRng], &[Recorder], &[CancelToken]) -> Vec<Option<T>> + Sync,
    {
        let plan = self.fault_plan.clone().unwrap_or_default();
        let driver = self.driver();
        let watchdog = Watchdog::new(
            run_token.clone(),
            self.resilience.deadline,
            self.resilience.sample_timeout,
        );
        // Fork on the main thread so shard creation order is deterministic
        // regardless of worker scheduling.
        let sample_recs: Vec<Recorder> = (0..self.samples).map(|_| self.obs.fork()).collect();

        let prior = |i: usize| checkpoint.and_then(|c| c.prior().get(&i).cloned());
        let on_done = |i: usize, o: &SampleOutcome<T, CoreError>| {
            if let Some(c) = checkpoint {
                c.record(i, driver.stream_seed(i), o);
            }
        };
        let contain = |message: String| CoreError::Panic { message };
        let hooks = RunHooks {
            prior: Some(&prior),
            on_done: Some(&on_done),
            cancel: Some(run_token),
            contain_panics: if self.resilience.contain_panics {
                Some(&contain)
            } else {
                None
            },
        };
        let raw = driver.try_run_resumed_batched(
            batch,
            self.resilience.max_attempts,
            is_retryable,
            hooks,
            |idx, rngs| {
                // One span and one watchdog-registered attempt token per
                // lane: batched samples solve lock-step, so their McSample
                // wall times legitimately overlap, and a deadline or
                // per-sample timeout can eject individual lanes mid-solve.
                let _spans: Vec<_> = idx
                    .iter()
                    .map(|&i| sample_recs[i].span(Phase::McSample))
                    .collect();
                let mut tokens = Vec::with_capacity(idx.len());
                let mut guards = Vec::with_capacity(idx.len());
                for &i in idx {
                    let (token, guard) = watchdog.attempt(i);
                    tokens.push(token);
                    guards.push(guard);
                }
                f_batch(idx, rngs, &sample_recs, &tokens)
            },
            |i, attempt, rng| {
                let rec = &sample_recs[i];
                let _span = rec.span(Phase::McSample);
                // Inert unless a test installed a plan naming sample `i`.
                let _fault = plan.arm(i, attempt);
                let (token, _guard) = watchdog.attempt(i);
                f(i, attempt, rng, rec, &token)
            },
        );
        // Stop the watchdog before accounting so a deadline cannot fire
        // between the done count and the truncation label.
        drop(watchdog);

        let resumed = checkpoint.map_or(0, |c| {
            (0..raw.len())
                .filter(|i| raw[*i].is_some() && c.prior().contains_key(i))
                .count()
        });

        // Journal every sample that produced an outcome, then strip the
        // run-cancelled ones to `None`: they were interrupted, not failed.
        let journal = self.obs.is_enabled();
        let mut outcomes: Vec<Option<SampleOutcome<T, CoreError>>> = Vec::with_capacity(raw.len());
        let mut done = 0usize;
        for (i, slot) in raw.into_iter().enumerate() {
            let cancelled = matches!(
                &slot,
                Some(SampleOutcome::Failed { error, .. }) if is_run_cancelled(error)
            );
            if journal {
                if let Some(o) = &slot {
                    let mut ev = Event::new("sample", i);
                    ev.label = Some(label.to_owned());
                    ev.seed = Some(driver.stream_seed(i));
                    match o {
                        SampleOutcome::Ok(_) => {
                            self.obs.add(ObsCounter::SamplesOk, 1);
                        }
                        SampleOutcome::Recovered { attempts, .. } => {
                            ev.outcome = "recovered";
                            ev.attempts = *attempts;
                            self.obs.add(ObsCounter::SamplesRecovered, 1);
                        }
                        SampleOutcome::Failed { error, attempts } => {
                            ev.outcome = if cancelled { "cancelled" } else { "failed" };
                            ev.attempts = *attempts;
                            ev.error_kind = Some(error_kind(error).to_owned());
                            if let CoreError::Panic { message } = error {
                                ev.detail = Some(message.clone());
                            }
                            if !cancelled {
                                self.obs.add(ObsCounter::SamplesFailed, 1);
                            }
                        }
                    }
                    ev.escalation_rung = ev.attempts.saturating_sub(1);
                    self.obs
                        .add(ObsCounter::RetryAttempts, u64::from(ev.escalation_rung));
                    ev.counters = sample_recs[i].local_snapshot().nonzero_counters();
                    self.obs.event(ev);
                }
            }
            let slot = if cancelled { None } else { slot };
            if slot.is_some() {
                done += 1;
            }
            outcomes.push(slot);
        }
        for rec in &sample_recs {
            rec.retire();
        }

        let failures = FailureReport::from_indexed(
            outcomes
                .iter()
                .enumerate()
                .filter_map(|(i, o)| o.as_ref().map(|o| (i, o))),
            done,
            self.resilience.failure_budget,
        );
        if failures.exceeds_budget() {
            return Err(CoreError::FailureBudgetExceeded {
                report: Box::new(failures),
            });
        }
        if let Some(c) = checkpoint {
            c.ensure_healthy()?;
        }
        let completeness = Completeness {
            requested: self.samples,
            done,
            resumed,
            // A cancellation that landed after the last sample resolved
            // (or when everything was restored from the checkpoint)
            // truncated nothing: the run is complete, and saying
            // otherwise would make callers discard a full result.
            truncated: (done < self.samples)
                .then(|| run_token.cancelled().map(|r| r.label()))
                .flatten(),
        };
        Ok(DurableRun {
            outcomes,
            failures,
            completeness,
        })
    }
}

/// Static preflight shared by the studies: a configuration with
/// error-severity lint findings (fault stage out of range, non-physical
/// or empty resistance sweep) is rejected *before* any sample builds, so
/// the retry machinery and failure budget are never engaged on an error
/// no retry can fix.
fn lint_preflight(put: &PathUnderTest, r_values: Option<&[f64]>) -> Result<(), CoreError> {
    let report = put.lint(r_values);
    if report.error_count() > 0 {
        return Err(CoreError::LintRejected {
            report: Box::new(report),
        });
    }
    Ok(())
}

/// Applies per-sample solver configuration: the opt-in DC warm start, and
/// on retries the escalation ladder. The jitter scale is drawn from the
/// sample's RNG *after* all instance draws, and only on retries — first
/// attempts consume exactly the legacy stream, so their results stay
/// bit-identical to non-resilient runs.
fn prepare_for_attempt<P: PathInstance>(
    p: &mut P,
    attempt: u32,
    rng: &mut StdRng,
    dc_warm_start: bool,
) {
    if dc_warm_start {
        p.set_dc_warm_start(true);
    }
    if attempt > 1 {
        let step_scale = 0.7 + 0.25 * rng.random::<f64>();
        p.harden(attempt - 1, step_scale);
    }
}

/// Builds one nominal instance with `build` and runs the sparse symbolic
/// analysis (fill-reducing ordering + elimination structure) on it once.
/// Every per-sample instance of the same topology then adopts the result
/// instead of re-analyzing — process variation and sweep resistances
/// change element *values*, never the stamp pattern, so one analysis per
/// Monte Carlo run suffices. `None` when the sparse path is not engaged
/// for this circuit (below the crossover dimension or forced dense), in
/// which case adoption is skipped and samples run exactly as before.
fn prime_symbolic_with<B: FnOnce() -> AnalogPath>(build: B) -> Option<SymbolicCache> {
    let mut nominal = build();
    nominal.built_path().prime_symbolic()
}

/// Returns the pre-primed cache installed on `mc` when one is present,
/// otherwise primes a fresh one from `build`. A service running many
/// studies over one topology installs the cache once via
/// [`McConfig::symbolic`] and every subsequent run adopts it here; a
/// fingerprint mismatch inside the solver falls back to fresh analysis,
/// so a stale handle degrades to the un-cached behavior rather than a
/// wrong answer.
fn prime_or_adopt<B: FnOnce() -> AnalogPath>(mc: &McConfig, build: B) -> Option<SymbolicCache> {
    match &mc.symbolic {
        Some(c) => Some(c.clone()),
        None => prime_symbolic_with(build),
    }
}

/// Installs a primed symbolic factorization on a freshly built sample
/// instance (no-op when the study's circuit runs dense).
fn adopt_symbolic(p: &mut AnalogPath, cache: &Option<SymbolicCache>) {
    if let Some(c) = cache {
        p.built_path().adopt_symbolic(c);
    }
}

/// One coverage-vs-resistance series, at one setting of the method's
/// free parameter (`T/T₀` for DF, `ω_th/ω_th⁰` for the pulse test).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    /// The parameter factor this series was computed at.
    pub factor: f64,
    /// Defect resistances, ohms.
    pub resistance: Vec<f64>,
    /// Fault coverage (fraction of *resolved* MC instances detected) per
    /// resistance.
    pub coverage: Vec<f64>,
    /// Fraction of MC instances that never resolved (solver failure after
    /// all retries) and are excluded from the coverage denominator. `0.0`
    /// for a clean run; compare against the configured failure budget
    /// when judging how trustworthy the curve is.
    pub unresolved: f64,
    /// How much of the underlying Monte Carlo run actually happened.
    /// Always complete for the plain entry points; a durable run
    /// truncated by a deadline or interrupt reports the honest partial
    /// denominator here instead of silently pretending it covered
    /// everything.
    pub completeness: Completeness,
}

impl CoverageCurve {
    /// The canonical one-line text rendering of this curve (no trailing
    /// newline): `factor F.FF: coverage C.CCC@R.Re.. ...`. Every consumer
    /// — the one-shot CLI report, the serve daemon's result payloads, and
    /// the bench bit-identity asserts — renders through here, so "same
    /// digest ⇒ byte-identical result text" holds by construction.
    pub fn render_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "factor {:.2}: coverage", self.factor);
        for (r, cov) in self.resistance.iter().zip(&self.coverage) {
            let _ = write!(out, " {cov:.3}@{r:.1e}");
        }
        out
    }

    /// [`CoverageCurve::render_line`] over a whole set, one line per
    /// curve, each newline-terminated.
    pub fn render_set(curves: &[CoverageCurve]) -> String {
        let mut out = String::new();
        for c in curves {
            out.push_str(&c.render_line());
            out.push('\n');
        }
        out
    }
}

/// The reduced-clock DF-testing study (paper Figs. 6 and 8).
///
/// Runs scalar regardless of [`McConfig::batch`]: its per-sample work is
/// a worst-transition *delay* measurement, and the batched device-eval
/// engine currently accelerates lock-step pulse-*width* queries only
/// (see [`PulseStudy`]).
#[derive(Debug, Clone)]
pub struct DfStudy {
    /// The path + defect under study.
    pub put: PathUnderTest,
    /// Monte Carlo setup.
    pub mc: McConfig,
    /// Nominal flop timing.
    pub ff: FfTiming,
    /// Clock-uncertainty margin used for calibration (0.9 = the paper's
    /// "no false positive even if T is decreased by 10 %").
    pub clock_margin: f64,
}

impl DfStudy {
    /// A study with the paper's margins.
    pub fn new(put: PathUnderTest, mc: McConfig) -> Self {
        DfStudy {
            put,
            mc,
            ff: FfTiming::nominal(),
            clock_margin: 0.9,
        }
    }

    /// Primes the symbolic factorization of the *faulty* topology (the
    /// coverage phase, where all the solves go) at defect resistance `r`
    /// and returns the shareable handle, or `None` when the sparse engine
    /// is not engaged for this circuit. A service installs the result on
    /// [`McConfig::symbolic`] of later same-topology jobs so they skip
    /// even the one-per-run analysis.
    pub fn prime_symbolic(&self, r: f64) -> Option<SymbolicCache> {
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        prime_symbolic_with(|| self.put.instantiate(&nominal_techs, r))
    }

    /// Per-sample draws, in a fixed order so calibration and coverage
    /// runs see identical instances.
    fn draw(&self, rng: &mut StdRng) -> (Vec<Tech>, FfTiming) {
        let techs = self
            .mc
            .variation
            .sample_techs(&self.put.tech, self.put.spec.len(), rng);
        let ff = self.mc.variation.sample_ff(self.ff, rng);
        (techs, ff)
    }

    /// Fault-free slack needs with per-sample fault isolation: the run
    /// completes even when individual samples fail, and the report carries
    /// both the resolved needs and the failure accounting.
    ///
    /// # Errors
    ///
    /// [`CoreError::LintRejected`] when the configuration fails the static
    /// preflight; [`CoreError::FailureBudgetExceeded`] when too many
    /// samples stay failed after retries.
    pub fn try_fault_free_needs(&self) -> Result<McRunReport<f64>, CoreError> {
        lint_preflight(&self.put, None)?;
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || self.put.instantiate_fault_free(&nominal_techs));
        self.mc
            .try_run_samples_with("df-fault-free", |_, attempt, rng, rec| {
                let (techs, ff) = self.draw(rng);
                let mut p = self.put.instantiate_fault_free(&techs);
                p.set_recorder(rec.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                Ok(p.worst_delay()? + ff.overhead())
            })
    }

    /// Fault-free slack need (worst path delay + flop overhead) of the
    /// *resolved* Monte Carlo instances, in sample order.
    ///
    /// # Errors
    ///
    /// Propagates electrical-simulation failures (via the failure
    /// budget — the default budget of zero aborts on any failure).
    pub fn fault_free_needs(&self) -> Result<Vec<f64>, CoreError> {
        Ok(self.try_fault_free_needs()?.into_resolved())
    }

    /// Calibrates `T₀` per the paper: no fault-free instance fails even at
    /// `clock_margin × T₀`. Calibration uses the resolved samples only.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; fails on an empty sample.
    pub fn calibrate(&self) -> Result<DfCalibration, CoreError> {
        calibrate_t0(&self.fault_free_needs()?, self.clock_margin)
    }

    /// Faulty slack needs with per-sample fault isolation:
    /// `outcomes[sample]` resolves to the per-resistance row.
    ///
    /// # Errors
    ///
    /// [`CoreError::LintRejected`] when the configuration fails the static
    /// preflight (out-of-range stage, non-physical or empty sweep);
    /// [`CoreError::FailureBudgetExceeded`] when too many samples stay
    /// failed after retries.
    pub fn try_faulty_needs(&self, r_values: &[f64]) -> Result<McRunReport<Vec<f64>>, CoreError> {
        lint_preflight(&self.put, Some(r_values))?;
        let r_values = r_values.to_vec();
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || {
            self.put.instantiate(&nominal_techs, r_values[0])
        });
        self.mc
            .try_run_samples_with("df-faulty", move |_, attempt, rng, rec| {
                let (techs, ff) = self.draw(rng);
                let mut p = self.put.instantiate(&techs, r_values[0]);
                p.set_recorder(rec.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                let mut row = Vec::with_capacity(r_values.len());
                for &r in &r_values {
                    p.set_resistance(r)?;
                    row.push(p.worst_delay()? + ff.overhead());
                }
                Ok(row)
            })
    }

    /// Slack needs of every *resolved* instance at every defect
    /// resistance: `needs[sample][r_index]`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (via the failure budget).
    pub fn faulty_needs(&self, r_values: &[f64]) -> Result<Vec<Vec<f64>>, CoreError> {
        Ok(self.try_faulty_needs(r_values)?.into_resolved())
    }

    /// Full study: `C_del(R)` curves at each `T = factor × T₀`
    /// (the paper plots factors 0.9 / 1.0 / 1.1).
    ///
    /// # Errors
    ///
    /// Propagates calibration and simulation failures.
    pub fn coverage(
        &self,
        calib: &DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
    ) -> Result<Vec<CoverageCurve>, CoreError> {
        Ok(self.coverage_with_report(calib, r_values, t_factors)?.0)
    }

    /// Like [`DfStudy::coverage`], also returning the failure accounting
    /// of the underlying Monte Carlo run. Coverage is computed over the
    /// resolved samples; each curve's `unresolved` field records the
    /// excluded fraction.
    ///
    /// # Errors
    ///
    /// Propagates calibration and simulation failures.
    pub fn coverage_with_report(
        &self,
        calib: &DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
    ) -> Result<(Vec<CoverageCurve>, FailureReport), CoreError> {
        let report = self.try_faulty_needs(r_values)?;
        let needs: Vec<&Vec<f64>> = report.resolved().collect();
        let unresolved = report.unresolved_fraction();
        let curves = t_factors
            .iter()
            .map(|&f| {
                let t_test = f * calib.t0;
                let coverage = (0..r_values.len())
                    .map(|ri| {
                        let detected = needs.iter().filter(|row| t_test < row[ri]).count();
                        detected as f64 / needs.len().max(1) as f64
                    })
                    .collect();
                CoverageCurve {
                    factor: f,
                    resistance: r_values.to_vec(),
                    coverage,
                    unresolved,
                    completeness: Completeness::full(report.failures.samples),
                }
            })
            .collect();
        Ok((curves, report.failures))
    }

    /// The [`CheckpointSpec`] identifying a durable
    /// [`DfStudy::try_faulty_needs_durable`] run: the digest covers the
    /// path under test, the variation model, flop timing, and the exact
    /// resistance sweep (bit patterns), so a checkpoint can never resume a
    /// different experiment.
    pub fn faulty_checkpoint_spec(&self, r_values: &[f64]) -> CheckpointSpec {
        let digest = pulsar_obs::config_digest(&format!(
            "df-faulty put={:?} variation={:?} ff={:?} margin={:016x} r={:?}",
            self.put,
            self.mc.variation,
            self.ff,
            self.clock_margin.to_bits(),
            r_values.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        ));
        CheckpointSpec {
            config_digest: digest,
            seed: self.mc.seed,
            samples: self.mc.samples,
        }
    }

    /// Durable variant of [`DfStudy::try_faulty_needs`]: checkpoint/resume
    /// plus deadlines, per-sample timeouts, and panic containment from
    /// [`McConfig::try_run_samples_durable`]. The attempt's cancellation
    /// token is installed in the solver workspace, so a deadline interrupts
    /// a sample *mid-solve*, not just between samples.
    ///
    /// # Errors
    ///
    /// As for [`DfStudy::try_faulty_needs`], plus
    /// [`CoreError::Checkpoint`] on checkpoint failures.
    pub fn try_faulty_needs_durable(
        &self,
        r_values: &[f64],
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<Vec<f64>>>,
    ) -> Result<DurableRun<Vec<f64>>, CoreError> {
        lint_preflight(&self.put, Some(r_values))?;
        let r_values = r_values.to_vec();
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || {
            self.put.instantiate(&nominal_techs, r_values[0])
        });
        self.mc.try_run_samples_durable(
            "df-faulty",
            run_token,
            checkpoint,
            move |_, attempt, rng, rec, token| {
                let (techs, ff) = self.draw(rng);
                let mut p = self.put.instantiate(&techs, r_values[0]);
                p.set_recorder(rec.clone());
                p.set_cancel(token.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                let mut row = Vec::with_capacity(r_values.len());
                for &r in &r_values {
                    p.set_resistance(r)?;
                    row.push(p.worst_delay()? + ff.overhead());
                }
                Ok(row)
            },
        )
    }

    /// Durable variant of [`DfStudy::coverage_with_report`]: coverage over
    /// whatever samples completed, with the honest denominator recorded in
    /// each curve's [`CoverageCurve::completeness`].
    ///
    /// # Errors
    ///
    /// As for [`DfStudy::try_faulty_needs_durable`].
    pub fn coverage_durable(
        &self,
        calib: &DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<Vec<f64>>>,
    ) -> Result<(Vec<CoverageCurve>, FailureReport), CoreError> {
        let run = self.try_faulty_needs_durable(r_values, run_token, checkpoint)?;
        let needs: Vec<&Vec<f64>> = run.resolved_indexed().map(|(_, v)| v).collect();
        let unresolved = run.failures.unresolved_fraction();
        let curves = t_factors
            .iter()
            .map(|&f| {
                let t_test = f * calib.t0;
                let coverage = (0..r_values.len())
                    .map(|ri| {
                        let detected = needs.iter().filter(|row| t_test < row[ri]).count();
                        detected as f64 / needs.len().max(1) as f64
                    })
                    .collect();
                CoverageCurve {
                    factor: f,
                    resistance: r_values.to_vec(),
                    coverage,
                    unresolved,
                    completeness: run.completeness,
                }
            })
            .collect();
        Ok((curves, run.failures))
    }

    /// Adaptive-sampling variant of [`DfStudy::coverage`]: per resistance
    /// column, samples stop as soon as every factor's coverage interval
    /// meets `policy.precision` over the ordered sample prefix, and the
    /// saved budget refines the columns near the coverage threshold (and,
    /// when `crossover` supplies the pulse study's curves on the same
    /// grid, near the `C_pulse − C_del` crossover). Bit-identical across
    /// thread counts. Rejects [`McConfig::dc_warm_start`], which would
    /// couple a measurement to the sweep points evaluated before it.
    ///
    /// # Errors
    ///
    /// As for [`DfStudy::coverage`], plus [`CoreError::Unsupported`] for
    /// `dc_warm_start` or crossover curves on a different grid.
    pub fn coverage_adaptive(
        &self,
        calib: &DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
    ) -> Result<AdaptiveReport, CoreError> {
        self.coverage_adaptive_inner(calib, r_values, t_factors, policy, crossover, None)
    }

    /// Durable variant of [`DfStudy::coverage_adaptive`]: every evaluated
    /// sample row is checkpointed (first-pass rows at their stream index,
    /// refinement rows offset by `policy.max_samples`), and a resumed run
    /// replays the stopping decisions over the restored values — the
    /// curves are bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// As for [`DfStudy::coverage_adaptive`], plus
    /// [`CoreError::Checkpoint`] on checkpoint failures.
    pub fn coverage_adaptive_durable(
        &self,
        calib: &DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
        checkpoint: &Checkpoint<Vec<f64>>,
    ) -> Result<AdaptiveReport, CoreError> {
        self.coverage_adaptive_inner(
            calib,
            r_values,
            t_factors,
            policy,
            crossover,
            Some(checkpoint),
        )
    }

    /// The [`CheckpointSpec`] identifying a durable
    /// [`DfStudy::coverage_adaptive_durable`] run. The digest additionally
    /// covers the stopping policy, the factor grid, and any crossover
    /// reference curves, because all three steer which samples run; the
    /// record space reserves `3 × policy.max_samples` slots (first pass
    /// plus the refinement extension at its `max_samples` offset).
    pub fn adaptive_checkpoint_spec(
        &self,
        r_values: &[f64],
        t_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
    ) -> CheckpointSpec {
        let cross_bits: Vec<Vec<u64>> = crossover
            .unwrap_or(&[])
            .iter()
            .map(|c| c.coverage.iter().map(|v| v.to_bits()).collect())
            .collect();
        let digest = pulsar_obs::config_digest(&format!(
            "df-adaptive put={:?} variation={:?} ff={:?} margin={:016x} policy={:?} \
             factors={:?} r={:?} crossover={:?}",
            self.put,
            self.mc.variation,
            self.ff,
            self.clock_margin.to_bits(),
            policy,
            t_factors.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            r_values.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            cross_bits,
        ));
        CheckpointSpec {
            config_digest: digest,
            seed: self.mc.seed,
            samples: 3 * policy.max_samples,
        }
    }

    fn coverage_adaptive_inner(
        &self,
        calib: &DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
        checkpoint: Option<&Checkpoint<Vec<f64>>>,
    ) -> Result<AdaptiveReport, CoreError> {
        lint_preflight(&self.put, Some(r_values))?;
        let thresholds: Vec<f64> = t_factors.iter().map(|&f| f * calib.t0).collect();
        let grid = AdaptiveGrid {
            r_values,
            factors: t_factors,
            thresholds: &thresholds,
            detect_below: false,
        };
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || {
            self.put.instantiate(&nominal_techs, r_values[0])
        });
        run_adaptive(
            &self.mc,
            policy,
            "df-adaptive",
            &grid,
            crossover,
            checkpoint,
            |_, attempt, rng, rec, active_r| {
                let (techs, ff) = self.draw(rng);
                let mut p = self.put.instantiate(&techs, active_r[0]);
                p.set_recorder(rec.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                let mut row = Vec::with_capacity(active_r.len());
                for &r in active_r {
                    p.set_resistance(r)?;
                    row.push(p.worst_delay()? + ff.overhead());
                }
                Ok(row)
            },
        )
    }
}

/// The pulse-propagation study (paper Figs. 7 and 9).
#[derive(Debug, Clone)]
pub struct PulseStudy {
    /// The path + defect under study.
    pub put: PathUnderTest,
    /// Monte Carlo setup.
    pub mc: McConfig,
    /// Injected pulse polarity at the path input (the paper's kind *l*
    /// is [`Polarity::PositiveGoing`], kind *h* is
    /// [`Polarity::NegativeGoing`]).
    pub polarity: Polarity,
    /// Slope tolerance for the region-3 detection.
    pub region_tol: f64,
    /// Relative guard above the region-3 knee for `ω_in`.
    pub guard: f64,
    /// Sensor-variation margin for `ω_th⁰` (1.1 = the paper's 10 %
    /// worst-case sensing-circuit variation).
    pub sensor_margin: f64,
    /// Transfer-curve sweep for calibration: `(w_lo, w_hi, points)`.
    pub sweep: (f64, f64, usize),
}

impl PulseStudy {
    /// A study with the paper's margins and a sweep suited to the generic
    /// technology.
    pub fn new(put: PathUnderTest, mc: McConfig, polarity: Polarity) -> Self {
        PulseStudy {
            put,
            mc,
            polarity,
            region_tol: 0.08,
            guard: 0.05,
            sensor_margin: 1.1,
            sweep: (60e-12, 1.2e-9, 40),
        }
    }

    /// Primes the symbolic factorization of the *faulty* topology at
    /// defect resistance `r` and returns the shareable handle, or `None`
    /// when the sparse engine is not engaged for this circuit. See
    /// [`DfStudy::prime_symbolic`].
    pub fn prime_symbolic(&self, r: f64) -> Option<SymbolicCache> {
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        prime_symbolic_with(|| self.put.instantiate(&nominal_techs, r))
    }

    fn draw_techs(&self, rng: &mut StdRng) -> (Vec<Tech>, f64) {
        let techs = self
            .mc
            .variation
            .sample_techs(&self.put.tech, self.put.spec.len(), rng);
        // Pulse-generator width uncertainty (paper §3, point a).
        let gen_factor = self.mc.variation.sample_sensor(1.0, rng);
        (techs, gen_factor)
    }

    /// Builds one batch lane per sample of `idx`: replays each sample's
    /// instance draws from its RNG (the exact stream the scalar closure
    /// would consume, so an ejected lane's scalar rerun is bit-identical),
    /// instantiates the path with `build`, and installs recorder,
    /// per-lane cancellation, and the primed symbolic factorization.
    /// Samples with a planned fault come back `None`: the injector arms a
    /// thread-local, single-sample slot that cannot represent a batch, so
    /// those always run scalar (where `plan.arm` fires as usual).
    #[allow(clippy::too_many_arguments)]
    fn batch_lanes<Bld: Fn(&[Tech]) -> AnalogPath>(
        &self,
        idx: &[usize],
        rngs: &mut [StdRng],
        recs: &[Recorder],
        tokens: Option<&[CancelToken]>,
        plan: &FaultPlan,
        symbolic: &Option<SymbolicCache>,
        build: Bld,
    ) -> (Vec<Option<AnalogPath>>, Vec<f64>) {
        let mut paths = Vec::with_capacity(idx.len());
        let mut gen_factors = Vec::with_capacity(idx.len());
        for (j, (&i, rng)) in idx.iter().zip(rngs.iter_mut()).enumerate() {
            let (techs, gen_factor) = self.draw_techs(rng);
            gen_factors.push(gen_factor);
            if plan.due(i, 1).is_some() {
                paths.push(None);
                continue;
            }
            let mut p = build(&techs);
            p.set_recorder(recs[i].clone());
            if let Some(t) = tokens {
                p.set_cancel(t[j].clone());
            }
            adopt_symbolic(&mut p, symbolic);
            if self.mc.dc_warm_start {
                p.set_dc_warm_start(true);
            }
            paths.push(Some(p));
        }
        (paths, gen_factors)
    }

    /// Batched counterpart of the `try_fault_free_wouts` sample closure:
    /// one lock-step width measurement over all live lanes. `None` slots
    /// are lanes the batch engine could not hold; the driver reruns
    /// exactly those through the scalar ladder.
    #[allow(clippy::too_many_arguments)]
    fn fault_free_wouts_batched(
        &self,
        idx: &[usize],
        rngs: &mut [StdRng],
        recs: &[Recorder],
        plan: &FaultPlan,
        symbolic: &Option<SymbolicCache>,
        w_in: f64,
        pool: &WorkspacePool,
    ) -> Vec<Option<f64>> {
        let (mut paths, gen_factors) =
            self.batch_lanes(idx, rngs, recs, None, plan, symbolic, |techs| {
                self.put.instantiate_fault_free(techs)
            });
        let mut lane_js = Vec::new();
        let mut lane_ws = Vec::new();
        let mut lanes: Vec<&mut BuiltPath> = Vec::new();
        for (j, slot) in paths.iter_mut().enumerate() {
            if let Some(p) = slot.as_mut() {
                lane_js.push(j);
                lane_ws.push(w_in * gen_factors[j]);
                lanes.push(p.built_path());
            }
        }
        let mut out: Vec<Option<f64>> = idx.iter().map(|_| None).collect();
        if !lanes.is_empty() {
            let widths =
                pool.with(|bw| pulse_width_only_batch(&mut lanes, &lane_ws, self.polarity, bw));
            for (j, w) in lane_js.into_iter().zip(widths) {
                out[j] = w;
            }
        }
        out
    }

    /// Batched counterpart of the `try_faulty_wouts` sample closure: the
    /// full resistance sweep, each point one lock-step width measurement
    /// over the still-live lanes. Any per-lane failure — planned fault,
    /// set-resistance error, divergence ejection, cancellation — turns
    /// that lane's whole row `None`, and the driver reruns exactly those
    /// samples through the scalar ladder from scratch.
    #[allow(clippy::too_many_arguments)]
    fn faulty_rows_batched(
        &self,
        idx: &[usize],
        rngs: &mut [StdRng],
        recs: &[Recorder],
        tokens: Option<&[CancelToken]>,
        plan: &FaultPlan,
        symbolic: &Option<SymbolicCache>,
        w_in: f64,
        r_values: &[f64],
        pool: &WorkspacePool,
    ) -> Vec<Option<Vec<f64>>> {
        let (mut paths, gen_factors) =
            self.batch_lanes(idx, rngs, recs, tokens, plan, symbolic, |techs| {
                self.put.instantiate(techs, r_values[0])
            });
        let mut rows: Vec<Option<Vec<f64>>> = paths
            .iter()
            .map(|p| p.as_ref().map(|_| Vec::with_capacity(r_values.len())))
            .collect();
        // One checked-out workspace for the whole sweep: its SoA buffers
        // and lane scratch stay warm across the resistance points.
        let mut bw = pool.check_out();
        for &r in r_values {
            for (j, slot) in paths.iter_mut().enumerate() {
                if let Some(p) = slot.as_mut() {
                    if p.set_resistance(r).is_err() {
                        // The scalar rerun surfaces the same error
                        // through the retry ladder.
                        *slot = None;
                        rows[j] = None;
                    }
                }
            }
            let mut lane_js = Vec::new();
            let mut lane_ws = Vec::new();
            let mut lanes: Vec<&mut BuiltPath> = Vec::new();
            for (j, slot) in paths.iter_mut().enumerate() {
                if let Some(p) = slot.as_mut() {
                    lane_js.push(j);
                    lane_ws.push(w_in * gen_factors[j]);
                    lanes.push(p.built_path());
                }
            }
            if lanes.is_empty() {
                break;
            }
            let widths = pulse_width_only_batch(&mut lanes, &lane_ws, self.polarity, &mut bw);
            drop(lanes);
            for (j, w) in lane_js.into_iter().zip(widths) {
                match w {
                    Some(w) => {
                        if let Some(row) = rows[j].as_mut() {
                            row.push(w);
                        }
                    }
                    None => {
                        paths[j] = None;
                        rows[j] = None;
                    }
                }
            }
        }
        pool.check_in(bw);
        rows
    }

    /// The fault-free *nominal* transfer curve (the solid line of
    /// Fig. 10), used by the region-3 rule.
    ///
    /// # Errors
    ///
    /// [`CoreError::LintRejected`] when the configuration fails the static
    /// preflight; otherwise propagates simulation failures.
    pub fn nominal_curve(&self) -> Result<TransferCurve, CoreError> {
        lint_preflight(&self.put, None)?;
        let techs = vec![self.put.tech; self.put.spec.len()];
        let mut p = self.put.instantiate_fault_free(&techs);
        let (lo, hi, n) = self.sweep;
        TransferCurve::measure(&mut p, self.polarity, lo, hi, n)
    }

    /// Fault-free output widths with per-sample fault isolation. With
    /// [`McConfig::batch`] ≥ 2, first attempts resolve through the batched
    /// device-evaluation engine — results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// [`CoreError::LintRejected`] when the configuration fails the static
    /// preflight; [`CoreError::FailureBudgetExceeded`] when too many
    /// samples stay failed after retries.
    pub fn try_fault_free_wouts(&self, w_in: f64) -> Result<McRunReport<f64>, CoreError> {
        lint_preflight(&self.put, None)?;
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || self.put.instantiate_fault_free(&nominal_techs));
        let plan = self.mc.fault_plan.clone().unwrap_or_default();
        let pool = WorkspacePool::default();
        self.mc.try_run_samples_batched(
            "pulse-fault-free",
            |idx: &[usize], rngs: &mut [StdRng], recs: &[Recorder]| {
                self.fault_free_wouts_batched(idx, rngs, recs, &plan, &symbolic, w_in, &pool)
            },
            |_, attempt, rng, rec| {
                let (techs, gen_factor) = self.draw_techs(rng);
                let mut p = self.put.instantiate_fault_free(&techs);
                p.set_recorder(rec.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                p.pulse_width_out(w_in * gen_factor, self.polarity)
            },
        )
    }

    /// Output widths of every *resolved* fault-free MC instance at
    /// injected width `w_in` (with per-instance generator fluctuation).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (via the failure budget).
    pub fn fault_free_wouts(&self, w_in: f64) -> Result<Vec<f64>, CoreError> {
        Ok(self.try_fault_free_wouts(w_in)?.into_resolved())
    }

    /// Like [`PulseStudy::fault_free_wouts`] but with the injected width
    /// held exactly at `w_in` (no generator fluctuation): the Fig. 10
    /// analysis, which isolates the *path's* response spread at a fixed
    /// stimulus.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (via the failure budget).
    pub fn fault_free_wouts_fixed_width(&self, w_in: f64) -> Result<Vec<f64>, CoreError> {
        lint_preflight(&self.put, None)?;
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || self.put.instantiate_fault_free(&nominal_techs));
        let report =
            self.mc
                .try_run_samples_with("pulse-fixed-width", move |_, attempt, rng, rec| {
                    let (techs, _) = self.draw_techs(rng);
                    let mut p = self.put.instantiate_fault_free(&techs);
                    p.set_recorder(rec.clone());
                    adopt_symbolic(&mut p, &symbolic);
                    prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                    p.pulse_width_out(w_in, self.polarity)
                })?;
        Ok(report.into_resolved())
    }

    /// Calibrates `(ω_in⁰, ω_th⁰)` per the paper's rule.
    ///
    /// # Errors
    ///
    /// Fails when the nominal curve has no asymptotic region or a
    /// fault-free instance dampens the calibrated pulse.
    pub fn calibrate(&self) -> Result<PulseCalibration, CoreError> {
        let curve = self.nominal_curve()?;
        let w_in = curve.region3_start(self.region_tol, self.guard).ok_or(
            CoreError::EmptyCalibration {
                what: "transfer curve asymptotic region",
            },
        )?;
        let wouts = self.fault_free_wouts(w_in)?;
        calibrate_pulse(
            &curve,
            &wouts,
            self.region_tol,
            self.guard,
            self.sensor_margin,
        )
    }

    /// Faulty output widths with per-sample fault isolation:
    /// `outcomes[sample]` resolves to the per-resistance row.
    ///
    /// # Errors
    ///
    /// [`CoreError::LintRejected`] when the configuration fails the static
    /// preflight (out-of-range stage, non-physical or empty sweep);
    /// [`CoreError::FailureBudgetExceeded`] when too many samples stay
    /// failed after retries.
    pub fn try_faulty_wouts(
        &self,
        w_in: f64,
        r_values: &[f64],
    ) -> Result<McRunReport<Vec<f64>>, CoreError> {
        lint_preflight(&self.put, Some(r_values))?;
        let r_values = r_values.to_vec();
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || {
            self.put.instantiate(&nominal_techs, r_values[0])
        });
        let plan = self.mc.fault_plan.clone().unwrap_or_default();
        let pool = WorkspacePool::default();
        self.mc.try_run_samples_batched(
            "pulse-faulty",
            |idx: &[usize], rngs: &mut [StdRng], recs: &[Recorder]| {
                self.faulty_rows_batched(
                    idx, rngs, recs, None, &plan, &symbolic, w_in, &r_values, &pool,
                )
            },
            |_, attempt, rng, rec| {
                let (techs, gen_factor) = self.draw_techs(rng);
                let mut p = self.put.instantiate(&techs, r_values[0]);
                p.set_recorder(rec.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                let mut row = Vec::with_capacity(r_values.len());
                for &r in &r_values {
                    p.set_resistance(r)?;
                    row.push(p.pulse_width_out(w_in * gen_factor, self.polarity)?);
                }
                Ok(row)
            },
        )
    }

    /// Output widths of every *resolved* instance at every resistance:
    /// `wouts[sample][r_index]`, injecting `w_in` (per-instance generator
    /// fluctuation included).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (via the failure budget).
    pub fn faulty_wouts(&self, w_in: f64, r_values: &[f64]) -> Result<Vec<Vec<f64>>, CoreError> {
        Ok(self.try_faulty_wouts(w_in, r_values)?.into_resolved())
    }

    /// Full study: `C_pulse(R)` curves at each `ω_th = factor × ω_th⁰`
    /// (the paper plots factors 0.9 / 1.0 / 1.1). Detection = the output
    /// pulse is *narrower than the sensing threshold* (the sensor sees no
    /// transition).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn coverage(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
    ) -> Result<Vec<CoverageCurve>, CoreError> {
        Ok(self.coverage_with_report(calib, r_values, th_factors)?.0)
    }

    /// Like [`PulseStudy::coverage`], also returning the failure
    /// accounting of the underlying Monte Carlo run. Coverage is computed
    /// over the resolved samples; each curve's `unresolved` field records
    /// the excluded fraction.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn coverage_with_report(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
    ) -> Result<(Vec<CoverageCurve>, FailureReport), CoreError> {
        let report = self.try_faulty_wouts(calib.w_in, r_values)?;
        let wouts: Vec<&Vec<f64>> = report.resolved().collect();
        let unresolved = report.unresolved_fraction();
        let curves = th_factors
            .iter()
            .map(|&f| {
                let th = f * calib.w_th;
                let coverage = (0..r_values.len())
                    .map(|ri| {
                        let detected = wouts.iter().filter(|row| row[ri] < th).count();
                        detected as f64 / wouts.len().max(1) as f64
                    })
                    .collect();
                CoverageCurve {
                    factor: f,
                    resistance: r_values.to_vec(),
                    coverage,
                    unresolved,
                    completeness: Completeness::full(report.failures.samples),
                }
            })
            .collect();
        Ok((curves, report.failures))
    }

    /// The [`CheckpointSpec`] identifying a durable
    /// [`PulseStudy::try_faulty_wouts_durable`] run: the digest covers the
    /// path under test, the variation model, polarity, injected width, and
    /// the exact resistance sweep (bit patterns).
    pub fn faulty_checkpoint_spec(&self, w_in: f64, r_values: &[f64]) -> CheckpointSpec {
        let digest = pulsar_obs::config_digest(&format!(
            "pulse-faulty put={:?} variation={:?} polarity={:?} w_in={:016x} r={:?}",
            self.put,
            self.mc.variation,
            self.polarity,
            w_in.to_bits(),
            r_values.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        ));
        CheckpointSpec {
            config_digest: digest,
            seed: self.mc.seed,
            samples: self.mc.samples,
        }
    }

    /// Durable variant of [`PulseStudy::try_faulty_wouts`]:
    /// checkpoint/resume plus deadlines, per-sample timeouts, and panic
    /// containment from [`McConfig::try_run_samples_durable`]. The
    /// attempt's cancellation token is installed in the solver workspace,
    /// so a deadline interrupts a sample *mid-solve*, not just between
    /// samples.
    ///
    /// # Errors
    ///
    /// As for [`PulseStudy::try_faulty_wouts`], plus
    /// [`CoreError::Checkpoint`] on checkpoint failures.
    pub fn try_faulty_wouts_durable(
        &self,
        w_in: f64,
        r_values: &[f64],
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<Vec<f64>>>,
    ) -> Result<DurableRun<Vec<f64>>, CoreError> {
        lint_preflight(&self.put, Some(r_values))?;
        let r_values = r_values.to_vec();
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || {
            self.put.instantiate(&nominal_techs, r_values[0])
        });
        let plan = self.mc.fault_plan.clone().unwrap_or_default();
        let pool = WorkspacePool::default();
        self.mc.try_run_samples_durable_batched(
            "pulse-faulty",
            run_token,
            checkpoint,
            |idx: &[usize], rngs: &mut [StdRng], recs: &[Recorder], tokens: &[CancelToken]| {
                self.faulty_rows_batched(
                    idx,
                    rngs,
                    recs,
                    Some(tokens),
                    &plan,
                    &symbolic,
                    w_in,
                    &r_values,
                    &pool,
                )
            },
            |_, attempt, rng, rec, token| {
                let (techs, gen_factor) = self.draw_techs(rng);
                let mut p = self.put.instantiate(&techs, r_values[0]);
                p.set_recorder(rec.clone());
                p.set_cancel(token.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                let mut row = Vec::with_capacity(r_values.len());
                for &r in &r_values {
                    p.set_resistance(r)?;
                    row.push(p.pulse_width_out(w_in * gen_factor, self.polarity)?);
                }
                Ok(row)
            },
        )
    }

    /// Durable variant of [`PulseStudy::coverage_with_report`]: coverage
    /// over whatever samples completed, with the honest denominator
    /// recorded in each curve's [`CoverageCurve::completeness`].
    ///
    /// # Errors
    ///
    /// As for [`PulseStudy::try_faulty_wouts_durable`].
    pub fn coverage_durable(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
        run_token: &CancelToken,
        checkpoint: Option<&Checkpoint<Vec<f64>>>,
    ) -> Result<(Vec<CoverageCurve>, FailureReport), CoreError> {
        let run = self.try_faulty_wouts_durable(calib.w_in, r_values, run_token, checkpoint)?;
        let wouts: Vec<&Vec<f64>> = run.resolved_indexed().map(|(_, v)| v).collect();
        let unresolved = run.failures.unresolved_fraction();
        let curves = th_factors
            .iter()
            .map(|&f| {
                let th = f * calib.w_th;
                let coverage = (0..r_values.len())
                    .map(|ri| {
                        let detected = wouts.iter().filter(|row| row[ri] < th).count();
                        detected as f64 / wouts.len().max(1) as f64
                    })
                    .collect();
                CoverageCurve {
                    factor: f,
                    resistance: r_values.to_vec(),
                    coverage,
                    unresolved,
                    completeness: run.completeness,
                }
            })
            .collect();
        Ok((curves, run.failures))
    }

    /// Adaptive-sampling variant of [`PulseStudy::coverage`]: per
    /// resistance column, samples stop as soon as every factor's coverage
    /// interval meets `policy.precision` over the ordered sample prefix,
    /// and the saved budget refines the columns near the coverage
    /// threshold (and, when `crossover` supplies the DF study's curves on
    /// the same grid, near the `C_pulse − C_del` crossover).
    /// Bit-identical across thread counts. Rejects
    /// [`McConfig::dc_warm_start`], which would couple a measurement to
    /// the sweep points evaluated before it.
    ///
    /// # Errors
    ///
    /// As for [`PulseStudy::coverage`], plus [`CoreError::Unsupported`]
    /// for `dc_warm_start` or crossover curves on a different grid.
    pub fn coverage_adaptive(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
    ) -> Result<AdaptiveReport, CoreError> {
        self.coverage_adaptive_inner(calib, r_values, th_factors, policy, crossover, None)
    }

    /// Durable variant of [`PulseStudy::coverage_adaptive`]: every
    /// evaluated sample row is checkpointed (first-pass rows at their
    /// stream index, refinement rows offset by `policy.max_samples`), and
    /// a resumed run replays the stopping decisions over the restored
    /// values — the curves are bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// As for [`PulseStudy::coverage_adaptive`], plus
    /// [`CoreError::Checkpoint`] on checkpoint failures.
    pub fn coverage_adaptive_durable(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
        checkpoint: &Checkpoint<Vec<f64>>,
    ) -> Result<AdaptiveReport, CoreError> {
        self.coverage_adaptive_inner(
            calib,
            r_values,
            th_factors,
            policy,
            crossover,
            Some(checkpoint),
        )
    }

    /// The [`CheckpointSpec`] identifying a durable
    /// [`PulseStudy::coverage_adaptive_durable`] run. The digest
    /// additionally covers the calibrated injection width, the stopping
    /// policy, the factor grid, and any crossover reference curves; the
    /// record space reserves `3 × policy.max_samples` slots (first pass
    /// plus the refinement extension at its `max_samples` offset).
    pub fn adaptive_checkpoint_spec(
        &self,
        w_in: f64,
        r_values: &[f64],
        th_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
    ) -> CheckpointSpec {
        let cross_bits: Vec<Vec<u64>> = crossover
            .unwrap_or(&[])
            .iter()
            .map(|c| c.coverage.iter().map(|v| v.to_bits()).collect())
            .collect();
        let digest = pulsar_obs::config_digest(&format!(
            "pulse-adaptive put={:?} variation={:?} polarity={:?} w_in={:016x} policy={:?} \
             factors={:?} r={:?} crossover={:?}",
            self.put,
            self.mc.variation,
            self.polarity,
            w_in.to_bits(),
            policy,
            th_factors.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            r_values.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            cross_bits,
        ));
        CheckpointSpec {
            config_digest: digest,
            seed: self.mc.seed,
            samples: 3 * policy.max_samples,
        }
    }

    fn coverage_adaptive_inner(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
        policy: &AdaptivePolicy,
        crossover: Option<&[CoverageCurve]>,
        checkpoint: Option<&Checkpoint<Vec<f64>>>,
    ) -> Result<AdaptiveReport, CoreError> {
        lint_preflight(&self.put, Some(r_values))?;
        let thresholds: Vec<f64> = th_factors.iter().map(|&f| f * calib.w_th).collect();
        let grid = AdaptiveGrid {
            r_values,
            factors: th_factors,
            thresholds: &thresholds,
            detect_below: true,
        };
        let w_in = calib.w_in;
        let nominal_techs = vec![self.put.tech; self.put.spec.len()];
        let symbolic = prime_or_adopt(&self.mc, || {
            self.put.instantiate(&nominal_techs, r_values[0])
        });
        run_adaptive(
            &self.mc,
            policy,
            "pulse-adaptive",
            &grid,
            crossover,
            checkpoint,
            |_, attempt, rng, rec, active_r| {
                let (techs, gen_factor) = self.draw_techs(rng);
                let mut p = self.put.instantiate(&techs, active_r[0]);
                p.set_recorder(rec.clone());
                adopt_symbolic(&mut p, &symbolic);
                prepare_for_attempt(&mut p, attempt, rng, self.mc.dc_warm_start);
                let mut row = Vec::with_capacity(active_r.len());
                for &r in active_r {
                    p.set_resistance(r)?;
                    row.push(p.pulse_width_out(w_in * gen_factor, self.polarity)?);
                }
                Ok(row)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::engine::DefectKind;
    use pulsar_cells::PathSpec;

    fn put() -> PathUnderTest {
        PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::ExternalRop,
            stage: 1,
            tech: Tech::generic_180nm(),
        }
    }

    fn tiny_mc() -> McConfig {
        McConfig::paper(6, 42)
    }

    #[test]
    fn lint_rejects_out_of_range_stage_before_any_sample() {
        let bad = PathUnderTest { stage: 99, ..put() };
        let study = DfStudy::new(bad, tiny_mc());
        let err = study.try_fault_free_needs().unwrap_err();
        match &err {
            CoreError::LintRejected { report } => {
                assert!(report.error_count() > 0);
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
        // Structural rejection is terminal: no retries, no budget spend.
        assert!(!crate::resilience::is_retryable(&err));
        assert_eq!(crate::resilience::error_kind(&err), "lint-rejected");
    }

    #[test]
    fn lint_rejects_non_physical_resistance_sweep() {
        let study = DfStudy::new(put(), tiny_mc());
        for sweep in [&[-1.0][..], &[f64::NAN][..], &[0.0][..], &[][..]] {
            let err = study.try_faulty_needs(sweep).unwrap_err();
            assert!(
                matches!(err, CoreError::LintRejected { .. }),
                "sweep {sweep:?} must be lint-rejected, got {err:?}"
            );
        }
        // A physical sweep passes the preflight (and the run itself).
        assert!(study.try_faulty_needs(&[10e3]).is_ok());
    }

    #[test]
    fn pulse_study_lint_rejection_spends_zero_budget() {
        let bad = PathUnderTest { stage: 99, ..put() };
        let study = PulseStudy::new(bad, tiny_mc(), Polarity::PositiveGoing);
        let err = study.try_fault_free_wouts(500e-12).unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { .. }));
        let err = study.try_faulty_wouts(500e-12, &[10e3]).unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { .. }));
        let err = study.fault_free_wouts_fixed_width(500e-12).unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { .. }));
    }

    #[test]
    fn df_calibration_admits_all_fault_free_instances() {
        let study = DfStudy::new(put(), tiny_mc());
        let needs = study.fault_free_needs().unwrap();
        let cal = calibrate_t0(&needs, 0.9).unwrap();
        for n in &needs {
            assert!(0.9 * cal.t0 >= *n - 1e-18, "false positive at 0.9·T0");
        }
    }

    #[test]
    fn df_coverage_grows_with_resistance() {
        let study = DfStudy::new(put(), tiny_mc());
        let cal = study.calibrate().unwrap();
        let rs = [1e3, 150e3];
        let curves = study.coverage(&cal, &rs, &[1.0]).unwrap();
        let c = &curves[0];
        assert!(
            c.coverage[1] >= c.coverage[0],
            "coverage must not drop with R: {:?}",
            c.coverage
        );
        assert!(
            c.coverage[1] > 0.9,
            "a 150 kΩ open must be caught by reduced-clock testing: {:?}",
            c.coverage
        );
    }

    #[test]
    fn pulse_calibration_has_no_false_positives() {
        let study = PulseStudy::new(put(), tiny_mc(), Polarity::PositiveGoing);
        let cal = study.calibrate().unwrap();
        let wouts = study.fault_free_wouts(cal.w_in).unwrap();
        for w in &wouts {
            assert!(
                *w >= study.sensor_margin * cal.w_th - 1e-18,
                "fault-free instance too close to threshold: w_out {w:e}, th {:e}",
                cal.w_th
            );
        }
    }

    #[test]
    fn pulse_coverage_catches_large_opens() {
        let study = PulseStudy::new(put(), tiny_mc(), Polarity::PositiveGoing);
        let cal = study.calibrate().unwrap();
        let rs = [1e3, 100e3];
        let curves = study.coverage(&cal, &rs, &[0.9, 1.0, 1.1]).unwrap();
        assert_eq!(curves.len(), 3);
        for c in &curves {
            assert!(
                c.coverage[0] < 0.5,
                "1 kΩ is benign at factor {}: {:?}",
                c.factor,
                c.coverage
            );
            assert!(
                c.coverage[1] > 0.9,
                "100 kΩ must dampen at factor {}: {:?}",
                c.factor,
                c.coverage
            );
        }
        // Higher threshold factor ⇒ (weakly) more coverage.
        assert!(curves[2].coverage[1] >= curves[0].coverage[1] - 1e-12);
    }

    /// A 3-stage chain stays under the sparse crossover, so its lanes run
    /// the dense batch engine instead of ejecting to the scalar path.
    fn small_put() -> PathUnderTest {
        PathUnderTest {
            spec: PathSpec::inverter_chain(3),
            defect: DefectKind::ExternalRop,
            stage: 1,
            tech: Tech::generic_180nm(),
        }
    }

    fn fbits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn batched_pulse_study_is_bit_identical_to_scalar_and_engages() {
        let scalar = PulseStudy::new(small_put(), tiny_mc(), Polarity::PositiveGoing);
        let mut mc = tiny_mc();
        mc.batch = 3;
        mc.obs = Recorder::enabled();
        let batched = PulseStudy::new(small_put(), mc, Polarity::PositiveGoing);
        let rs = [1e3, 50e3];
        let w_in = 450e-12;

        let a = scalar.try_faulty_wouts(w_in, &rs).unwrap();
        let b = batched.try_faulty_wouts(w_in, &rs).unwrap();
        let ar: Vec<&Vec<f64>> = a.resolved().collect();
        let br: Vec<&Vec<f64>> = b.resolved().collect();
        assert_eq!(ar.len(), 6);
        assert_eq!(bits(&ar), bits(&br));

        let af = scalar.try_fault_free_wouts(w_in).unwrap().into_resolved();
        let bf = batched.try_fault_free_wouts(w_in).unwrap().into_resolved();
        assert_eq!(fbits(&af), fbits(&bf));

        // Proof the batch engine actually solved lanes rather than
        // quietly falling back scalar everywhere.
        let snap = batched.mc.obs.snapshot();
        assert!(
            snap.counter(ObsCounter::BatchedLaneSolves) > 0,
            "the dense 3-stage chain must engage the batch engine"
        );
    }

    #[test]
    fn batched_sparse_path_study_falls_back_scalar_bit_identically() {
        // paper_chain exceeds the sparse crossover: every lane ejects and
        // the scalar ladder must reproduce the run exactly.
        let scalar = PulseStudy::new(put(), tiny_mc(), Polarity::PositiveGoing);
        let mut mc = tiny_mc();
        mc.batch = 4;
        let batched = PulseStudy::new(put(), mc, Polarity::PositiveGoing);
        let a = scalar.try_faulty_wouts(500e-12, &[10e3]).unwrap();
        let b = batched.try_faulty_wouts(500e-12, &[10e3]).unwrap();
        let ar: Vec<&Vec<f64>> = a.resolved().collect();
        let br: Vec<&Vec<f64>> = b.resolved().collect();
        assert_eq!(bits(&ar), bits(&br));
    }

    #[test]
    fn batched_durable_run_matches_scalar_durable_bit_for_bit() {
        let scalar = PulseStudy::new(small_put(), tiny_mc(), Polarity::PositiveGoing);
        let mut mc = tiny_mc();
        mc.batch = 3;
        let batched = PulseStudy::new(small_put(), mc, Polarity::PositiveGoing);
        let rs = [1e3, 50e3];
        let a = scalar
            .try_faulty_wouts_durable(450e-12, &rs, &CancelToken::new(), None)
            .unwrap();
        let b = batched
            .try_faulty_wouts_durable(450e-12, &rs, &CancelToken::new(), None)
            .unwrap();
        assert!(a.is_complete() && b.is_complete());
        let ar: Vec<&Vec<f64>> = a.resolved_indexed().map(|(_, v)| v).collect();
        let br: Vec<&Vec<f64>> = b.resolved_indexed().map(|(_, v)| v).collect();
        assert_eq!(bits(&ar), bits(&br));
    }

    #[test]
    fn batched_study_with_planned_fault_recovers_identically() {
        use pulsar_analog::FaultKind;
        // Sample 2 fails its first attempt with a retryable Newton
        // failure: the batched run must pre-eject it (the injector is a
        // thread-local single-sample slot), recover it on the scalar
        // ladder at attempt 2, and still match the scalar run.
        let plan = FaultPlan::new().fail_sample(2, FaultKind::NonConvergence, 1);
        let mk = |batch: usize| {
            let mut mc = tiny_mc();
            mc.batch = batch;
            mc.fault_plan = Some(plan.clone());
            PulseStudy::new(small_put(), mc, Polarity::PositiveGoing)
        };
        let a = mk(0).try_faulty_wouts(450e-12, &[1e3, 50e3]).unwrap();
        let b = mk(3).try_faulty_wouts(450e-12, &[1e3, 50e3]).unwrap();
        for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
            match (oa, ob) {
                (SampleOutcome::Ok(va), SampleOutcome::Ok(vb)) => assert_eq!(fbits(va), fbits(vb)),
                (
                    SampleOutcome::Recovered {
                        value: va,
                        attempts: na,
                    },
                    SampleOutcome::Recovered {
                        value: vb,
                        attempts: nb,
                    },
                ) => {
                    assert_eq!(na, nb);
                    assert_eq!(*na, 2);
                    assert_eq!(fbits(va), fbits(vb));
                }
                other => panic!("outcome shapes diverged: {other:?}"),
            }
        }
        assert!(
            b.outcomes
                .iter()
                .any(|o| matches!(o, SampleOutcome::Recovered { .. })),
            "the planned fault must actually have fired"
        );
    }

    #[test]
    fn batched_per_sample_counters_match_scalar_attribution() {
        // Batched work must attribute solver counters to individual
        // samples exactly as the scalar path does — per-pass accounting
        // would lump K lanes into one sample's journal entry. The
        // engine-specific batch counters are the only permitted extras.
        let run = |batch: usize| {
            let mut mc = tiny_mc();
            mc.batch = batch;
            mc.obs = Recorder::enabled();
            let study = PulseStudy::new(small_put(), mc, Polarity::PositiveGoing);
            study.try_faulty_wouts(450e-12, &[1e3, 50e3]).unwrap();
            let per_sample: Vec<Vec<(&'static str, u64)>> = study
                .mc
                .obs
                .events()
                .iter()
                .filter(|e| e.kind == "sample")
                .map(|e| {
                    e.counters
                        .iter()
                        .filter(|(name, _)| !name.starts_with("batch"))
                        .copied()
                        .collect()
                })
                .collect();
            assert_eq!(per_sample.len(), 6);
            per_sample
        };
        assert_eq!(run(0), run(3));
    }

    #[test]
    fn internal_solver_error_fails_one_sample_without_killing_the_campaign() {
        let mut mc = tiny_mc();
        mc.resilience.failure_budget = 0.5;
        mc.obs = Recorder::enabled();
        let report = mc
            .try_run_samples_with("internal-test", |i, _attempt, _rng, _rec| {
                if i == 2 {
                    Err(CoreError::Analog(pulsar_analog::Error::Internal {
                        context: "vsource has no branch-current unknown",
                    }))
                } else {
                    Ok(i as f64)
                }
            })
            .unwrap();
        match &report.outcomes[2] {
            SampleOutcome::Failed { attempts, .. } => {
                assert_eq!(*attempts, 1, "internal errors must not be retried");
            }
            other => panic!("expected sample 2 to fail, got {other:?}"),
        }
        assert_eq!(report.failures.failed, 1);
        assert_eq!(report.resolved().count(), 5, "the other samples survive");
        let events = mc.obs.events();
        let failed: Vec<_> = events
            .iter()
            .filter(|e| e.kind == "sample" && e.outcome == "failed")
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].error_kind.as_deref(), Some("internal"));
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pulsar-study-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}.ckpt", name, std::process::id()))
    }

    fn bits(rows: &[&Vec<f64>]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| r.iter().map(|x| x.to_bits()).collect())
            .collect()
    }

    #[test]
    fn durable_df_run_matches_plain_bit_for_bit() {
        let study = DfStudy::new(put(), tiny_mc());
        let rs = [10e3, 100e3];
        let plain = study.try_faulty_needs(&rs).unwrap();
        let durable = study
            .try_faulty_needs_durable(&rs, &CancelToken::new(), None)
            .unwrap();
        assert!(durable.is_complete());
        let plain_rows: Vec<&Vec<f64>> = plain.resolved().collect();
        let durable_rows: Vec<&Vec<f64>> = durable.resolved_indexed().map(|(_, v)| v).collect();
        assert_eq!(bits(&plain_rows), bits(&durable_rows));
    }

    #[test]
    fn df_resume_from_truncated_checkpoint_is_bit_identical() {
        let study = DfStudy::new(put(), tiny_mc());
        let rs = [10e3, 100e3];
        let path = tmp("df-trunc");
        let _ = std::fs::remove_file(&path);
        let spec = study.faulty_checkpoint_spec(&rs);
        let ck = Checkpoint::create(&path, spec).unwrap();
        let full = study
            .try_faulty_needs_durable(&rs, &CancelToken::new(), Some(&ck))
            .unwrap();
        drop(ck);

        // A kill can land on any byte: chop the tail mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let ck = Checkpoint::open(&path, spec).unwrap();
        let resumed = study
            .try_faulty_needs_durable(&rs, &CancelToken::new(), Some(&ck))
            .unwrap();
        let full_rows: Vec<&Vec<f64>> = full.resolved_indexed().map(|(_, v)| v).collect();
        let resumed_rows: Vec<&Vec<f64>> = resumed.resolved_indexed().map(|(_, v)| v).collect();
        assert_eq!(bits(&full_rows), bits(&resumed_rows));
        assert!(resumed.is_complete());
        assert!(
            resumed.completeness.resumed < study.mc.samples,
            "truncation must have dropped at least one record"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deadline_cancelled_samples_journal_as_deadline_and_never_count() {
        use pulsar_obs::CancelReason;
        let mut mc = tiny_mc();
        mc.threads = Some(1);
        mc.obs = Recorder::enabled();
        let run_token = CancelToken::new();
        // Deterministic stand-in for the watchdog: samples 0 and 1 finish,
        // sample 2's solve observes the deadline mid-flight, everything
        // after it never starts.
        let run = mc
            .try_run_samples_durable(
                "deadline-test",
                &run_token,
                None,
                |i, _a, _rng, _rec, _t| {
                    if i < 2 {
                        Ok(i as f64)
                    } else {
                        run_token.cancel(CancelReason::Deadline);
                        Err(CoreError::Analog(pulsar_analog::Error::Cancelled {
                            time: 0.0,
                            reason: CancelReason::Deadline,
                        }))
                    }
                },
            )
            .unwrap();

        // Interrupted samples are not-done, never failed: they stay out of
        // both the failure accounting and any coverage denominator.
        assert_eq!(run.completeness.requested, 6);
        assert_eq!(run.completeness.done, 2);
        assert_eq!(run.completeness.truncated, Some("deadline"));
        assert_eq!(run.failures.samples, 2);
        assert_eq!(run.failures.failed, 0);
        assert_eq!(run.failures.unresolved_fraction(), 0.0);
        assert!(run.outcomes[2..].iter().all(Option::is_none));
        assert_eq!(run.resolved_indexed().count(), 2);

        // The journal shows the cancelled sample as `error_kind = "deadline"`
        // with outcome `"cancelled"`, never `"failed"`.
        let events = mc.obs.events();
        let samples: Vec<_> = events.iter().filter(|e| e.kind == "sample").collect();
        assert_eq!(samples.len(), 3, "2 ok + 1 cancelled, unstarted silent");
        let cancelled: Vec<_> = samples
            .iter()
            .filter(|e| e.outcome == "cancelled")
            .collect();
        assert_eq!(cancelled.len(), 1);
        assert_eq!(cancelled[0].error_kind.as_deref(), Some("deadline"));
        assert!(samples.iter().all(|e| e.outcome != "failed"));
    }

    #[test]
    fn durable_coverage_reports_the_honest_partial_denominator() {
        use pulsar_obs::CancelReason;
        let study = DfStudy::new(put(), tiny_mc());
        let cal = study.calibrate().unwrap();
        let token = CancelToken::new();
        token.cancel(CancelReason::User);
        let (curves, report) = study
            .coverage_durable(&cal, &[10e3], &[1.0], &token, None)
            .unwrap();
        assert_eq!(report.samples, 0, "nothing ran, nothing counted");
        assert_eq!(curves[0].completeness.done, 0);
        assert_eq!(curves[0].completeness.truncated, Some("interrupted"));
        assert!(!curves[0].completeness.is_complete());
    }

    #[test]
    fn pulse_resume_matches_the_uninterrupted_run() {
        let study = PulseStudy::new(put(), tiny_mc(), Polarity::PositiveGoing);
        let cal = study.calibrate().unwrap();
        let rs = [10e3, 100e3];
        let path = tmp("pulse-trunc");
        let _ = std::fs::remove_file(&path);
        let spec = study.faulty_checkpoint_spec(cal.w_in, &rs);
        let ck = Checkpoint::create(&path, spec).unwrap();
        let full = study
            .try_faulty_wouts_durable(cal.w_in, &rs, &CancelToken::new(), Some(&ck))
            .unwrap();
        drop(ck);

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 3 / 5]).unwrap();

        let ck = Checkpoint::open(&path, spec).unwrap();
        let resumed = study
            .try_faulty_wouts_durable(cal.w_in, &rs, &CancelToken::new(), Some(&ck))
            .unwrap();
        let full_rows: Vec<&Vec<f64>> = full.resolved_indexed().map(|(_, v)| v).collect();
        let resumed_rows: Vec<&Vec<f64>> = resumed.resolved_indexed().map(|(_, v)| v).collect();
        assert_eq!(bits(&full_rows), bits(&resumed_rows));
        assert!(resumed.is_complete());
        let _ = std::fs::remove_file(&path);
    }
}
