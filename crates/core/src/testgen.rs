//! Test generation for the pulse method (paper §5, Fig. 11).
//!
//! For a given fault site (an external ROP on a signal's on-path fan-out
//! branch), the generator:
//!
//! 1. enumerates candidate PI→PO paths through the site,
//! 2. sensitizes each (side inputs non-controlling, pulse carrier free),
//! 3. characterizes each path's pulse-width transfer with the fast
//!    logic-level engine and picks `(ω_in, ω_th)` by the region-3 rule,
//! 4. computes the path's **minimum detectable resistance** `R_min` by
//!    bisection, trying both pulse kinds (*h* and *l*),
//! 5. ranks the plans: "the best path … should be searched between paths
//!    featuring low values of ω_in and ω_th" — lowest `R_min` first.

use crate::engine::{ModelFault, ModelPath, PathInstance};
use crate::error::CoreError;
use pulsar_analog::Polarity;
use pulsar_cells::{BuiltPath, CellKind, PathFault, PathSpec, Tech};
use pulsar_logic::{paths_from_fanin, sensitize, GateKind, InputVector, Netlist, Path, SignalId};
use pulsar_timing::{PathTimingModel, TimingLibrary};

/// Knobs for [`plan_for_site`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestgenConfig {
    /// Cap on candidate paths per site.
    pub max_paths: usize,
    /// Backtrack budget per sensitization attempt.
    pub max_backtracks: usize,
    /// Slope tolerance for the region-3 knee.
    pub region_tol: f64,
    /// Relative guard above the knee when picking `ω_in`.
    pub guard: f64,
    /// Sensor-variation margin dividing the healthy output width into
    /// `ω_th` (1.1 = 10 % worst-case sensor).
    pub sensor_margin: f64,
    /// Upper end of the transfer sweep, seconds.
    pub w_hi: f64,
    /// Transfer sweep resolution.
    pub sweep_points: usize,
    /// Effective fan-out branch capacitance the defect charges, farads.
    pub c_branch: f64,
    /// `R_min` bisection bracket, ohms.
    pub r_bracket: (f64, f64),
}

impl Default for TestgenConfig {
    fn default() -> Self {
        TestgenConfig {
            max_paths: 512,
            max_backtracks: 20_000,
            region_tol: 0.08,
            guard: 0.05,
            sensor_margin: 1.1,
            w_hi: 3e-9,
            sweep_points: 60,
            // ~0.75 wire-cap share plus one gate input of the generic tech.
            c_branch: 13e-15,
            r_bracket: (50.0, 2e6),
        }
    }
}

/// A ready-to-apply pulse test for one path through the fault site.
#[derive(Debug, Clone)]
pub struct PathTestPlan {
    /// The sensitized structural path.
    pub path: Path,
    /// Primary-input vector holding the side inputs non-controlling.
    pub vector: InputVector,
    /// Chosen pulse kind at the path input (*l* = positive-going).
    pub polarity: Polarity,
    /// Injected pulse width `ω_in`, seconds.
    pub w_in: f64,
    /// Sensing threshold `ω_th`, seconds.
    pub w_th: f64,
    /// Minimum detectable defect resistance, ohms (`None`: not detectable
    /// inside the configured bracket).
    pub r_min: Option<f64>,
}

/// Generates ranked test plans for an external ROP on `site`'s on-path
/// fan-out branch. Plans come back sorted by `R_min` ascending
/// (undetectable paths last), so `plans[0]` is the paper's "best path".
///
/// # Errors
///
/// [`CoreError::NoSensitizablePath`] when no candidate path can be
/// sensitized; netlist errors propagate.
pub fn plan_for_site(
    nl: &Netlist,
    site: SignalId,
    lib: &TimingLibrary,
    cfg: &TestgenConfig,
) -> Result<Vec<PathTestPlan>, CoreError> {
    let candidates = paths_from_fanin(nl, site, cfg.max_paths)?;
    let mut plans = Vec::new();

    for path in candidates {
        // Sensitization. A blown backtrack budget just skips the path.
        let vector = match sensitize(nl, &path, cfg.max_backtracks) {
            Ok(Some(v)) => v,
            Ok(None) | Err(_) => continue,
        };

        let healthy = PathTimingModel::from_netlist_path(nl, &path, lib);
        let fault = fault_for(&path, nl, site, cfg.c_branch);

        // Try both pulse kinds; keep the better (lower R_min, then lower
        // w_in).
        let mut best: Option<PathTestPlan> = None;
        for polarity in [Polarity::PositiveGoing, Polarity::NegativeGoing] {
            let Some(candidate) = characterize(&healthy, fault, &path, &vector, polarity, cfg)?
            else {
                continue;
            };
            best = Some(match best.take() {
                None => candidate,
                Some(cur) => {
                    if plan_rank(&candidate) < plan_rank(&cur) {
                        candidate
                    } else {
                        cur
                    }
                }
            });
        }
        if let Some(p) = best {
            plans.push(p);
        }
    }

    if plans.is_empty() {
        return Err(CoreError::NoSensitizablePath {
            site: nl.signal_name(site).to_owned(),
        });
    }
    plans.sort_by(|a, b| plan_rank(a).total_cmp(&plan_rank(b)));
    Ok(plans)
}

/// Sort key: detectable plans by `R_min`, undetectable ones last.
fn plan_rank(p: &PathTestPlan) -> f64 {
    p.r_min.unwrap_or(f64::INFINITY)
}

/// Maps the external ROP at `site` onto the path's timing model.
fn fault_for(path: &Path, nl: &Netlist, site: SignalId, c_branch: f64) -> ModelFault {
    if site == path.from {
        return ModelFault::RcAtInput { c_branch };
    }
    let stage = path
        .steps
        .iter()
        .position(|s| nl.gate(s.gate).output == site)
        .expect("site lies on the path by construction");
    ModelFault::RcAfter { stage, c_branch }
}

fn characterize(
    healthy: &PathTimingModel,
    fault: ModelFault,
    path: &Path,
    vector: &InputVector,
    polarity: Polarity,
    cfg: &TestgenConfig,
) -> Result<Option<PathTestPlan>, CoreError> {
    // ω_in from the healthy curve's region-3 knee.
    let mut healthy_path = ModelPath::new(healthy.clone(), None, 0.0);
    let curve = crate::transfer::TransferCurve::measure(
        &mut healthy_path,
        polarity,
        cfg.w_hi / cfg.sweep_points as f64,
        cfg.w_hi,
        cfg.sweep_points,
    )?;
    let Some(w_in) = curve.region3_start(cfg.region_tol, cfg.guard) else {
        return Ok(None);
    };
    let w_healthy = healthy.pulse_out(w_in, polarity);
    if w_healthy <= 0.0 {
        return Ok(None);
    }
    let w_th = w_healthy / cfg.sensor_margin;

    // R_min by bisection: detection (w_out < w_th) is monotone in R.
    let mut faulty = ModelPath::new(healthy.clone(), Some(fault), cfg.r_bracket.0);
    let detects = |p: &mut ModelPath, r: f64| -> Result<bool, CoreError> {
        p.set_resistance(r)?;
        Ok(p.pulse_width_out(w_in, polarity)? < w_th)
    };
    let (r_lo, r_hi) = cfg.r_bracket;
    let r_min = if !detects(&mut faulty, r_hi)? {
        None
    } else if detects(&mut faulty, r_lo)? {
        Some(r_lo)
    } else {
        let (mut lo, mut hi) = (r_lo, r_hi);
        // Bisect in log space: resistance spans decades.
        for _ in 0..48 {
            let mid = (lo.ln() + hi.ln()).exp2div2();
            if detects(&mut faulty, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    };

    Ok(Some(PathTestPlan {
        path: path.clone(),
        vector: vector.clone(),
        polarity,
        w_in,
        w_th,
        r_min,
    }))
}

/// Geometric mean helper for log-space bisection.
trait ExpDiv {
    fn exp2div2(self) -> f64;
}

impl ExpDiv for f64 {
    fn exp2div2(self) -> f64 {
        (self / 2.0).exp()
    }
}

/// Maps a structural netlist path onto a transistor-level [`PathSpec`],
/// when every gate on it exists in the cell library (NAND2/3, NOR2/3,
/// NOT). Fan-out loading is approximated with dummy inverter loads.
///
/// Returns `None` when the path contains a kind the library cannot build
/// directly (AND/OR/BUF/XOR-family).
pub fn electrical_spec(nl: &Netlist, path: &Path) -> Option<PathSpec> {
    let fanouts = nl.fanouts();
    let mut stages = Vec::with_capacity(path.len());
    let mut fanout_loads = Vec::with_capacity(path.len());
    for step in &path.steps {
        let gate = nl.gate(step.gate);
        let kind = match (gate.kind, gate.inputs.len()) {
            (GateKind::Not, 1) => CellKind::Inv,
            (GateKind::Nand, 2) => CellKind::Nand2,
            (GateKind::Nand, 3) => CellKind::Nand3,
            (GateKind::Nor, 2) => CellKind::Nor2,
            (GateKind::Nor, 3) => CellKind::Nor3,
            _ => return None,
        };
        stages.push(kind);
        fanout_loads.push(fanouts[gate.output.index()].len().saturating_sub(1));
    }
    Some(PathSpec {
        stages,
        fanout_loads,
    })
}

/// Validates a plan at the transistor level: rebuilds the plan's path as
/// a CMOS netlist, injects the external ROP at the site, and checks that
/// a defect of `r_min` dampens the pulse below `w_th` while the
/// fault-free path passes it — the electrical closure of the §5 flow.
///
/// Returns `Ok(None)` when the path contains cells outside the library.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn validate_plan_electrically(
    nl: &Netlist,
    site: SignalId,
    plan: &PathTestPlan,
    tech: &Tech,
) -> Result<Option<bool>, CoreError> {
    let Some(spec) = electrical_spec(nl, &plan.path) else {
        return Ok(None);
    };
    let Some(r_min) = plan.r_min else {
        return Ok(Some(false));
    };

    // Fault-free: the pulse must clear the threshold.
    let techs = vec![*tech; spec.len()];
    let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs);
    let healthy = clean
        .propagate_pulse(plan.w_in, plan.polarity, None)?
        .output_width;
    if healthy < plan.w_th {
        return Ok(Some(false));
    }

    // Faulty at a comfortably-past-r_min defect: must be dampened below
    // threshold. (The logic-level r_min is a model quantity; electrical
    // validation allows a 3x guard for model/electrical scale skew.)
    let Some(stage) = plan
        .path
        .steps
        .iter()
        .position(|s| nl.gate(s.gate).output == site)
        .filter(|i| i + 1 < spec.len())
    else {
        // Site on the PI branch or the last stage: the electrical builder
        // needs a downstream on-path stage; not electrically validatable
        // with this structure.
        return Ok(None);
    };
    let fault = PathFault::ExternalRop {
        stage,
        ohms: r_min * 3.0,
    };
    let mut faulty = BuiltPath::new(&spec, &fault, &techs);
    let damped = faulty
        .propagate_pulse(plan.w_in, plan.polarity, None)?
        .output_width;
    Ok(Some(damped < plan.w_th))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_logic::{c432_like, GateKind};

    fn small_chain_netlist() -> (Netlist, SignalId) {
        // a → NOT → NAND(side b) → NOT → NOT → y
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Nand, &[g0, b], "g1").unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1], "g2").unwrap();
        let y = nl.add_gate(GateKind::Not, &[g2], "y").unwrap();
        nl.mark_output(y);
        (nl, g1)
    }

    #[test]
    fn plans_are_generated_and_ranked() {
        let (nl, site) = small_chain_netlist();
        let lib = TimingLibrary::generic();
        let plans = plan_for_site(&nl, site, &lib, &TestgenConfig::default()).unwrap();
        assert!(!plans.is_empty());
        // Ranked ascending by R_min.
        for w in plans.windows(2) {
            assert!(plan_rank(&w[0]) <= plan_rank(&w[1]));
        }
        let best = &plans[0];
        assert!(best.w_in > 0.0 && best.w_th > 0.0 && best.w_th < best.w_in);
        let r = best
            .r_min
            .expect("a mid-path ROP on a short chain is detectable");
        assert!(r > 50.0 && r < 2e6, "R_min {r} out of bracket");
    }

    #[test]
    fn detection_holds_at_r_min_and_fails_below() {
        let (nl, site) = small_chain_netlist();
        let lib = TimingLibrary::generic();
        let cfg = TestgenConfig::default();
        let plans = plan_for_site(&nl, site, &lib, &cfg).unwrap();
        let best = &plans[0];
        let r_min = best.r_min.unwrap();

        let healthy = PathTimingModel::from_netlist_path(&nl, &best.path, &lib);
        let fault = fault_for(&best.path, &nl, site, cfg.c_branch);
        let mut p = ModelPath::new(healthy, Some(fault), r_min);
        p.set_resistance(r_min * 1.02).unwrap();
        assert!(p.pulse_width_out(best.w_in, best.polarity).unwrap() < best.w_th);
        p.set_resistance(r_min * 0.7).unwrap();
        assert!(p.pulse_width_out(best.w_in, best.polarity).unwrap() >= best.w_th);
    }

    #[test]
    fn works_on_the_c432_like_benchmark() {
        let nl = c432_like();
        let lib = TimingLibrary::generic();
        let cfg = TestgenConfig {
            max_paths: 64,
            ..TestgenConfig::default()
        };
        // Use a mid-circuit gate output as fault site.
        let site = nl.gates()[40].output;
        match plan_for_site(&nl, site, &lib, &cfg) {
            Ok(plans) => {
                assert!(!plans.is_empty());
                // Plans with R_min must dominate the ranking head.
                if plans[0].r_min.is_none() {
                    assert!(plans.iter().all(|p| p.r_min.is_none()));
                }
            }
            Err(CoreError::NoSensitizablePath { .. }) => {
                // Acceptable for an unlucky site; the Fig. 11 experiment
                // iterates over many sites.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn c17_plans_validate_electrically() {
        use pulsar_logic::c17;
        let nl = c17();
        let lib = TimingLibrary::generic();
        let cfg = TestgenConfig::default();
        let tech = Tech::generic_180nm();

        let mut validated = 0;
        for g in nl.gates() {
            let site = g.output;
            let Ok(plans) = plan_for_site(&nl, site, &lib, &cfg) else {
                continue;
            };
            let plan = &plans[0];
            // (None = PO-adjacent site: structurally unvalidatable.)
            if let Some(ok) = validate_plan_electrically(&nl, site, plan, &tech).unwrap() {
                assert!(
                    ok,
                    "plan for site {} failed electrical closure: {plan:?}",
                    nl.signal_name(site)
                );
                validated += 1;
            }
        }
        assert!(
            validated >= 2,
            "c17 must yield electrically-validated plans, got {validated}"
        );
    }

    #[test]
    fn electrical_spec_maps_library_kinds_only() {
        use pulsar_logic::GateKind;
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g0 = nl.add_gate(GateKind::Nand, &[a, b], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Xor, &[g0, b], "g1").unwrap();
        nl.mark_output(g1);
        let paths = pulsar_logic::enumerate_paths(&nl, None, 10).unwrap();
        let through_xor = paths.iter().find(|p| p.len() == 2).unwrap();
        assert!(
            electrical_spec(&nl, through_xor).is_none(),
            "XOR is not in the library"
        );
        let nand_only = paths.iter().find(|p| p.len() == 1 && p.from == a);
        if let Some(p) = nand_only {
            // A path ending mid-circuit is not PI→PO; paths are always
            // PI→PO here, so p ends at the XOR — skip.
            let _ = p;
        }
    }

    #[test]
    fn site_on_primary_input_uses_front_rc() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let y = nl.add_gate(GateKind::Not, &[g0], "y").unwrap();
        nl.mark_output(y);
        let lib = TimingLibrary::generic();
        let plans = plan_for_site(&nl, a, &lib, &TestgenConfig::default()).unwrap();
        assert!(
            plans[0].r_min.is_some(),
            "input-branch ROP must be detectable"
        );
    }
}
