//! Canonical config-digest representations.
//!
//! The FNV-1a run digest ([`pulsar_obs::config_digest`]) identifies a run
//! configuration in manifests, checkpoints, and — since the serve daemon
//! — cross-job cache keys. Whether a request arrives through the one-shot
//! CLI or over the daemon socket, the *same configuration must hash to
//! the same digest*, or the whole-result cache could never hit and the
//! "bit-identical to the one-shot CLI" guarantee would be unverifiable.
//! These helpers are therefore the single source of the digest input
//! strings; the CLI and `pulsar-serve` both call them.

use pulsar_mc::AdaptivePolicy;

/// The digest representation of a `pulsar study` run: kind (`df` |
/// `pulse`), sample count, seed, resistance sweep, parameter factors,
/// and the adaptive configuration. Byte-compatible with the string the
/// CLI has hashed since the manifest was introduced, so digests stay
/// stable across the serve refactor.
pub fn study_digest_repr(
    kind: &str,
    samples: usize,
    seed: u64,
    rs: &[f64],
    factors: &[f64],
    adaptive: bool,
    policy: &AdaptivePolicy,
) -> String {
    format!(
        "study kind={kind} samples={samples} seed={seed} r={rs:?} factors={factors:?} \
         adaptive={adaptive} policy={policy:?}"
    )
}

/// The digest representation of a `pulsar campaign` run: the site stride
/// and the full netlist text. Byte-compatible with the CLI's historical
/// string.
pub fn campaign_digest_repr(stride: usize, netlist_text: &str) -> String {
    format!("stride={stride}\n{netlist_text}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_repr_is_stable() {
        let policy = AdaptivePolicy::new(0.15, 24);
        let s = study_digest_repr("df", 24, 2007, &[1e3, 30e3], &[0.9, 1.1], false, &policy);
        assert!(s.starts_with("study kind=df samples=24 seed=2007 r=[1000.0, 30000.0]"));
        assert!(s.contains("factors=[0.9, 1.1] adaptive=false policy="));
    }

    #[test]
    fn campaign_repr_is_stable() {
        assert_eq!(campaign_digest_repr(2, "netlist"), "stride=2\nnetlist");
    }
}
