//! The pulse-coverage study on the **logic-level engine** — the same
//! methodology as [`PulseStudy`](crate::PulseStudy) but with
//! [`ModelPath`] instances instead of transistor-level transients.
//! Orders of magnitude faster, so whole-circuit campaigns can afford
//! Monte Carlo; `tests/cross_engine.rs` and the `ext_engine_ablation`
//! experiment check it tracks the electrical reference.

use crate::calib::{calibrate_pulse, PulseCalibration};
use crate::durable::Completeness;
use crate::engine::{ModelFault, ModelPath, PathInstance};
use crate::error::CoreError;
use crate::study::{CoverageCurve, McConfig};
use crate::transfer::TransferCurve;
use pulsar_analog::Polarity;
use pulsar_mc::Gaussian;
use pulsar_timing::{PathElement, PathTimingModel};
use rand::rngs::StdRng;

/// Pulse study on the logic-level engine.
#[derive(Debug, Clone)]
pub struct ModelPulseStudy {
    /// Healthy path model (per-stage Monte Carlo scaling is applied to
    /// its gate elements).
    pub healthy: PathTimingModel,
    /// Defect mapping swept by the study.
    pub fault: ModelFault,
    /// Monte Carlo setup.
    pub mc: McConfig,
    /// Injected pulse polarity.
    pub polarity: Polarity,
    /// Slope tolerance for the region-3 knee.
    pub region_tol: f64,
    /// Relative guard above the knee for `ω_in`.
    pub guard: f64,
    /// Sensor-variation margin for `ω_th⁰`.
    pub sensor_margin: f64,
    /// Transfer sweep `(w_lo, w_hi, points)`.
    pub sweep: (f64, f64, usize),
}

impl ModelPulseStudy {
    /// A study with the paper's margins.
    pub fn new(
        healthy: PathTimingModel,
        fault: ModelFault,
        mc: McConfig,
        polarity: Polarity,
    ) -> Self {
        ModelPulseStudy {
            healthy,
            fault,
            mc,
            polarity,
            region_tol: 0.08,
            // The model's filtering knee is sharper than the electrical
            // one (per-stage attenuation compounds linearly), so slow
            // Monte Carlo instances need more headroom above it.
            guard: 0.35,
            sensor_margin: 1.1,
            sweep: (60e-12, 1.6e-9, 60),
        }
    }

    fn gate_count(&self) -> usize {
        self.healthy
            .elements()
            .iter()
            .filter(|e| matches!(e, PathElement::Gate { .. }))
            .count()
    }

    /// One Monte Carlo instance of the healthy model plus the generator
    /// width factor — same draw order for calibration and coverage runs.
    fn draw(&self, rng: &mut StdRng) -> (PathTimingModel, f64) {
        let sigma = self.mc.variation.sigma;
        let g = Gaussian::new(1.0, sigma);
        let lo = (1.0 - 4.0 * sigma).max(0.05);
        let hi = 1.0 + 4.0 * sigma;
        let factors: Vec<f64> = (0..self.gate_count())
            .map(|_| g.sample_clamped(rng, lo, hi))
            .collect();
        let gen_factor = g.sample_clamped(rng, lo, hi);
        (self.healthy.with_stage_factors(&factors), gen_factor)
    }

    /// The nominal fault-free transfer curve.
    ///
    /// # Errors
    ///
    /// Rejects degenerate sweeps.
    pub fn nominal_curve(&self) -> Result<TransferCurve, CoreError> {
        let mut p = ModelPath::new(self.healthy.clone(), None, 0.0);
        let (lo, hi, n) = self.sweep;
        TransferCurve::measure(&mut p, self.polarity, lo, hi, n)
    }

    /// Fault-free output widths over the Monte Carlo sample at `w_in`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn fault_free_wouts(&self, w_in: f64) -> Result<Vec<f64>, CoreError> {
        let mc = driver(&self.mc);
        mc.run(move |_, rng| {
            let (inst, gen_factor) = self.draw(rng);
            let mut p = ModelPath::new(inst, None, 0.0);
            p.pulse_width_out(w_in * gen_factor, self.polarity)
        })
        .into_iter()
        .collect()
    }

    /// Calibrates `(ω_in⁰, ω_th⁰)` per the paper's rule.
    ///
    /// # Errors
    ///
    /// Fails when no asymptotic region exists or a fault-free instance
    /// dampens the pulse.
    pub fn calibrate(&self) -> Result<PulseCalibration, CoreError> {
        let curve = self.nominal_curve()?;
        let w_in = curve.region3_start(self.region_tol, self.guard).ok_or(
            CoreError::EmptyCalibration {
                what: "transfer curve asymptotic region",
            },
        )?;
        let wouts = self.fault_free_wouts(w_in)?;
        calibrate_pulse(
            &curve,
            &wouts,
            self.region_tol,
            self.guard,
            self.sensor_margin,
        )
    }

    /// Faulty output widths `wouts[sample][r_index]`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn faulty_wouts(&self, w_in: f64, r_values: &[f64]) -> Result<Vec<Vec<f64>>, CoreError> {
        let r_values = r_values.to_vec();
        let mc = driver(&self.mc);
        mc.run(move |_, rng| {
            let (inst, gen_factor) = self.draw(rng);
            let mut p = ModelPath::new(inst, Some(self.fault), r_values[0]);
            let mut row = Vec::with_capacity(r_values.len());
            for &r in &r_values {
                p.set_resistance(r)?;
                row.push(p.pulse_width_out(w_in * gen_factor, self.polarity)?);
            }
            Ok(row)
        })
        .into_iter()
        .collect()
    }

    /// `C_pulse(R)` curves at each `ω_th = factor × ω_th⁰`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn coverage(
        &self,
        calib: &PulseCalibration,
        r_values: &[f64],
        th_factors: &[f64],
    ) -> Result<Vec<CoverageCurve>, CoreError> {
        let wouts = self.faulty_wouts(calib.w_in, r_values)?;
        Ok(th_factors
            .iter()
            .map(|&f| {
                let th = f * calib.w_th;
                let coverage = (0..r_values.len())
                    .map(|ri| {
                        let detected = wouts.iter().filter(|row| row[ri] < th).count();
                        detected as f64 / wouts.len().max(1) as f64
                    })
                    .collect();
                CoverageCurve {
                    factor: f,
                    resistance: r_values.to_vec(),
                    coverage,
                    // The closed-form timing model cannot fail per sample.
                    unresolved: 0.0,
                    completeness: Completeness::full(wouts.len()),
                }
            })
            .collect())
    }
}

fn driver(mc: &McConfig) -> pulsar_mc::MonteCarlo {
    let d = pulsar_mc::MonteCarlo::new(mc.samples, mc.seed);
    match mc.threads {
        Some(t) => d.with_threads(t),
        None => d,
    }
}

/// Reduced-clock DF study on the logic-level engine — the model-side
/// counterpart of [`DfStudy`](crate::DfStudy), sharing its calibration
/// rule and coverage definition.
#[derive(Debug, Clone)]
pub struct ModelDfStudy {
    /// Healthy path model.
    pub healthy: PathTimingModel,
    /// Defect mapping swept by the study.
    pub fault: ModelFault,
    /// Monte Carlo setup.
    pub mc: McConfig,
    /// Nominal flop timing.
    pub ff: crate::df::FfTiming,
    /// Clock-uncertainty margin for `T₀` calibration (paper: 0.9).
    pub clock_margin: f64,
}

impl ModelDfStudy {
    /// A study with the paper's margins.
    pub fn new(healthy: PathTimingModel, fault: ModelFault, mc: McConfig) -> Self {
        ModelDfStudy {
            healthy,
            fault,
            mc,
            ff: crate::df::FfTiming::nominal(),
            clock_margin: 0.9,
        }
    }

    fn gate_count(&self) -> usize {
        self.healthy
            .elements()
            .iter()
            .filter(|e| matches!(e, PathElement::Gate { .. }))
            .count()
    }

    fn draw(&self, rng: &mut StdRng) -> (PathTimingModel, crate::df::FfTiming) {
        let sigma = self.mc.variation.sigma;
        let g = Gaussian::new(1.0, sigma);
        let lo = (1.0 - 4.0 * sigma).max(0.05);
        let hi = 1.0 + 4.0 * sigma;
        let factors: Vec<f64> = (0..self.gate_count())
            .map(|_| g.sample_clamped(rng, lo, hi))
            .collect();
        let ff = self.mc.variation.sample_ff(self.ff, rng);
        (self.healthy.with_stage_factors(&factors), ff)
    }

    /// Per-instance fault-free slack needs.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn fault_free_needs(&self) -> Result<Vec<f64>, CoreError> {
        driver(&self.mc)
            .run(move |_, rng| {
                let (inst, ff) = self.draw(rng);
                let mut p = ModelPath::new(inst, None, 0.0);
                Ok(p.worst_delay()? + ff.overhead())
            })
            .into_iter()
            .collect()
    }

    /// Calibrates `T₀` (zero false positives at `clock_margin · T₀`).
    ///
    /// # Errors
    ///
    /// Propagates engine failures; fails on empty samples.
    pub fn calibrate(&self) -> Result<crate::calib::DfCalibration, CoreError> {
        crate::calib::calibrate_t0(&self.fault_free_needs()?, self.clock_margin)
    }

    /// `C_del(R)` curves at each `T = factor × T₀`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn coverage(
        &self,
        calib: &crate::calib::DfCalibration,
        r_values: &[f64],
        t_factors: &[f64],
    ) -> Result<Vec<CoverageCurve>, CoreError> {
        let r_vec = r_values.to_vec();
        let needs: Vec<Vec<f64>> = driver(&self.mc)
            .run(move |_, rng| {
                let (inst, ff) = self.draw(rng);
                let mut p = ModelPath::new(inst, Some(self.fault), r_vec[0]);
                let mut row = Vec::with_capacity(r_vec.len());
                for &r in &r_vec {
                    p.set_resistance(r)?;
                    row.push(p.worst_delay()? + ff.overhead());
                }
                Ok(row)
            })
            .into_iter()
            .collect::<Result<_, CoreError>>()?;

        Ok(t_factors
            .iter()
            .map(|&f| {
                let t_test = f * calib.t0;
                let coverage = (0..r_values.len())
                    .map(|ri| {
                        let detected = needs.iter().filter(|row| t_test < row[ri]).count();
                        detected as f64 / needs.len().max(1) as f64
                    })
                    .collect();
                CoverageCurve {
                    factor: f,
                    resistance: r_values.to_vec(),
                    coverage,
                    // The closed-form timing model cannot fail per sample.
                    unresolved: 0.0,
                    completeness: Completeness::full(needs.len()),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::variation::VariationModel;
    use pulsar_timing::GateTimingModel;

    fn healthy() -> PathTimingModel {
        let inv = GateTimingModel::new(95e-12, 75e-12, 70e-12, 260e-12);
        PathTimingModel::new(vec![
            PathElement::Gate {
                model: inv,
                inverting: true,
                slow_rise: 0.0,
                slow_fall: 0.0
            };
            7
        ])
    }

    fn study() -> ModelPulseStudy {
        ModelPulseStudy::new(
            healthy(),
            ModelFault::RcAfter {
                stage: 1,
                c_branch: 13e-15,
            },
            McConfig {
                variation: VariationModel::paper(),
                ..McConfig::paper(40, 9)
            },
            Polarity::PositiveGoing,
        )
    }

    #[test]
    fn calibration_has_no_false_positives() {
        let s = study();
        let cal = s.calibrate().unwrap();
        for w in s.fault_free_wouts(cal.w_in).unwrap() {
            assert!(w >= s.sensor_margin * cal.w_th - 1e-18);
        }
    }

    #[test]
    fn coverage_curve_is_sigmoidal_in_r() {
        let s = study();
        let cal = s.calibrate().unwrap();
        let rs = [500.0, 5e3, 20e3, 60e3, 200e3];
        let curves = s.coverage(&cal, &rs, &[1.0]).unwrap();
        let c = &curves[0].coverage;
        assert!(c[0] < 0.2, "benign resistance must mostly pass: {c:?}");
        assert!(c[4] > 0.9, "a 200 kΩ open must be caught: {c:?}");
        for w in c.windows(2) {
            assert!(w[1] >= w[0] - 0.15, "roughly monotone coverage: {c:?}");
        }
    }

    #[test]
    fn model_study_runs_are_reproducible() {
        let s = study();
        let a = s.fault_free_wouts(300e-12).unwrap();
        let b = s.fault_free_wouts(300e-12).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn model_df_study_mirrors_the_electrical_methodology() {
        let mc = McConfig {
            variation: VariationModel::paper(),
            ..McConfig::paper(40, 9)
        };
        let s = ModelDfStudy::new(
            healthy(),
            ModelFault::RcAfter {
                stage: 1,
                c_branch: 13e-15,
            },
            mc,
        );
        let needs = s.fault_free_needs().unwrap();
        let cal = s.calibrate().unwrap();
        for n in &needs {
            assert!(0.9 * cal.t0 >= *n - 1e-18, "false positive at 0.9 T0");
        }
        let rs = [500.0, 20e3, 200e3];
        let curves = s.coverage(&cal, &rs, &[0.9, 1.0, 1.1]).unwrap();
        // Coverage grows with R and shrinks with T.
        for c in &curves {
            assert!(c.coverage[2] >= c.coverage[0] - 1e-12);
        }
        assert!(curves[0].coverage[2] >= curves[2].coverage[2] - 1e-12);
        assert!(
            curves[1].coverage[2] > 0.9,
            "200 kΩ must fail DF: {curves:?}"
        );
    }

    #[test]
    fn model_study_is_fast_enough_for_big_samples() {
        // 2000 MC instances in well under a second — the point of the
        // logic-level engine.
        let mut s = study();
        s.mc.samples = 2000;
        let t0 = std::time::Instant::now();
        let wouts = s.fault_free_wouts(300e-12).unwrap();
        assert_eq!(wouts.len(), 2000);
        assert!(t0.elapsed().as_secs_f64() < 5.0, "took {:?}", t0.elapsed());
    }
}
