use std::fmt;

/// Errors surfaced by the pulse-testing methodology layer.
///
/// Wraps the substrate errors (electrical solver, logic netlist) and adds
/// methodology-level failures (no sensitizable path, empty calibration
/// sample).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Electrical simulation failed.
    Analog(pulsar_analog::Error),
    /// Netlist processing failed.
    Logic(pulsar_logic::LogicError),
    /// No path through the fault site could be sensitized.
    NoSensitizablePath {
        /// Name of the fault-site signal.
        site: String,
    },
    /// A calibration step was asked to operate on an empty sample set or
    /// an empty sweep.
    EmptyCalibration {
        /// Which calibration input was empty.
        what: &'static str,
    },
    /// The requested measurement is not supported by this engine (e.g.
    /// bridge defects on the logic-level engine).
    Unsupported {
        /// What was requested.
        what: &'static str,
    },
    /// Too many Monte Carlo samples stayed failed after all permitted
    /// retries — the study result would be statistically untrustworthy,
    /// so the run aborts instead of returning a silently biased curve.
    FailureBudgetExceeded {
        /// Aggregate accounting: counts by error kind, the worst sample
        /// indices, and the retry histogram.
        report: Box<crate::resilience::FailureReport>,
    },
    /// The configuration failed the static lint preflight: a structural
    /// error no retry can fix. Raised *before* any sample runs, so the
    /// failure budget and retry machinery are never engaged.
    LintRejected {
        /// The full lint report (error-severity findings included).
        report: Box<pulsar_lint::LintReport>,
    },
    /// A worker panic was caught by the opt-in containment path
    /// ([`ResilienceConfig::contain_panics`](crate::ResilienceConfig)) and
    /// converted into an ordinary per-sample failure, so it counts against
    /// the failure budget instead of unwinding the whole run.
    Panic {
        /// The captured panic message.
        message: String,
    },
    /// A checkpoint file could not be used for resume: unreadable,
    /// malformed beyond the torn-tail tolerance, or recorded under a
    /// different configuration (digest/seed/sample-count mismatch).
    Checkpoint {
        /// What was wrong with the checkpoint.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Analog(e) => write!(f, "electrical simulation failed: {e}"),
            CoreError::Logic(e) => write!(f, "netlist processing failed: {e}"),
            CoreError::NoSensitizablePath { site } => {
                write!(f, "no sensitizable path through fault site `{site}`")
            }
            CoreError::EmptyCalibration { what } => {
                write!(f, "calibration input `{what}` is empty")
            }
            CoreError::Unsupported { what } => write!(f, "unsupported on this engine: {what}"),
            CoreError::FailureBudgetExceeded { report } => {
                write!(f, "Monte Carlo failure budget exceeded: {report}")
            }
            CoreError::LintRejected { report } => {
                write!(
                    f,
                    "configuration rejected by static lint ({}); first finding: {}",
                    report.summary(),
                    report
                        .errors()
                        .next()
                        .map(|d| format!("[{}] {}: {}", d.code, d.subject, d.message))
                        .unwrap_or_else(|| "none".to_owned())
                )
            }
            CoreError::Panic { message } => {
                write!(f, "sample worker panicked: {message}")
            }
            CoreError::Checkpoint { reason } => {
                write!(f, "checkpoint unusable: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Analog(e) => Some(e),
            CoreError::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pulsar_analog::Error> for CoreError {
    fn from(e: pulsar_analog::Error) -> Self {
        CoreError::Analog(e)
    }
}

impl From<pulsar_logic::LogicError> for CoreError {
    fn from(e: pulsar_logic::LogicError) -> Self {
        CoreError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_substrate_errors_with_source() {
        let e: CoreError = pulsar_analog::Error::SingularMatrix { row: 1 }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("electrical"));

        let e: CoreError = pulsar_logic::LogicError::UnknownSignal { name: "x".into() }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn methodology_errors_have_no_source() {
        let e = CoreError::NoSensitizablePath { site: "n42".into() };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("n42"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
