//! The measurement abstraction shared by the electrical and logic-level
//! engines, plus the fault-site description the studies run on.

use crate::error::CoreError;
use pulsar_analog::{Edge, Polarity};
use pulsar_cells::{BuiltPath, PathFault, PathSpec, RopSite, Tech};
use pulsar_obs::{CancelToken, Recorder};
use pulsar_timing::PathTimingModel;

/// The defect class injected into a path under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectKind {
    /// Internal resistive open in the pull-up or pull-down network of the
    /// faulted stage (paper Fig. 1a).
    InternalRop {
        /// Which network carries the defect.
        site: RopSite,
    },
    /// External resistive open on the stage's on-path fan-out branch
    /// (paper Fig. 1b) — "expected to represent the worst case for our
    /// method" (§4), hence the default in the coverage studies.
    ExternalRop,
    /// Resistive bridge to a steady aggressor (paper Fig. 4).
    Bridge {
        /// Steady logic value at the aggressor output.
        aggressor_high: bool,
    },
}

/// A path structure plus a defect site: everything needed to instantiate
/// measurable path instances, nominal or Monte Carlo.
#[derive(Debug, Clone)]
pub struct PathUnderTest {
    /// The gate chain (the paper uses [`PathSpec::paper_chain`]).
    pub spec: PathSpec,
    /// The defect class.
    pub defect: DefectKind,
    /// Faulted stage index (0-based).
    pub stage: usize,
    /// Nominal technology.
    pub tech: Tech,
}

impl PathUnderTest {
    /// Maps the defect onto a [`PathFault`] at resistance `ohms`.
    pub fn fault(&self, ohms: f64) -> PathFault {
        match self.defect {
            DefectKind::InternalRop { site } => PathFault::InternalRop {
                stage: self.stage,
                site,
                ohms,
            },
            DefectKind::ExternalRop => PathFault::ExternalRop {
                stage: self.stage,
                ohms,
            },
            DefectKind::Bridge { aggressor_high } => PathFault::Bridge {
                stage: self.stage,
                ohms,
                aggressor_high,
            },
        }
    }

    /// Builds the electrical instance with per-stage technologies
    /// (the Monte Carlo hook) and initial defect resistance `r0`.
    ///
    /// # Panics
    ///
    /// Panics if `techs.len()` differs from the number of stages.
    pub fn instantiate(&self, techs: &[Tech], r0: f64) -> AnalogPath {
        AnalogPath {
            inner: BuiltPath::new(&self.spec, &self.fault(r0), techs),
        }
    }

    /// Builds the nominal electrical instance (all stages at `self.tech`).
    pub fn instantiate_nominal(&self, r0: f64) -> AnalogPath {
        self.instantiate(&vec![self.tech; self.spec.len()], r0)
    }

    /// Builds the *fault-free* electrical instance for calibration runs.
    pub fn instantiate_fault_free(&self, techs: &[Tech]) -> AnalogPath {
        AnalogPath {
            inner: BuiltPath::new(&self.spec, &PathFault::None, techs),
        }
    }

    /// Statically verifies this configuration before any sample runs.
    ///
    /// The stage index is checked against the path structure (`PL0302`),
    /// and — when a resistance sweep is supplied — every sweep point must
    /// be finite and strictly positive, and the sweep non-empty
    /// (`PL0301`). Studies run this as a preflight so a structurally
    /// broken configuration is rejected with
    /// [`CoreError::LintRejected`](crate::CoreError::LintRejected) before
    /// a single sample builds, keeping the failure budget untouched.
    pub fn lint(&self, r_values: Option<&[f64]>) -> pulsar_lint::LintReport {
        use pulsar_lint::{Code, Diagnostic};
        let mut diags = Vec::new();
        // Probe the stage range with a unit (in-domain) resistance so only
        // structural problems surface here.
        if let Err(pulsar_analog::Error::InvalidParameter {
            parameter: "stage", ..
        }) = self.fault(1.0).validate(self.spec.len())
        {
            let need = match self.defect {
                DefectKind::ExternalRop => "a downstream stage (stage + 1 < stages)",
                _ => "stage < stages",
            };
            diags.push(Diagnostic::new(
                Code::FaultStage,
                format!("stage {}", self.stage),
                format!(
                    "fault stage {} is out of range for a {}-stage path (needs {need})",
                    self.stage,
                    self.spec.len()
                ),
                "move the fault onto an existing stage",
            ));
        }
        if let Some(rs) = r_values {
            if rs.is_empty() {
                diags.push(Diagnostic::new(
                    Code::FaultResistance,
                    "resistance sweep",
                    "the defect-resistance sweep is empty",
                    "provide at least one resistance point",
                ));
            }
            for (i, &r) in rs.iter().enumerate() {
                if !(r.is_finite() && r > 0.0) {
                    diags.push(Diagnostic::new(
                        Code::FaultResistance,
                        format!("resistance sweep [{i}]"),
                        format!("defect resistance must be finite and > 0, got {r}"),
                        "keep the sweep inside the physical domain",
                    ));
                }
            }
        }
        pulsar_lint::LintReport::new(diags)
    }
}

/// One measurable path instance: the paper's two observables plus the
/// defect-resistance sweep.
///
/// Implementations: [`AnalogPath`] (transistor-level, the reference) and
/// [`ModelPath`] (logic-level timing model, for large-circuit test
/// generation).
pub trait PathInstance {
    /// Propagation delay for a single input transition, seconds.
    ///
    /// # Errors
    ///
    /// Engine-specific failures; for the electrical engine, an output
    /// that never switches inside the simulation window is reported as a
    /// non-convergence error by the caller's choice — here it surfaces as
    /// `Ok(f64::INFINITY)` so slack arithmetic stays total.
    fn delay(&mut self, input_edge: Edge) -> Result<f64, CoreError>;

    /// Output pulse width for an injected input pulse; `0.0` = dampened.
    ///
    /// # Errors
    ///
    /// Engine-specific simulation failures.
    fn pulse_width_out(&mut self, w_in: f64, polarity: Polarity) -> Result<f64, CoreError>;

    /// Changes the defect resistance.
    ///
    /// # Errors
    ///
    /// If the instance carries no defect or `ohms` is out of domain.
    fn set_resistance(&mut self, ohms: f64) -> Result<(), CoreError>;

    /// Worst (slowest) delay over both input transition directions.
    ///
    /// # Errors
    ///
    /// Propagates [`PathInstance::delay`] failures.
    fn worst_delay(&mut self) -> Result<f64, CoreError> {
        let r = self.delay(Edge::Rising)?;
        let f = self.delay(Edge::Falling)?;
        Ok(r.max(f))
    }

    /// Tightens the engine's numerical configuration for a retry at
    /// escalation `level` (1 = first retry), with time steps additionally
    /// scaled by `step_scale` ∈ [0.5, 1.0] to de-alias pathological
    /// breakpoint spacing. `level = 0` restores the default behaviour.
    ///
    /// Default: no-op — engines without numerical knobs (the logic-level
    /// model) simply re-run unchanged.
    fn harden(&mut self, level: u32, step_scale: f64) {
        let _ = (level, step_scale);
    }

    /// Enables DC warm starting for resistance sweeps on this instance:
    /// consecutive sweep points seed the operating-point solve from the
    /// previous one. Opt-in because a warm start reproduces a cold solve
    /// only within solver tolerances, not bit-exactly.
    ///
    /// Default: no-op — engines without a DC solve ignore it.
    fn set_dc_warm_start(&mut self, on: bool) {
        let _ = on;
    }

    /// Installs a per-run observability recorder so this instance's
    /// solver-level counters, histograms, and spans land in the caller's
    /// registry. Recording never changes arithmetic: with a disabled
    /// recorder (the default) every instrumentation call is a single
    /// branch.
    ///
    /// Default: no-op — engines without instrumentation drop the handle.
    fn set_recorder(&mut self, rec: Recorder) {
        let _ = rec;
    }

    /// Installs a cooperative cancellation token: a cancelled token makes
    /// the engine's next (or current, for the electrical engine's step
    /// loop) measurement abort with a cancellation error instead of
    /// running to completion. Used by the durable study entry points to
    /// honor deadlines and per-sample timeouts mid-solve.
    ///
    /// Default: no-op — engines with no interruptible inner loop finish
    /// their (fast) measurement and are cancelled at the next sample
    /// boundary instead.
    fn set_cancel(&mut self, token: CancelToken) {
        let _ = token;
    }
}

/// Transistor-level path instance (wraps [`BuiltPath`]).
#[derive(Debug)]
pub struct AnalogPath {
    inner: BuiltPath,
}

impl AnalogPath {
    /// Direct access to the underlying electrical path (waveform probing,
    /// custom stimuli).
    pub fn built_path(&mut self) -> &mut BuiltPath {
        &mut self.inner
    }
}

impl PathInstance for AnalogPath {
    fn delay(&mut self, input_edge: Edge) -> Result<f64, CoreError> {
        let out = self.inner.propagate_transition(input_edge, None)?;
        // A swallowed transition means unbounded delay for DF purposes.
        Ok(out.delay.unwrap_or(f64::INFINITY))
    }

    fn pulse_width_out(&mut self, w_in: f64, polarity: Polarity) -> Result<f64, CoreError> {
        // Width-only query: capture just the output column (the
        // measurements-only policy). Same solve, so the width is
        // bit-identical to a full-capture run.
        Ok(self.inner.pulse_width_only(w_in, polarity, None)?)
    }

    fn set_resistance(&mut self, ohms: f64) -> Result<(), CoreError> {
        self.inner
            .set_fault_resistance(ohms)
            .map_err(CoreError::from)
    }

    fn harden(&mut self, level: u32, step_scale: f64) {
        self.inner.set_robustness(level, step_scale);
    }

    fn set_dc_warm_start(&mut self, on: bool) {
        self.inner.set_dc_warm_start(on);
    }

    fn set_recorder(&mut self, rec: Recorder) {
        self.inner.set_recorder(rec);
    }

    fn set_cancel(&mut self, token: CancelToken) {
        self.inner.set_cancel(token);
    }
}

/// How a defect resistance maps onto the logic-level timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelFault {
    /// External ROP: an RC stage after `stage` with `tau = R × c_branch`.
    RcAfter {
        /// Faulted stage.
        stage: usize,
        /// Effective branch capacitance, farads.
        c_branch: f64,
    },
    /// Internal ROP: the named output edge of `stage` slows by
    /// `R × c_load`.
    EdgeSlow {
        /// Faulted stage.
        stage: usize,
        /// Slowed output edge.
        edge: Edge,
        /// Effective load capacitance, farads.
        c_load: f64,
    },
    /// External ROP on the primary input's own fan-out branch: an RC
    /// stage before the first gate.
    RcAtInput {
        /// Effective branch capacitance, farads.
        c_branch: f64,
    },
}

/// Logic-level path instance: a healthy [`PathTimingModel`] plus a fault
/// mapping; `set_resistance` re-derives the faulty model (cheap).
///
/// Bridges are *not* supported at this level (their delay depends on a
/// drive fight the abstraction cannot see); use [`AnalogPath`] for them.
#[derive(Debug, Clone)]
pub struct ModelPath {
    healthy: PathTimingModel,
    fault: Option<ModelFault>,
    current: PathTimingModel,
}

impl ModelPath {
    /// Wraps a healthy model with an optional fault mapping, initially at
    /// resistance `r0` (ignored when `fault` is `None`).
    pub fn new(healthy: PathTimingModel, fault: Option<ModelFault>, r0: f64) -> Self {
        let mut mp = ModelPath {
            current: healthy.clone(),
            healthy,
            fault,
        };
        if mp.fault.is_some() {
            mp.apply(r0);
        }
        mp
    }

    /// The currently active (possibly faulty) model.
    pub fn model(&self) -> &PathTimingModel {
        &self.current
    }

    fn apply(&mut self, ohms: f64) {
        let mut m = self.healthy.clone();
        match self.fault.expect("apply is only called with a fault") {
            ModelFault::RcAfter { stage, c_branch } => m.inject_rc_after(stage, ohms * c_branch),
            ModelFault::EdgeSlow {
                stage,
                edge,
                c_load,
            } => m.inject_edge_slow(stage, edge, ohms * c_load),
            ModelFault::RcAtInput { c_branch } => m.inject_rc_at_front(ohms * c_branch),
        }
        self.current = m;
    }
}

impl PathInstance for ModelPath {
    fn delay(&mut self, input_edge: Edge) -> Result<f64, CoreError> {
        Ok(self.current.delay(input_edge))
    }

    fn pulse_width_out(&mut self, w_in: f64, polarity: Polarity) -> Result<f64, CoreError> {
        Ok(self.current.pulse_out(w_in, polarity))
    }

    fn set_resistance(&mut self, ohms: f64) -> Result<(), CoreError> {
        if self.fault.is_none() {
            return Err(CoreError::Unsupported {
                what: "set_resistance on a fault-free model path",
            });
        }
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(CoreError::Analog(pulsar_analog::Error::InvalidParameter {
                element: "model fault",
                parameter: "ohms",
                value: ohms,
            }));
        }
        self.apply(ohms);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_timing::{GateTimingModel, PathElement};

    fn healthy_chain(n: usize) -> PathTimingModel {
        let inv = GateTimingModel::new(95e-12, 75e-12, 70e-12, 260e-12);
        PathTimingModel::new(vec![
            PathElement::Gate {
                model: inv,
                inverting: true,
                slow_rise: 0.0,
                slow_fall: 0.0
            };
            n
        ])
    }

    #[test]
    fn analog_engine_detects_dampening() {
        let put = PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::ExternalRop,
            stage: 1,
            tech: Tech::generic_180nm(),
        };
        let mut p = put.instantiate_nominal(1e3);
        let clean = p.pulse_width_out(450e-12, Polarity::PositiveGoing).unwrap();
        p.set_resistance(40e3).unwrap();
        let bad = p.pulse_width_out(450e-12, Polarity::PositiveGoing).unwrap();
        assert!(clean > 0.0);
        assert!(bad < clean);
    }

    #[test]
    fn analog_worst_delay_covers_both_edges() {
        let put = PathUnderTest {
            spec: PathSpec::inverter_chain(3),
            defect: DefectKind::InternalRop {
                site: RopSite::PullUp,
            },
            stage: 1,
            tech: Tech::generic_180nm(),
        };
        let mut p = put.instantiate_nominal(25e3);
        let worst = p.worst_delay().unwrap();
        let fast = p.delay(Edge::Falling).unwrap();
        assert!(worst >= fast);
        assert!(worst > fast + 50e-12, "one-edge ROP must split the edges");
    }

    #[test]
    fn model_engine_sweeps_resistance() {
        let mf = ModelFault::RcAfter {
            stage: 1,
            c_branch: 13e-15,
        };
        let mut p = ModelPath::new(healthy_chain(7), Some(mf), 1e3);
        let w1 = p.pulse_width_out(400e-12, Polarity::PositiveGoing).unwrap();
        p.set_resistance(60e3).unwrap();
        let w2 = p.pulse_width_out(400e-12, Polarity::PositiveGoing).unwrap();
        assert!(w2 < w1, "more resistance, more dampening: {w1:e} → {w2:e}");
    }

    #[test]
    fn model_engine_edge_slow_matches_injection() {
        let mf = ModelFault::EdgeSlow {
            stage: 1,
            edge: Edge::Rising,
            c_load: 30e-15,
        };
        let mut p = ModelPath::new(healthy_chain(5), Some(mf), 10e3);
        // Delay for the input edge that exercises stage 1's rising output
        // (two inversions upstream of stage 1's output → Rising input).
        let slow = p.delay(Edge::Rising).unwrap();
        let fast = p.delay(Edge::Falling).unwrap();
        assert!(
            slow > fast + 200e-12,
            "300 ps edge slow must show: {slow:e} vs {fast:e}"
        );
    }

    #[test]
    fn fault_free_model_rejects_resistance() {
        let mut p = ModelPath::new(healthy_chain(3), None, 0.0);
        assert!(p.set_resistance(1e3).is_err());
        // But measurements work.
        assert!(p.delay(Edge::Rising).unwrap() > 0.0);
    }

    #[test]
    fn model_rejects_unphysical_resistance() {
        let mf = ModelFault::RcAfter {
            stage: 0,
            c_branch: 1e-15,
        };
        let mut p = ModelPath::new(healthy_chain(3), Some(mf), 1e3);
        assert!(p.set_resistance(-1.0).is_err());
        assert!(p.set_resistance(f64::NAN).is_err());
    }

    #[test]
    fn put_fault_mapping() {
        let put = PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::Bridge {
                aggressor_high: true,
            },
            stage: 2,
            tech: Tech::generic_180nm(),
        };
        match put.fault(5e3) {
            PathFault::Bridge {
                stage: 2,
                ohms,
                aggressor_high: true,
            } => {
                assert_eq!(ohms, 5e3)
            }
            other => panic!("wrong mapping: {other:?}"),
        }
    }
}
