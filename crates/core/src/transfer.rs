//! The pulse-width transfer characterization `w_out = f_p(w_in)` and the
//! region-3 rule (paper §5, Fig. 10).

use crate::engine::PathInstance;
use crate::error::CoreError;
use pulsar_analog::Polarity;

/// The three regions of a path's pulse-width transfer curve (Fig. 10):
/// complete dampening, a fluctuation-sensitive attenuation band, and the
/// asymptotic (slope-one) region where test points belong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The input pulse never reaches the output.
    Dampened,
    /// The output pulse exists but is attenuated — very sensitive to
    /// parameter fluctuations, to be avoided when picking `ω_in`.
    Attenuation,
    /// Width-preserving (slope ≈ 1) region.
    Asymptotic,
}

/// A sampled transfer curve `w_out = f_p(w_in)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferCurve {
    /// Injected widths, strictly increasing, seconds.
    pub w_in: Vec<f64>,
    /// Measured output widths (0.0 = dampened), seconds.
    pub w_out: Vec<f64>,
}

impl TransferCurve {
    /// Measures the curve on `path` by sweeping `points` widths linearly
    /// over `[w_lo, w_hi]`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures; rejects an empty or inverted sweep.
    pub fn measure(
        path: &mut dyn PathInstance,
        polarity: Polarity,
        w_lo: f64,
        w_hi: f64,
        points: usize,
    ) -> Result<TransferCurve, CoreError> {
        let degenerate =
            points < 2 || !w_lo.is_finite() || !w_hi.is_finite() || w_lo <= 0.0 || w_hi <= w_lo;
        if degenerate {
            return Err(CoreError::EmptyCalibration {
                what: "transfer sweep",
            });
        }
        let mut w_in = Vec::with_capacity(points);
        let mut w_out = Vec::with_capacity(points);
        for k in 0..points {
            let w = w_lo + (w_hi - w_lo) * k as f64 / (points - 1) as f64;
            w_in.push(w);
            w_out.push(path.pulse_width_out(w, polarity)?);
        }
        Ok(TransferCurve { w_in, w_out })
    }

    /// Classifies one sweep point.
    ///
    /// A point is `Asymptotic` when its local slope — and that of every
    /// later point — stays within `tol` of 1; `Dampened` when the output
    /// is zero; `Attenuation` otherwise.
    pub fn region_of(&self, idx: usize, tol: f64) -> Region {
        if self.w_out[idx] == 0.0 {
            return Region::Dampened;
        }
        match self.region3_index(tol) {
            Some(start) if idx >= start => Region::Asymptotic,
            _ => Region::Attenuation,
        }
    }

    /// Index of the first sweep point inside region 3, if any: from there
    /// on, every local slope is ≥ `1 − tol` and the output is non-zero.
    pub fn region3_index(&self, tol: f64) -> Option<usize> {
        let n = self.w_in.len();
        if n < 2 {
            return None;
        }
        // Walk backward while the slope stays asymptotic.
        let mut start = n;
        for i in (1..n).rev() {
            if self.w_out[i] == 0.0 || self.w_out[i - 1] == 0.0 {
                break;
            }
            let slope = (self.w_out[i] - self.w_out[i - 1]) / (self.w_in[i] - self.w_in[i - 1]);
            if slope >= 1.0 - tol && slope <= 1.0 + tol {
                start = i - 1;
            } else {
                break;
            }
        }
        if start < self.w_in.len() {
            Some(start)
        } else {
            None
        }
    }

    /// The paper's §5 rule: `ω_in` should sit **at the beginning of
    /// region 3**, where the transfer is width-preserving but the pulse is
    /// as narrow (= as sensitive to defects) as robustness allows.
    /// `guard` is a relative margin (e.g. 0.05 → 5 % above the knee).
    pub fn region3_start(&self, tol: f64, guard: f64) -> Option<f64> {
        self.region3_index(tol)
            .map(|i| self.w_in[i] * (1.0 + guard))
    }

    /// Interpolated output width at an arbitrary `w`, clamped to the
    /// sweep's ends.
    pub fn output_at(&self, w: f64) -> f64 {
        if w <= self.w_in[0] {
            return self.w_out[0];
        }
        if w >= *self.w_in.last().expect("non-empty") {
            return *self.w_out.last().expect("non-empty");
        }
        let idx = self.w_in.partition_point(|&x| x < w);
        let (x0, x1) = (self.w_in[idx - 1], self.w_in[idx]);
        let (y0, y1) = (self.w_out[idx - 1], self.w_out[idx]);
        y0 + (y1 - y0) * (w - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::engine::{ModelFault, ModelPath};
    use pulsar_timing::{GateTimingModel, PathElement, PathTimingModel};

    fn chain(n: usize) -> ModelPath {
        let inv = GateTimingModel::new(95e-12, 75e-12, 70e-12, 260e-12);
        let m = PathTimingModel::new(vec![
            PathElement::Gate {
                model: inv,
                inverting: true,
                slow_rise: 0.0,
                slow_fall: 0.0
            };
            n
        ]);
        ModelPath::new(m, None, 0.0)
    }

    #[test]
    fn curve_shows_three_regions() {
        let mut p = chain(7);
        let c =
            TransferCurve::measure(&mut p, Polarity::PositiveGoing, 50e-12, 1.2e-9, 60).unwrap();
        // Early points dampened, late points asymptotic.
        assert_eq!(c.region_of(0, 0.05), Region::Dampened);
        assert_eq!(c.region_of(c.w_in.len() - 1, 0.05), Region::Asymptotic);
        // And some attenuation in between.
        let has_attenuation =
            (0..c.w_in.len()).any(|i| c.region_of(i, 0.05) == Region::Attenuation);
        assert!(has_attenuation, "curve: {:?}", c.w_out);
    }

    #[test]
    fn region3_start_is_past_all_dampened_points() {
        let mut p = chain(7);
        let c =
            TransferCurve::measure(&mut p, Polarity::PositiveGoing, 50e-12, 1.2e-9, 60).unwrap();
        let w = c
            .region3_start(0.05, 0.05)
            .expect("a healthy chain has region 3");
        // Everything dampened must be strictly below the chosen width.
        for (win, wout) in c.w_in.iter().zip(&c.w_out) {
            if *wout == 0.0 {
                assert!(*win < w);
            }
        }
        // And the chosen width itself must pass.
        let mut p2 = chain(7);
        assert!(p2.pulse_width_out(w, Polarity::PositiveGoing).unwrap() > 0.0);
    }

    #[test]
    fn faulty_path_shifts_the_knee_right() {
        let mut clean = chain(7);
        let c_clean =
            TransferCurve::measure(&mut clean, Polarity::PositiveGoing, 50e-12, 2e-9, 80).unwrap();
        let mf = ModelFault::RcAfter {
            stage: 1,
            c_branch: 13e-15,
        };
        let healthy = clean.model().clone();
        let mut faulty = ModelPath::new(healthy, Some(mf), 30e3);
        let c_faulty =
            TransferCurve::measure(&mut faulty, Polarity::PositiveGoing, 50e-12, 2e-9, 80).unwrap();
        let k_clean = c_clean.region3_start(0.05, 0.0).unwrap();
        let k_faulty = c_faulty.region3_start(0.05, 0.0).unwrap();
        assert!(
            k_faulty > k_clean,
            "a 30 kΩ external ROP must move the knee: {k_clean:e} → {k_faulty:e}"
        );
    }

    #[test]
    fn output_at_interpolates() {
        let c = TransferCurve {
            w_in: vec![1.0, 2.0, 3.0],
            w_out: vec![0.0, 1.0, 2.0],
        };
        assert_eq!(c.output_at(0.5), 0.0);
        assert_eq!(c.output_at(1.5), 0.5);
        assert_eq!(c.output_at(9.0), 2.0);
    }

    #[test]
    fn degenerate_sweeps_are_rejected() {
        let mut p = chain(3);
        assert!(TransferCurve::measure(&mut p, Polarity::PositiveGoing, 1e-10, 1e-10, 5).is_err());
        assert!(TransferCurve::measure(&mut p, Polarity::PositiveGoing, 1e-10, 1e-9, 1).is_err());
        assert!(TransferCurve::measure(&mut p, Polarity::PositiveGoing, -1.0, 1e-9, 5).is_err());
    }

    #[test]
    fn fully_dampened_curve_has_no_region3() {
        let c = TransferCurve {
            w_in: vec![1e-10, 2e-10, 3e-10],
            w_out: vec![0.0, 0.0, 0.0],
        };
        assert_eq!(c.region3_index(0.05), None);
        assert_eq!(c.region3_start(0.05, 0.05), None);
    }
}
