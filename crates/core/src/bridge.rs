//! Bridge-specific electrical analysis.
//!
//! The paper's §4 characterizes its bridge by the **critical resistance**:
//! the value below which the voltage degradation becomes a static logic
//! error (caught by ordinary functional testing) and above which only a
//! delay/pulse effect remains. Locating it fixes the left edge of the
//! Figs. 8/9 sweeps.

use crate::engine::{DefectKind, PathInstance, PathUnderTest};
use crate::error::CoreError;

/// Finds the critical resistance of the bridge in `put` by bisection:
/// the smallest resistance at which the victim still produces a clean
/// output transition (below it, the drive fight keeps the path output
/// from ever crossing `vdd/2`, i.e. a functional error).
///
/// Search is over `[r_lo, r_hi]` to within `tol` ohms.
///
/// # Errors
///
/// [`CoreError::Unsupported`] when `put` does not carry a bridge;
/// propagates simulator errors. Returns `Ok(None)` when even `r_hi`
/// produces a functional error (bracket too small).
pub fn critical_resistance(
    put: &PathUnderTest,
    r_lo: f64,
    r_hi: f64,
    tol: f64,
) -> Result<Option<f64>, CoreError> {
    if !matches!(put.defect, DefectKind::Bridge { .. }) {
        return Err(CoreError::Unsupported {
            what: "critical resistance of a non-bridge defect",
        });
    }
    let functional_error = |r: f64| -> Result<bool, CoreError> {
        let mut p = put.instantiate_nominal(r);
        // A victim that cannot complete either transition within the
        // window has a static/functional failure.
        Ok(p.worst_delay()?.is_infinite())
    };

    if functional_error(r_hi)? {
        return Ok(None);
    }
    if !functional_error(r_lo)? {
        return Ok(Some(r_lo));
    }
    let (mut lo, mut hi) = (r_lo, r_hi);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if functional_error(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(hi))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_cells::{PathSpec, Tech};

    fn bridge_put() -> PathUnderTest {
        PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::Bridge {
                aggressor_high: false,
            },
            stage: 1,
            tech: Tech::generic_180nm(),
        }
    }

    #[test]
    fn critical_resistance_is_in_the_low_kilo_ohm_range() {
        let rc = critical_resistance(&bridge_put(), 50.0, 20e3, 25.0)
            .unwrap()
            .expect("bracket contains the critical point");
        assert!(
            rc > 100.0 && rc < 5e3,
            "critical resistance {rc} outside the plausible band"
        );
        // Just above: functional; just below: broken.
        let mut above = bridge_put().instantiate_nominal(rc * 1.2);
        assert!(above.worst_delay().unwrap().is_finite());
        let mut below = bridge_put().instantiate_nominal((rc * 0.7).max(60.0));
        assert!(below.worst_delay().unwrap().is_infinite());
    }

    #[test]
    fn non_bridge_defects_are_rejected() {
        let put = PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::ExternalRop,
            stage: 1,
            tech: Tech::generic_180nm(),
        };
        assert!(matches!(
            critical_resistance(&put, 50.0, 1e3, 10.0),
            Err(CoreError::Unsupported { .. })
        ));
    }
}
