//! Pulse-test **fault simulation**: run a pattern set against a fault
//! list and report the detection matrix — the workhorse behind any
//! production test-set sign-off, and the concrete form of the paper's
//! announced "logic level fault simulation tool" (§6).
//!
//! A pulse pattern is (static vector, injection input, pulse kind,
//! `ω_in`, `ω_th`). A branch fault is an external ROP on one specific
//! fan-out branch. A pattern detects a fault when some primary output
//! that *expects* a detector-visible pulse (fault-free width ≥ `ω_th`)
//! stays silent in the faulty circuit — the paper's absence-of-transition
//! criterion. Beyond per-target checks, the matrix exposes *fortuitous*
//! coverage: patterns routinely catch faults they were not generated for,
//! which is what keeps pattern counts low.

use crate::error::CoreError;
use crate::testgen::PathTestPlan;
use pulsar_analog::Polarity;
use pulsar_logic::{GateId, Netlist, SignalId};
use pulsar_timing::{NetSim, TimingLibrary};

/// One applicable pulse test.
#[derive(Debug, Clone)]
pub struct PulsePattern {
    /// Static values of every primary input (netlist PI order).
    pub pi_values: Vec<bool>,
    /// The input carrying the pulse.
    pub inject: SignalId,
    /// Pulse kind at the injection input.
    pub polarity: Polarity,
    /// Injected width, seconds.
    pub w_in: f64,
    /// Sensing threshold at the outputs, seconds.
    pub w_th: f64,
}

impl PulsePattern {
    /// Derives the applicable pattern from a test-generation plan.
    pub fn from_plan(nl: &Netlist, plan: &PathTestPlan) -> PulsePattern {
        PulsePattern {
            pi_values: plan.vector.to_pi_bools(nl),
            inject: plan.path.from,
            polarity: plan.polarity,
            w_in: plan.w_in,
            w_th: plan.w_th,
        }
    }
}

/// An external ROP on one fan-out branch: the wire segment feeding input
/// `pin` of `gate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchFault {
    /// The consuming gate.
    pub gate: GateId,
    /// The consuming pin.
    pub pin: usize,
}

/// Every fan-out branch of the netlist — the exhaustive external-ROP
/// fault list.
pub fn all_branch_faults(nl: &Netlist) -> Vec<BranchFault> {
    nl.fanouts()
        .iter()
        .flat_map(|consumers| {
            consumers
                .iter()
                .map(|&(gate, pin)| BranchFault { gate, pin })
        })
        .collect()
}

/// The pattern × fault detection matrix.
#[derive(Debug, Clone)]
pub struct FaultSimReport {
    /// `detected[f][p]`: pattern `p` detects fault `f`.
    pub detected: Vec<Vec<bool>>,
    /// The simulated fault list, row order.
    pub faults: Vec<BranchFault>,
}

impl FaultSimReport {
    /// Fraction of faults detected by at least one pattern.
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        let hit = self
            .detected
            .iter()
            .filter(|row| row.iter().any(|d| *d))
            .count();
        hit as f64 / self.faults.len() as f64
    }

    /// Number of faults pattern `p` detects.
    pub fn detections_of_pattern(&self, p: usize) -> usize {
        self.detected.iter().filter(|row| row[p]).count()
    }

    /// Faults no pattern detects.
    pub fn undetected(&self) -> Vec<BranchFault> {
        self.detected
            .iter()
            .zip(&self.faults)
            .filter(|(row, _)| !row.iter().any(|d| *d))
            .map(|(_, f)| *f)
            .collect()
    }
}

/// Simulates `patterns` against `faults`, each fault as an RC of constant
/// `tau` seconds on its branch.
///
/// # Errors
///
/// Netlist errors (loops, vector-size mismatches) propagate.
pub fn fault_simulate(
    nl: &Netlist,
    lib: &TimingLibrary,
    patterns: &[PulsePattern],
    faults: &[BranchFault],
    tau: f64,
) -> Result<FaultSimReport, CoreError> {
    // Fault-free expectations per pattern: which POs must show a pulse of
    // at least w_th.
    let clean = NetSim::new(nl, lib);
    let mut expectations: Vec<Vec<bool>> = Vec::with_capacity(patterns.len());
    for p in patterns {
        let out = clean.run_pulse(&p.pi_values, p.inject, p.polarity, p.w_in)?;
        expectations.push(
            out.po_events
                .iter()
                .map(|e| {
                    e.and_then(|e| e.width())
                        .map(|w| w >= p.w_th)
                        .unwrap_or(false)
                })
                .collect(),
        );
    }

    let mut detected = vec![vec![false; patterns.len()]; faults.len()];
    for (fi, f) in faults.iter().enumerate() {
        let mut sim = NetSim::new(nl, lib);
        sim.inject_rc(f.gate, f.pin, tau);
        for (pi, p) in patterns.iter().enumerate() {
            // Skip patterns whose fault-free run shows nothing anywhere:
            // they can never detect by absence.
            if !expectations[pi].iter().any(|e| *e) {
                continue;
            }
            let out = sim.run_pulse(&p.pi_values, p.inject, p.polarity, p.w_in)?;
            let miss = expectations[pi]
                .iter()
                .zip(&out.po_events)
                .any(|(expect, e)| {
                    *expect
                        && e.and_then(|e| e.width())
                            .map(|w| w < p.w_th)
                            .unwrap_or(true)
                });
            detected[fi][pi] = miss;
        }
    }

    Ok(FaultSimReport {
        detected,
        faults: faults.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::testgen::{plan_for_site, TestgenConfig};
    use pulsar_logic::c17;

    fn lib() -> TimingLibrary {
        TimingLibrary::generic()
    }

    #[test]
    fn plans_detect_their_own_target_faults() {
        let nl = c17();
        let lib = lib();
        let cfg = TestgenConfig::default();

        let mut patterns = Vec::new();
        let mut targets = Vec::new();
        for g in nl.gates() {
            let site = g.output;
            let Ok(plans) = plan_for_site(&nl, site, &lib, &cfg) else {
                continue;
            };
            let plan = &plans[0];
            let Some(r_min) = plan.r_min else { continue };
            // The branch the plan's path takes out of the site.
            let step_after = plan
                .path
                .steps
                .iter()
                .position(|s| nl.gate(s.gate).output == site)
                .map(|i| i + 1)
                .unwrap_or(0);
            let Some(step) = plan.path.steps.get(step_after) else {
                continue;
            };
            patterns.push(PulsePattern::from_plan(&nl, plan));
            targets.push((
                BranchFault {
                    gate: step.gate,
                    pin: step.pin,
                },
                r_min * cfg.c_branch * 1.05,
            ));
        }
        assert!(!patterns.is_empty(), "c17 must yield plans");

        for (k, (fault, tau)) in targets.iter().enumerate() {
            let report = fault_simulate(&nl, &lib, &patterns[k..=k], &[*fault], *tau).unwrap();
            assert!(
                report.detected[0][0],
                "plan {k} must detect its own fault {fault:?} at tau {tau:e}"
            );
        }
    }

    #[test]
    fn pattern_set_covers_most_branches_fortuitously() {
        let nl = c17();
        let lib = lib();
        let cfg = TestgenConfig::default();

        let mut patterns = Vec::new();
        for g in nl.gates() {
            if let Ok(plans) = plan_for_site(&nl, g.output, &lib, &cfg) {
                patterns.push(PulsePattern::from_plan(&nl, &plans[0]));
            }
        }
        let faults = all_branch_faults(&nl);
        // A severe defect (large tau) on every branch.
        let report = fault_simulate(&nl, &lib, &patterns, &faults, 2e-9).unwrap();
        let cov = report.coverage();
        assert!(
            cov > 0.6,
            "a per-site pattern set should sweep up most branches: {cov:.2} \
             (undetected: {:?})",
            report.undetected()
        );
        // And detection counts per pattern exceed one (fortuitous hits).
        let best = (0..patterns.len())
            .map(|p| report.detections_of_pattern(p))
            .max()
            .unwrap();
        assert!(
            best > 1,
            "some pattern must catch several faults, best caught {best}"
        );
    }

    #[test]
    fn benign_fault_escapes() {
        let nl = c17();
        let lib = lib();
        let faults = all_branch_faults(&nl);
        let cfg = TestgenConfig::default();
        let mut patterns = Vec::new();
        for g in nl.gates() {
            if let Ok(plans) = plan_for_site(&nl, g.output, &lib, &cfg) {
                patterns.push(PulsePattern::from_plan(&nl, &plans[0]));
            }
        }
        // A tiny RC changes nothing.
        let report = fault_simulate(&nl, &lib, &patterns, &faults, 1e-15).unwrap();
        assert_eq!(report.coverage(), 0.0, "femtosecond defects are invisible");
    }

    #[test]
    fn fault_list_enumerates_every_branch() {
        let nl = c17();
        let faults = all_branch_faults(&nl);
        // c17: 6 NAND2 gates = 12 input branches.
        assert_eq!(faults.len(), 12);
    }
}
