//! Durable-run machinery shared by the studies and campaigns: the
//! wall-clock watchdog behind [`ResilienceConfig::deadline`] /
//! [`ResilienceConfig::sample_timeout`], and the completeness accounting
//! a truncated run reports instead of throwing its partial result away.
//!
//! [`ResilienceConfig::deadline`]: crate::ResilienceConfig
//! [`ResilienceConfig::sample_timeout`]: crate::ResilienceConfig

use crate::error::CoreError;
use crate::resilience::FailureReport;
use pulsar_mc::SampleOutcome;
use pulsar_obs::{CancelReason, CancelToken};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the watchdog thread re-checks its clocks.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

/// Wall-clock watchdog for one durable run.
///
/// One background thread owns both budgets: when the run `deadline`
/// expires it trips the *run* token with [`CancelReason::Deadline`]; when
/// a registered sample attempt outlives `sample_timeout` it trips that
/// attempt's *child* token with [`CancelReason::Timeout`], cutting one
/// stuck sample loose without ending the run. Workers touch the shared
/// registry only at attempt boundaries — the solver step loop sees
/// nothing but its token's relaxed atomic load.
///
/// With neither budget set no thread is spawned and `begin` just clones
/// the run token.
#[derive(Debug)]
pub(crate) struct Watchdog {
    run: CancelToken,
    sample_timeout: Option<Duration>,
    registry: Arc<Mutex<HashMap<usize, (CancelToken, Instant)>>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    pub(crate) fn new(
        run: CancelToken,
        deadline: Option<Duration>,
        sample_timeout: Option<Duration>,
    ) -> Watchdog {
        // A zero deadline means "no budget at all": trip synchronously so
        // the caller gets a deterministic empty-but-honest run instead of
        // racing the watchdog thread's first tick.
        if deadline.is_some_and(|d| d.is_zero()) {
            run.cancel(CancelReason::Deadline);
        }
        let registry: Arc<Mutex<HashMap<usize, (CancelToken, Instant)>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = (deadline.is_some() || sample_timeout.is_some()).then(|| {
            let run = run.clone();
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let started = Instant::now();
            std::thread::spawn(move || {
                // ordering: Relaxed — `stop` is a monotonic shutdown
                // flag; the `join()` in `Drop` provides the actual
                // happens-before edge for everything the thread did.
                while !stop.load(Ordering::Relaxed) {
                    if let Some(d) = deadline {
                        if started.elapsed() >= d {
                            run.cancel(CancelReason::Deadline);
                        }
                    }
                    if let Some(t) = sample_timeout {
                        if let Ok(reg) = registry.lock() {
                            for (token, began) in reg.values() {
                                if began.elapsed() >= t {
                                    token.cancel(CancelReason::Timeout);
                                }
                            }
                        }
                    }
                    std::thread::sleep(WATCHDOG_TICK);
                }
            })
        });
        Watchdog {
            run,
            sample_timeout,
            registry,
            stop,
            thread,
        }
    }

    /// Starts one sample attempt: returns the token the attempt should
    /// install in its solver workspace. With a sample timeout configured
    /// this is a registered child of the run token (fresh budget per
    /// attempt, so a retry under the escalated ladder gets its full
    /// allowance); otherwise it is the run token itself.
    pub(crate) fn begin(&self, index: usize) -> CancelToken {
        if self.sample_timeout.is_none() {
            return self.run.clone();
        }
        let child = self.run.child();
        if let Ok(mut reg) = self.registry.lock() {
            reg.insert(index, (child.clone(), Instant::now()));
        }
        child
    }

    /// Ends the sample attempt started by [`Watchdog::begin`].
    pub(crate) fn end(&self, index: usize) {
        if self.sample_timeout.is_none() {
            return;
        }
        if let Ok(mut reg) = self.registry.lock() {
            reg.remove(&index);
        }
    }

    /// RAII variant of [`Watchdog::begin`]: the registration is released
    /// even when the attempt unwinds (contained panics), so a poisoned
    /// sample never leaves a stale registry entry behind.
    pub(crate) fn attempt(&self, index: usize) -> (CancelToken, AttemptGuard<'_>) {
        let token = self.begin(index);
        (
            token,
            AttemptGuard {
                watchdog: self,
                index,
            },
        )
    }
}

/// Deregisters a sample attempt on drop (see [`Watchdog::attempt`]).
pub(crate) struct AttemptGuard<'a> {
    watchdog: &'a Watchdog,
    index: usize,
}

impl Drop for AttemptGuard<'_> {
    fn drop(&mut self) {
        self.watchdog.end(self.index);
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        // ordering: Relaxed — paired with the watchdog loop's Relaxed
        // poll; the `join()` below synchronizes everything else.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// How much of a durable run actually happened — the honest-partial-result
/// contract: a deadline- or interrupt-truncated run reports *what it did*
/// instead of aborting with nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Completeness {
    /// Samples the run was asked for.
    pub requested: usize,
    /// Samples that ran to a conclusion (resolved or genuinely failed).
    pub done: usize,
    /// Of `done`, how many were restored from a checkpoint instead of
    /// recomputed.
    pub resumed: usize,
    /// Why the run stopped early (`"interrupted"` / `"deadline"`), `None`
    /// for a run that finished everything.
    pub truncated: Option<&'static str>,
}

impl Completeness {
    /// A fully-complete run of `n` samples (no resume, no truncation) —
    /// what the non-durable entry points report.
    pub fn full(n: usize) -> Completeness {
        Completeness {
            requested: n,
            done: n,
            resumed: 0,
            truncated: None,
        }
    }

    /// True when every requested sample ran to a conclusion.
    pub fn is_complete(&self) -> bool {
        self.done == self.requested && self.truncated.is_none()
    }
}

/// Result of a durable Monte Carlo run ([`McConfig::try_run_samples_durable`]).
///
/// Unlike [`McRunReport`](crate::McRunReport), a slot may be `None`: the
/// run was cancelled (interrupt or deadline) before that sample finished.
/// Such samples are *not done* — they appear in [`Completeness`], never in
/// the failure accounting, and never in a coverage denominator.
///
/// [`McConfig::try_run_samples_durable`]: crate::McConfig::try_run_samples_durable
#[derive(Debug, Clone)]
pub struct DurableRun<T> {
    /// Outcome of sample `i` at index `i`; `None` = cut short by run
    /// cancellation.
    pub outcomes: Vec<Option<SampleOutcome<T, CoreError>>>,
    /// Failure accounting over the *done* samples only.
    pub failures: FailureReport,
    /// How much of the run happened.
    pub completeness: Completeness,
}

impl<T> DurableRun<T> {
    /// Resolved values with their sample indices, in index order.
    pub fn resolved_indexed(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().and_then(|o| o.value()).map(|v| (i, v)))
    }

    /// True when every requested sample ran to a conclusion.
    pub fn is_complete(&self) -> bool {
        self.completeness.is_complete()
    }

    /// Converts a *complete* run into the classic
    /// [`McRunReport`](crate::McRunReport); `None` when any sample was cut
    /// short (use the per-slot outcomes and completeness instead).
    pub fn into_run_report(self) -> Option<crate::McRunReport<T>> {
        if !self.is_complete() {
            return None;
        }
        let outcomes: Option<Vec<_>> = self.outcomes.into_iter().collect();
        Some(crate::McRunReport {
            outcomes: outcomes?,
            failures: self.failures,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn watchdog_trips_deadline_on_the_run_token() {
        let run = CancelToken::new();
        let _wd = Watchdog::new(run.clone(), Some(Duration::from_millis(10)), None);
        let start = Instant::now();
        while !run.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(run.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn watchdog_times_out_a_registered_sample_without_killing_the_run() {
        let run = CancelToken::new();
        let wd = Watchdog::new(run.clone(), None, Some(Duration::from_millis(10)));
        let tok = wd.begin(3);
        let start = Instant::now();
        while !tok.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(tok.cancelled(), Some(CancelReason::Timeout));
        assert_eq!(run.cancelled(), None, "run token survives a sample timeout");
        wd.end(3);
    }

    #[test]
    fn deregistered_samples_are_not_timed_out() {
        let run = CancelToken::new();
        let wd = Watchdog::new(run.clone(), None, Some(Duration::from_millis(20)));
        let tok = wd.begin(0);
        wd.end(0);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(tok.cancelled(), None);
    }

    #[test]
    fn without_budgets_no_thread_and_run_token_passthrough() {
        let run = CancelToken::new();
        let wd = Watchdog::new(run.clone(), None, None);
        assert!(wd.thread.is_none());
        let tok = wd.begin(1);
        run.cancel(CancelReason::User);
        assert_eq!(tok.cancelled(), Some(CancelReason::User));
    }

    #[test]
    fn completeness_reports_truncation() {
        let c = Completeness {
            requested: 64,
            done: 40,
            resumed: 10,
            truncated: Some("deadline"),
        };
        assert!(!c.is_complete());
        let full = Completeness {
            requested: 64,
            done: 64,
            resumed: 0,
            truncated: None,
        };
        assert!(full.is_complete());
    }
}
