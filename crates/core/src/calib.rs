//! Zero-false-positive calibration of both test methods (paper §4).
//!
//! Both methods trade test quality for yield. The paper calibrates
//! conservatively, "giving priority to yield":
//!
//! * **DF testing**: `T₀` is chosen from fault-free Monte Carlo runs so
//!   that *no* instance fails even when the applied period drops 10 %
//!   below nominal (clock-distribution uncertainty).
//! * **Pulse testing**: `(ω_in⁰, ω_th⁰)` are chosen so that no fault-free
//!   instance is rejected even for a 10 % worst-case variation of the
//!   sensing circuit's threshold; `ω_in⁰` sits at the start of the
//!   transfer curve's asymptotic region (§5).

use crate::error::CoreError;
use crate::transfer::TransferCurve;

/// Calibrated DF-test clock period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfCalibration {
    /// Nominal test clock period `T₀`, seconds.
    pub t0: f64,
}

/// Calibrated pulse-test operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseCalibration {
    /// Nominal injected pulse width `ω_in⁰`, seconds.
    pub w_in: f64,
    /// Nominal sensing threshold `ω_th⁰`, seconds.
    pub w_th: f64,
}

/// Chooses `T₀` from the fault-free Monte Carlo sample.
///
/// `fault_free_slack_needs[s]` is instance `s`'s worst path delay plus
/// flop overhead (`d_s + τ_CQ^s + τ_DC^s`). The returned `T₀` satisfies
/// `clock_margin·T₀ ≥ max_s(need)`, i.e. zero false positives even when
/// the actually-applied period is `clock_margin` (typically 0.9) of
/// nominal.
///
/// # Errors
///
/// [`CoreError::EmptyCalibration`] on an empty sample.
pub fn calibrate_t0(
    fault_free_slack_needs: &[f64],
    clock_margin: f64,
) -> Result<DfCalibration, CoreError> {
    if fault_free_slack_needs.is_empty() {
        return Err(CoreError::EmptyCalibration {
            what: "fault-free delay sample",
        });
    }
    let worst = fault_free_slack_needs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    Ok(DfCalibration {
        t0: worst / clock_margin,
    })
}

/// Chooses `(ω_in⁰, ω_th⁰)`.
///
/// `nominal_curve` is the fault-free nominal transfer curve (region-3 rule
/// picks `ω_in⁰` from it); `fault_free_wout[s]` is instance `s`'s output
/// width at `ω_in⁰`. The threshold is set so that the *weakest* fault-free
/// instance still clears a sensor whose threshold runs `sensor_margin`
/// (typically 1.1, i.e. +10 %) above nominal:
/// `sensor_margin · ω_th⁰ ≤ min_s(w_out^s)`.
///
/// # Errors
///
/// [`CoreError::EmptyCalibration`] when the sample is empty, the curve
/// has no asymptotic region, or some fault-free instance dampens the
/// pulse entirely (no threshold can avoid false positives).
pub fn calibrate_pulse(
    nominal_curve: &TransferCurve,
    fault_free_wout: &[f64],
    region_tol: f64,
    guard: f64,
    sensor_margin: f64,
) -> Result<PulseCalibration, CoreError> {
    if fault_free_wout.is_empty() {
        return Err(CoreError::EmptyCalibration {
            what: "fault-free pulse sample",
        });
    }
    let w_in =
        nominal_curve
            .region3_start(region_tol, guard)
            .ok_or(CoreError::EmptyCalibration {
                what: "transfer curve asymptotic region",
            })?;
    let weakest = fault_free_wout
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    if weakest <= 0.0 {
        return Err(CoreError::EmptyCalibration {
            what: "fault-free instance dampened the pulse",
        });
    }
    Ok(PulseCalibration {
        w_in,
        w_th: weakest / sensor_margin,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn t0_covers_the_worst_instance_with_margin() {
        let needs = [1.0e-9, 1.1e-9, 0.9e-9];
        let c = calibrate_t0(&needs, 0.9).unwrap();
        assert!((c.t0 - 1.1e-9 / 0.9).abs() < 1e-18);
        // Even the reduced period clears every instance.
        assert!(0.9 * c.t0 >= 1.1e-9 - 1e-18);
    }

    #[test]
    fn t0_rejects_empty_sample() {
        assert!(matches!(
            calibrate_t0(&[], 0.9),
            Err(CoreError::EmptyCalibration { .. })
        ));
    }

    fn curve() -> TransferCurve {
        // Dampened until 0.2, attenuation to 0.4, then slope 1.
        TransferCurve {
            w_in: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            w_out: vec![0.0, 0.0, 0.15, 0.38, 0.48, 0.58],
        }
    }

    #[test]
    fn pulse_calibration_uses_region3_and_weakest_instance() {
        let c = curve();
        let cal = calibrate_pulse(&c, &[0.5, 0.44, 0.6], 0.1, 0.05, 1.1).unwrap();
        // Region 3 starts at w_in = 0.4 (slope (0.48-0.38)/0.1 = 1.0);
        // guard 5 %.
        assert!((cal.w_in - 0.42).abs() < 1e-12, "w_in {}", cal.w_in);
        assert!((cal.w_th - 0.4).abs() < 1e-12, "w_th {}", cal.w_th);
        // Every fault-free instance clears a +10 % sensor.
        for w in [0.5, 0.44, 0.6] {
            assert!(w >= 1.1 * cal.w_th - 1e-12);
        }
    }

    #[test]
    fn pulse_calibration_fails_without_region3() {
        let dead = TransferCurve {
            w_in: vec![0.1, 0.2],
            w_out: vec![0.0, 0.0],
        };
        assert!(calibrate_pulse(&dead, &[0.5], 0.1, 0.05, 1.1).is_err());
    }

    #[test]
    fn pulse_calibration_fails_on_dampened_fault_free_instance() {
        let c = curve();
        assert!(calibrate_pulse(&c, &[0.5, 0.0], 0.1, 0.05, 1.1).is_err());
    }

    #[test]
    fn pulse_calibration_fails_on_empty_sample() {
        let c = curve();
        assert!(calibrate_pulse(&c, &[], 0.1, 0.05, 1.1).is_err());
    }
}
