//! Crash-consistent campaign checkpoints: per-sample completion records
//! in an append-only JSONL file, so an interrupted Monte Carlo run (or
//! site campaign) resumes by *skipping* the work it already paid for.
//!
//! ## Format
//!
//! Line 1 is the header; every further line is one completed sample:
//!
//! ```text
//! {"kind":"checkpoint","version":1,"config_digest":"<16 hex>","seed":"<16 hex>","samples":64,"payload":"vec-f64"}
//! {"kind":"sample-done","index":3,"seed":"<16 hex>","outcome":"ok","attempts":1,"value":[...]}
//! ```
//!
//! Design decisions, each load-bearing:
//!
//! * **Only resolved samples are recorded** (`ok` / `recovered`). Failed
//!   samples are deterministically re-run on resume — per-sample RNG
//!   streams depend only on `(seed, index)` — so the resumed report is
//!   bit-identical to an uninterrupted run without ever serializing an
//!   error value.
//! * **`f64` values are written as hex bit patterns** (`f64::to_bits`),
//!   never decimal: the round-trip is exact by construction, which the
//!   bit-identical-resume contract requires. Seeds and digests are hex
//!   strings for the same reason — they exceed the exact-integer range
//!   of the JSON number representation (`f64`).
//! * **A kill at any byte leaves a loadable prefix.** Records are
//!   appended as single `write` calls of one complete line; the loader
//!   decodes lines until the first undecodable one (the torn tail) and
//!   ignores the rest. A torn or missing *header* degrades to an empty
//!   checkpoint rather than an error — resuming then simply redoes all
//!   samples.
//! * **Resume compacts.** [`Checkpoint::resume`] rewrites the decodable
//!   prefix to a temporary file and atomically renames it over the
//!   original, so a previously torn tail never accumulates.
//!
//! A header that parses but disagrees with the expected
//! [`CheckpointSpec`] (different config digest, master seed, sample
//! count, or payload type) is a hard [`CoreError::Checkpoint`] — resuming
//! someone else's run would silently corrupt the statistics.

use crate::error::CoreError;
use pulsar_mc::SampleOutcome;
use pulsar_obs::json::{self, json_str, Json};
use pulsar_obs::sync::{AtomicBoolLike, AtomicFamily, StdAtomics};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// The memory orderings the checkpoint poisoning protocol ships with.
/// One value, shared by production ([`Checkpoint`]) and the
/// `pulsar-check` model, so the explorer checks exactly what runs.
#[derive(Debug, Clone, Copy)]
pub struct PoisonOrderings {
    /// Ordering of the store that poisons the flag on a write failure.
    pub poison: Ordering,
    /// Ordering of every `healthy()` load.
    pub check: Ordering,
}

/// Shipped orderings: everything `Relaxed`.
///
/// The flag is a single monotonic boolean (false → true, never back).
/// Writers set it while holding the file mutex, and the append gate in
/// [`Checkpoint::record`] re-checks it under the same mutex, so the
/// mutex provides the only ordering the protocol needs; the flag itself
/// needs atomicity alone. The final `healthy()` check runs after worker
/// joins, which also synchronize. The `pulsar-check` checkpoint model
/// explores this protocol (DESIGN.md §5.8, protocol model P3) and its
/// mutation self-test proves the explorer catches a post-poison append.
pub const POISON_ORDERINGS: PoisonOrderings = PoisonOrderings {
    poison: Ordering::Relaxed, // ordering: monotonic flag; mutex/join publish it
    check: Ordering::Relaxed,  // ordering: monotonic flag; mutex/join publish it
};

/// The checkpoint poisoning core: a sticky failure flag that downgrades
/// the durability promise instead of panicking mid-run. Generic over the
/// atomics family so `pulsar-check` can model-check the shipped protocol.
pub struct PoisonFlag<B: AtomicBoolLike> {
    failed: B,
}

impl<B: AtomicBoolLike> fmt::Debug for PoisonFlag<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoisonFlag")
            .field("failed", &self.failed)
            .finish()
    }
}

impl<B: AtomicBoolLike> Default for PoisonFlag<B> {
    fn default() -> Self {
        PoisonFlag::new()
    }
}

impl<B: AtomicBoolLike> PoisonFlag<B> {
    /// A fresh, healthy flag.
    pub fn new() -> Self {
        PoisonFlag {
            failed: B::new(false),
        }
    }

    /// Marks the protected resource failed. Sticky: there is no way back.
    pub fn poison(&self, ord: &PoisonOrderings) {
        self.failed.store(true, ord.poison);
    }

    /// True while no failure has been recorded.
    pub fn healthy(&self, ord: &PoisonOrderings) -> bool {
        !self.failed.load(ord.check)
    }
}

/// Checkpoint format version written in the header.
pub const CHECKPOINT_VERSION: u64 = 1;

/// What a checkpoint is *for*: the identity of the run it may resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// FNV-1a digest of the run configuration (see
    /// [`pulsar_obs::config_digest`]).
    pub config_digest: u64,
    /// The run's master seed (0 for seedless site campaigns).
    pub seed: u64,
    /// Total samples the run will execute.
    pub samples: usize,
}

/// A value that can ride in a checkpoint record. Implementations must
/// round-trip exactly — the resume-equivalence contract is bit-level.
pub trait CheckpointValue: Sized {
    /// Stable payload tag written in the header. A resume whose expected
    /// tag differs from the file's is rejected, so a `f64` checkpoint can
    /// never be decoded as a `Vec<f64>` one.
    const TAG: &'static str;
    /// Renders the value as a JSON fragment.
    fn encode_json(&self) -> String;
    /// Decodes a value from parsed JSON; `None` on shape mismatch.
    fn decode_json(v: &Json) -> Option<Self>;
}

/// Exact `f64` round-trip: the 64-bit pattern as a hex string.
pub fn encode_f64(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

/// Inverse of [`encode_f64`].
pub fn decode_f64(v: &Json) -> Option<f64> {
    let s = v.as_str()?;
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn decode_hex_u64(v: &Json) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

pub(crate) fn as_usize(v: &Json) -> Option<usize> {
    let n = v.as_num()?;
    // Counts in a checkpoint are small; anything outside the exact-f64
    // integer range is corruption.
    (n >= 0.0 && n.fract() == 0.0 && n < 2f64.powi(53)).then_some(n as usize)
}

impl CheckpointValue for f64 {
    const TAG: &'static str = "f64";
    fn encode_json(&self) -> String {
        encode_f64(*self)
    }
    fn decode_json(v: &Json) -> Option<Self> {
        decode_f64(v)
    }
}

impl CheckpointValue for Vec<f64> {
    const TAG: &'static str = "vec-f64";
    fn encode_json(&self) -> String {
        let mut out = String::with_capacity(2 + 19 * self.len());
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&encode_f64(*v));
        }
        out.push(']');
        out
    }
    fn decode_json(v: &Json) -> Option<Self> {
        match v {
            Json::Arr(items) => items.iter().map(decode_f64).collect(),
            _ => None,
        }
    }
}

/// An open checkpoint: the completed samples loaded at resume time plus
/// an append handle for recording new completions.
///
/// `record` is called from Monte Carlo worker threads at *sample*
/// granularity (never inside the solver step loop), so the internal mutex
/// is off the hot path by construction.
#[derive(Debug)]
pub struct Checkpoint<T> {
    path: PathBuf,
    spec: CheckpointSpec,
    prior: BTreeMap<usize, SampleOutcome<T, CoreError>>,
    file: Mutex<File>,
    write_failed: PoisonFlag<<StdAtomics as AtomicFamily>::Bool>,
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> CoreError {
    CoreError::Checkpoint {
        reason: format!("{what} {}: {e}", path.display()),
    }
}

fn header_line(spec: &CheckpointSpec, tag: &str) -> String {
    format!(
        "{{\"kind\":\"checkpoint\",\"version\":{CHECKPOINT_VERSION},\
         \"config_digest\":\"{:016x}\",\"seed\":\"{:016x}\",\
         \"samples\":{},\"payload\":{}}}\n",
        spec.config_digest,
        spec.seed,
        spec.samples,
        json_str(tag)
    )
}

fn record_line<T: CheckpointValue>(
    index: usize,
    stream_seed: u64,
    outcome: &str,
    attempts: u32,
    value: &T,
) -> String {
    let mut line = String::new();
    let _ = writeln!(
        line,
        "{{\"kind\":\"sample-done\",\"index\":{index},\"seed\":\"{stream_seed:016x}\",\
         \"outcome\":{},\"attempts\":{attempts},\"value\":{}}}",
        json_str(outcome),
        value.encode_json()
    );
    line
}

impl<T: CheckpointValue> Checkpoint<T> {
    /// Starts a fresh checkpoint at `path` (truncating any existing
    /// file) and writes the header.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on I/O failure.
    pub fn create(path: &Path, spec: CheckpointSpec) -> Result<Self, CoreError> {
        let mut file = File::create(path).map_err(|e| io_err("cannot create", path, &e))?;
        file.write_all(header_line(&spec, T::TAG).as_bytes())
            .map_err(|e| io_err("cannot write header to", path, &e))?;
        Ok(Checkpoint {
            path: path.to_owned(),
            spec,
            prior: BTreeMap::new(),
            file: Mutex::new(file),
            write_failed: PoisonFlag::new(),
        })
    }

    /// Resumes from an existing checkpoint at `path`: loads the decodable
    /// prefix, validates it against `spec`, compacts it (temporary file +
    /// atomic rename, so an old torn tail is dropped for good), and
    /// reopens for appending.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when the file cannot be read or
    /// rewritten, or when its header identifies a *different* run
    /// (digest, seed, sample count, or payload mismatch). A torn or
    /// absent header is not an error — it loads as zero completed
    /// samples.
    pub fn resume(path: &Path, spec: CheckpointSpec) -> Result<Self, CoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| io_err("cannot read", path, &e))?;
        let loaded = load_prefix::<T>(&text, &spec)?;

        // Compact: good header + surviving records, atomically swapped in.
        let tmp = path.with_extension("ckpt.tmp");
        let mut out = header_line(&spec, T::TAG);
        for (&index, (stream_seed, o)) in &loaded {
            let (outcome, attempts, value) = match o {
                SampleOutcome::Ok(v) => ("ok", 1, v),
                SampleOutcome::Recovered { value, attempts } => ("recovered", *attempts, value),
                SampleOutcome::Failed { .. } => unreachable!("failed samples are never loaded"),
            };
            out.push_str(&record_line(index, *stream_seed, outcome, attempts, value));
        }
        std::fs::write(&tmp, &out).map_err(|e| io_err("cannot write", &tmp, &e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err("cannot rename over", path, &e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("cannot reopen", path, &e))?;
        Ok(Checkpoint {
            path: path.to_owned(),
            spec,
            prior: loaded.into_iter().map(|(i, (_, o))| (i, o)).collect(),
            file: Mutex::new(file),
            write_failed: PoisonFlag::new(),
        })
    }

    /// Opens `path` for this run: [`Checkpoint::resume`] when the file
    /// exists, [`Checkpoint::create`] otherwise — the CLI's `--checkpoint`
    /// semantics.
    ///
    /// # Errors
    ///
    /// As for [`Checkpoint::create`] / [`Checkpoint::resume`].
    pub fn open(path: &Path, spec: CheckpointSpec) -> Result<Self, CoreError> {
        if path.exists() {
            Self::resume(path, spec)
        } else {
            Self::create(path, spec)
        }
    }

    /// The completed samples restored at resume time (empty for a fresh
    /// checkpoint), keyed by sample index. Only `Ok` / `Recovered`
    /// outcomes appear.
    pub fn prior(&self) -> &BTreeMap<usize, SampleOutcome<T, CoreError>> {
        &self.prior
    }

    /// Number of samples restored at resume time.
    pub fn resumed_count(&self) -> usize {
        self.prior.len()
    }

    /// The file backing this checkpoint.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The spec this checkpoint was opened under.
    pub fn spec(&self) -> &CheckpointSpec {
        &self.spec
    }

    /// Appends one completion record. Failed outcomes are ignored — they
    /// re-run on resume. Called from worker threads; a write error poisons
    /// the checkpoint ([`Checkpoint::healthy`]) instead of panicking
    /// mid-run.
    pub fn record(&self, index: usize, stream_seed: u64, outcome: &SampleOutcome<T, CoreError>) {
        let (kind, attempts, value) = match outcome {
            SampleOutcome::Ok(v) => ("ok", 1, v),
            SampleOutcome::Recovered { value, attempts } => ("recovered", *attempts, value),
            SampleOutcome::Failed { .. } => return,
        };
        let line = record_line(index, stream_seed, kind, attempts, value);
        let mut file = match self.file.lock() {
            Ok(f) => f,
            Err(_) => {
                self.write_failed.poison(&POISON_ORDERINGS);
                return;
            }
        };
        // Once poisoned, no further append may land: a failed write can
        // leave a half-line on disk, and anything appended after it would
        // concatenate into an undecodable line, turning "valid but
        // incomplete prefix" into a prefix truncated at the failure. The
        // gate is re-checked *under* the file mutex so a poison landed by
        // another worker is always observed before this append.
        if !self.write_failed.healthy(&POISON_ORDERINGS) {
            return;
        }
        // One write call per complete line: a kill between records never
        // tears, and a kill mid-record tears only the trailing line.
        if file.write_all(line.as_bytes()).is_err() || file.flush().is_err() {
            self.write_failed.poison(&POISON_ORDERINGS);
        }
    }

    /// False when any record append failed — the file on disk is then a
    /// valid but *incomplete* checkpoint, and the run should surface the
    /// condition instead of promising durability it no longer has.
    pub fn healthy(&self) -> bool {
        self.write_failed.healthy(&POISON_ORDERINGS)
    }

    /// Typed form of [`Checkpoint::healthy`]: the [`CoreError::Checkpoint`]
    /// a durable run must surface when the checkpoint was poisoned
    /// mid-run. Called by the study/campaign finalizers.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when a record append failed.
    pub fn ensure_healthy(&self) -> Result<(), CoreError> {
        if self.healthy() {
            Ok(())
        } else {
            Err(CoreError::Checkpoint {
                reason: format!("checkpoint write failed mid-run: {}", self.path.display()),
            })
        }
    }
}

/// Decodes the loadable prefix of a checkpoint file: header (validated
/// against `spec` when intact) followed by completion records — each with
/// its recorded stream seed — up to the first undecodable line.
#[allow(clippy::type_complexity)]
fn load_prefix<T: CheckpointValue>(
    text: &str,
    spec: &CheckpointSpec,
) -> Result<BTreeMap<usize, (u64, SampleOutcome<T, CoreError>)>, CoreError> {
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return Ok(BTreeMap::new()); // empty file: killed before the header
    };
    let Ok(header) = json::parse(first) else {
        return Ok(BTreeMap::new()); // torn header: nothing trustworthy yet
    };
    if header.get("kind").and_then(Json::as_str) != Some("checkpoint") {
        return Err(CoreError::Checkpoint {
            reason: "first line is not a checkpoint header".to_owned(),
        });
    }
    let mismatch = |what: &str, found: String, expected: String| CoreError::Checkpoint {
        reason: format!("{what} mismatch: checkpoint has {found}, this run expects {expected}"),
    };
    let version = header.get("version").and_then(Json::as_num);
    if version != Some(CHECKPOINT_VERSION as f64) {
        return Err(mismatch(
            "version",
            format!("{version:?}"),
            CHECKPOINT_VERSION.to_string(),
        ));
    }
    let digest = header.get("config_digest").and_then(decode_hex_u64);
    if digest != Some(spec.config_digest) {
        return Err(mismatch(
            "config digest",
            digest.map_or("none".to_owned(), |d| format!("{d:016x}")),
            format!("{:016x}", spec.config_digest),
        ));
    }
    let seed = header.get("seed").and_then(decode_hex_u64);
    if seed != Some(spec.seed) {
        return Err(mismatch(
            "seed",
            seed.map_or("none".to_owned(), |s| format!("{s:016x}")),
            format!("{:016x}", spec.seed),
        ));
    }
    let samples = header.get("samples").and_then(as_usize);
    if samples != Some(spec.samples) {
        return Err(mismatch(
            "sample count",
            format!("{samples:?}"),
            spec.samples.to_string(),
        ));
    }
    let payload = header.get("payload").and_then(Json::as_str);
    if payload != Some(T::TAG) {
        return Err(mismatch(
            "payload type",
            format!("{payload:?}"),
            T::TAG.to_owned(),
        ));
    }

    let mut prior = BTreeMap::new();
    for line in lines {
        let Some((index, seed, outcome)) = decode_record::<T>(line, spec.samples) else {
            break; // torn tail: everything before it is the usable prefix
        };
        // First record wins on a duplicate index (can only arise from a
        // hand-edited file; the writer emits each index at most once).
        prior.entry(index).or_insert((seed, outcome));
    }
    Ok(prior)
}

fn decode_record<T: CheckpointValue>(
    line: &str,
    samples: usize,
) -> Option<(usize, u64, SampleOutcome<T, CoreError>)> {
    let doc = json::parse(line).ok()?;
    if doc.get("kind").and_then(Json::as_str) != Some("sample-done") {
        return None;
    }
    let index = doc.get("index").and_then(as_usize)?;
    if index >= samples {
        return None;
    }
    let seed = doc.get("seed").and_then(decode_hex_u64)?;
    let attempts = doc.get("attempts").and_then(as_usize)? as u32;
    let value = T::decode_json(doc.get("value")?)?;
    let outcome = match doc.get("outcome").and_then(Json::as_str)? {
        "ok" => SampleOutcome::Ok(value),
        "recovered" if attempts >= 2 => SampleOutcome::Recovered { value, attempts },
        _ => return None,
    };
    Some((index, seed, outcome))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn spec() -> CheckpointSpec {
        CheckpointSpec {
            config_digest: 0xDEAD_BEEF_0BAD_F00D,
            seed: 42,
            samples: 8,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pulsar-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for v in [0.0, -0.0, 1.5e-300, f64::MIN_POSITIVE, 1.0 / 3.0, -7.25] {
            let enc = v.encode_json();
            let back = f64::decode_json(&json::parse(&enc).unwrap()).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v:e}");
        }
        let row = vec![1.0 / 3.0, 2.0 / 7.0, f64::MAX];
        let back = Vec::<f64>::decode_json(&json::parse(&row.encode_json()).unwrap()).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn create_record_resume_round_trip() {
        let path = tmp("round-trip");
        let ck = Checkpoint::<f64>::create(&path, spec()).unwrap();
        ck.record(0, 111, &SampleOutcome::Ok(0.5));
        ck.record(
            3,
            333,
            &SampleOutcome::Recovered {
                value: 1.0 / 3.0,
                attempts: 2,
            },
        );
        ck.record(
            5,
            555,
            &SampleOutcome::Failed {
                error: CoreError::Unsupported { what: "x" },
                attempts: 3,
            },
        );
        assert!(ck.healthy());
        drop(ck);

        let resumed = Checkpoint::<f64>::resume(&path, spec()).unwrap();
        assert_eq!(resumed.resumed_count(), 2, "failed samples are not kept");
        assert_eq!(resumed.prior()[&0], SampleOutcome::Ok(0.5));
        assert_eq!(
            resumed.prior()[&3],
            SampleOutcome::Recovered {
                value: 1.0 / 3.0,
                attempts: 2
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_and_compacted_away() {
        let path = tmp("torn-tail");
        let ck = Checkpoint::<f64>::create(&path, spec()).unwrap();
        ck.record(0, 1, &SampleOutcome::Ok(2.5));
        ck.record(1, 2, &SampleOutcome::Ok(3.5));
        drop(ck);
        // Simulate a kill mid-record: append half a line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"sample-done\",\"index\":2,\"se");
        std::fs::write(&path, &text).unwrap();

        let resumed = Checkpoint::<f64>::resume(&path, spec()).unwrap();
        assert_eq!(resumed.resumed_count(), 2);
        drop(resumed);
        // Compaction dropped the torn bytes.
        let clean = std::fs::read_to_string(&path).unwrap();
        assert!(clean.ends_with('\n'));
        assert_eq!(clean.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_byte_prefix_is_loadable() {
        let path = tmp("prefix");
        let ck = Checkpoint::<Vec<f64>>::create(
            &path,
            CheckpointSpec {
                samples: 4,
                ..spec()
            },
        )
        .unwrap();
        for i in 0..4usize {
            ck.record(i, i as u64, &SampleOutcome::Ok(vec![i as f64, 0.5]));
        }
        drop(ck);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let resumed = Checkpoint::<Vec<f64>>::resume(
                &path,
                CheckpointSpec {
                    samples: 4,
                    ..spec()
                },
            )
            .unwrap();
            // Loaded records are always a prefix-consistent subset with
            // exact values.
            for (&i, o) in resumed.prior() {
                assert_eq!(o.value().unwrap(), &vec![i as f64, 0.5]);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let path = tmp("mismatch");
        let ck = Checkpoint::<f64>::create(&path, spec()).unwrap();
        ck.record(0, 1, &SampleOutcome::Ok(1.0));
        drop(ck);
        let wrong_digest = CheckpointSpec {
            config_digest: 1,
            ..spec()
        };
        let e = Checkpoint::<f64>::resume(&path, wrong_digest).unwrap_err();
        assert!(e.to_string().contains("config digest"), "{e}");
        let wrong_seed = CheckpointSpec { seed: 7, ..spec() };
        assert!(Checkpoint::<f64>::resume(&path, wrong_seed).is_err());
        let wrong_n = CheckpointSpec {
            samples: 9,
            ..spec()
        };
        assert!(Checkpoint::<f64>::resume(&path, wrong_n).is_err());
        // Wrong payload type.
        assert!(Checkpoint::<Vec<f64>>::resume(&path, spec()).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Regression: a write failure mid-append poisons the checkpoint —
    /// `healthy()` flips, `ensure_healthy()` is the typed
    /// [`CoreError::Checkpoint`], and the on-disk prefix written before
    /// the failure still resumes. (The `pulsar-check` checkpoint model
    /// explores the concurrent version of this protocol.)
    #[test]
    fn write_failure_poisons_and_prefix_still_resumes() {
        let path = tmp("poison");
        let ck = Checkpoint::<f64>::create(&path, spec()).unwrap();
        ck.record(0, 1, &SampleOutcome::Ok(0.5));
        drop(ck);

        // Reopen the same file through a read-only handle: the next
        // append's write fails, modeling a mid-run I/O error.
        let ro = OpenOptions::new().read(true).open(&path).unwrap();
        let ck = Checkpoint::<f64> {
            path: path.clone(),
            spec: spec(),
            prior: BTreeMap::new(),
            file: Mutex::new(ro),
            write_failed: PoisonFlag::new(),
        };
        assert!(ck.healthy());
        ck.record(1, 2, &SampleOutcome::Ok(1.5));
        assert!(!ck.healthy(), "failed append did not poison");
        let e = ck.ensure_healthy().unwrap_err();
        assert!(matches!(e, CoreError::Checkpoint { .. }), "{e:?}");
        assert!(
            e.to_string().contains("checkpoint write failed mid-run"),
            "{e}"
        );
        drop(ck);

        // The prefix appended before the failure is still a valid
        // checkpoint: the run resumes from it.
        let resumed = Checkpoint::<f64>::resume(&path, spec()).unwrap();
        assert_eq!(resumed.resumed_count(), 1);
        assert_eq!(resumed.prior()[&0], SampleOutcome::Ok(0.5));
        std::fs::remove_file(&path).ok();
    }

    /// Regression: once poisoned, the append gate blocks even writes
    /// that *would* succeed — nothing may land behind a possibly-torn
    /// tail.
    #[test]
    fn poison_gate_blocks_healthy_appends() {
        let path = tmp("poison-gate");
        let ck = Checkpoint::<f64>::create(&path, spec()).unwrap();
        ck.record(0, 1, &SampleOutcome::Ok(0.5));
        let before = std::fs::read_to_string(&path).unwrap();
        ck.write_failed.poison(&POISON_ORDERINGS);
        ck.record(1, 2, &SampleOutcome::Ok(1.5)); // file handle is fine
        let after = std::fs::read_to_string(&path).unwrap();
        assert_eq!(before, after, "append landed after poison");
        std::fs::remove_file(&path).ok();
    }

    /// A SIGINT (or any kill) inside `resume`'s compaction window must
    /// leave a loadable checkpoint in *every* intermediate state: the
    /// compaction writes a temporary file first and atomically renames
    /// it over the original, so either the old file or the new file is
    /// intact — never a torn mix.
    #[test]
    fn kill_during_compaction_leaves_old_or_new_intact() {
        let path = tmp("compaction-kill");
        let tmp_path = path.with_extension("ckpt.tmp");
        let ck = Checkpoint::<f64>::create(&path, spec()).unwrap();
        ck.record(0, 1, &SampleOutcome::Ok(0.5));
        ck.record(1, 2, &SampleOutcome::Ok(1.5));
        drop(ck);
        let original = std::fs::read(&path).unwrap();
        let compacted = {
            // One clean resume to learn what the compacted file holds.
            drop(Checkpoint::<f64>::resume(&path, spec()).unwrap());
            std::fs::read(&path).unwrap()
        };

        // State A: killed before the rename — the original is intact
        // and a stale (even torn) tmp file is lying around.
        for torn_tmp in [&b"{\"kind\":\"checkp"[..], &compacted[..]] {
            std::fs::write(&path, &original).unwrap();
            std::fs::write(&tmp_path, torn_tmp).unwrap();
            let resumed = Checkpoint::<f64>::resume(&path, spec()).unwrap();
            assert_eq!(resumed.resumed_count(), 2, "stale tmp corrupted resume");
            assert_eq!(resumed.prior()[&0], SampleOutcome::Ok(0.5));
            assert_eq!(resumed.prior()[&1], SampleOutcome::Ok(1.5));
        }

        // State B: killed after the rename — the new file is the
        // checkpoint; no tmp remains.
        std::fs::write(&path, &compacted).unwrap();
        std::fs::remove_file(&tmp_path).ok();
        let resumed = Checkpoint::<f64>::resume(&path, spec()).unwrap();
        assert_eq!(resumed.resumed_count(), 2);

        // In both states, a half-written *record* tail (the only kind a
        // single-line append can tear) still loads as a prefix.
        let mut torn = original.clone();
        torn.truncate(original.len() - 7);
        std::fs::write(&path, &torn).unwrap();
        let resumed = Checkpoint::<f64>::resume(&path, spec()).unwrap();
        assert_eq!(
            resumed.resumed_count(),
            1,
            "torn tail should drop last record"
        );
        assert_eq!(resumed.prior()[&0], SampleOutcome::Ok(0.5));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tmp_path).ok();
    }

    #[test]
    fn open_creates_then_resumes() {
        let path = tmp("open");
        std::fs::remove_file(&path).ok();
        let ck = Checkpoint::<f64>::open(&path, spec()).unwrap();
        assert_eq!(ck.resumed_count(), 0);
        ck.record(2, 22, &SampleOutcome::Ok(4.0));
        drop(ck);
        let again = Checkpoint::<f64>::open(&path, spec()).unwrap();
        assert_eq!(again.resumed_count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
