//! Process-variation sampling for Monte Carlo instances (paper §4: normal
//! distribution of the main circuit parameters, 10 % standard deviation).

use crate::df::FfTiming;
use pulsar_cells::Tech;
use pulsar_mc::Gaussian;
use rand::Rng;

/// How one Monte Carlo circuit instance deviates from nominal.
///
/// Each on-path gate gets independently fluctuated drive strength (`kp`),
/// thresholds (`vt`) and capacitive loading — the **within-die** part —
/// optionally on top of one shared **die-to-die** factor per instance
/// (the decomposition of the paper's ref.\[8\], Bowman et al.). The
/// launch/capture flops and the sensing circuit fluctuate too. Factors
/// are clamped to ±4σ to keep devices physical under extreme draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Within-die relative standard deviation, applied independently per
    /// gate and parameter (the paper uses 0.10 total).
    pub sigma: f64,
    /// Die-to-die relative standard deviation: one shared factor per
    /// Monte Carlo instance, multiplying every gate's parameters.
    pub sigma_d2d: f64,
}

impl VariationModel {
    /// The paper's 10 % setting, all within-die.
    pub fn paper() -> Self {
        VariationModel {
            sigma: 0.10,
            sigma_d2d: 0.0,
        }
    }

    /// A Bowman-style split: 7 % within-die plus 7 % die-to-die
    /// (≈ 10 % total per gate, but correlated across each die).
    pub fn paper_d2d() -> Self {
        VariationModel {
            sigma: 0.07,
            sigma_d2d: 0.07,
        }
    }

    /// No fluctuation at all: every sample is the nominal instance.
    pub fn nominal_only() -> Self {
        VariationModel {
            sigma: 0.0,
            sigma_d2d: 0.0,
        }
    }

    fn factor_with<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
        let lo = (1.0 - 4.0 * sigma).max(0.05);
        let hi = 1.0 + 4.0 * sigma;
        Gaussian::new(1.0, sigma).sample_clamped(rng, lo, hi)
    }

    fn factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::factor_with(rng, self.sigma)
    }

    /// Draws `n` per-stage technology instances around `base`. The first
    /// draw is the instance's die factor (1.0 exactly when `sigma_d2d`
    /// is zero), shared by all stages.
    pub fn sample_techs<R: Rng + ?Sized>(&self, base: &Tech, n: usize, rng: &mut R) -> Vec<Tech> {
        let die = if self.sigma_d2d > 0.0 {
            Self::factor_with(rng, self.sigma_d2d)
        } else {
            1.0
        };
        (0..n)
            .map(|_| {
                base.scaled(
                    die * self.factor(rng),
                    die * self.factor(rng),
                    die * self.factor(rng),
                )
            })
            .collect()
    }

    /// Draws a fluctuated flop-timing instance around `nominal`.
    pub fn sample_ff<R: Rng + ?Sized>(&self, nominal: FfTiming, rng: &mut R) -> FfTiming {
        FfTiming {
            tau_cq: nominal.tau_cq * self.factor(rng),
            tau_dc: nominal.tau_dc * self.factor(rng),
        }
    }

    /// Draws a fluctuated sensing threshold around `w_th` (the paper's
    /// "uncertainties in the timing of the sensing circuit").
    pub fn sample_sensor<R: Rng + ?Sized>(&self, w_th: f64, rng: &mut R) -> f64 {
        w_th * self.factor(rng)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_reproduces_nominal() {
        let v = VariationModel::nominal_only();
        let mut rng = StdRng::seed_from_u64(1);
        let base = Tech::generic_180nm();
        for t in v.sample_techs(&base, 5, &mut rng) {
            assert_eq!(t, base);
        }
        let ff = v.sample_ff(FfTiming::nominal(), &mut rng);
        assert_eq!(ff, FfTiming::nominal());
        assert_eq!(v.sample_sensor(1e-10, &mut rng), 1e-10);
    }

    #[test]
    fn paper_sigma_spreads_parameters() {
        let v = VariationModel::paper();
        let mut rng = StdRng::seed_from_u64(7);
        let base = Tech::generic_180nm();
        let techs = v.sample_techs(&base, 200, &mut rng);
        let kps: Vec<f64> = techs.iter().map(|t| t.kp_n / base.kp_n).collect();
        let mean = kps.iter().sum::<f64>() / kps.len() as f64;
        let sd = (kps.iter().map(|k| (k - mean).powi(2)).sum::<f64>() / kps.len() as f64).sqrt();
        assert!((mean - 1.0).abs() < 0.03, "mean factor {mean}");
        assert!((sd - 0.10).abs() < 0.03, "sd {sd}");
        // All factors physical.
        assert!(kps.iter().all(|k| *k > 0.05));
    }

    #[test]
    fn stages_fluctuate_independently() {
        let v = VariationModel::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let techs = v.sample_techs(&Tech::generic_180nm(), 3, &mut rng);
        assert_ne!(techs[0], techs[1]);
        assert_ne!(techs[1], techs[2]);
    }

    #[test]
    fn d2d_correlates_gates_within_an_instance() {
        // With a pure die-to-die model, every gate of one instance shares
        // the same factor, and instances differ from each other.
        let v = VariationModel {
            sigma: 0.0,
            sigma_d2d: 0.10,
        };
        let base = Tech::generic_180nm();
        let mut rng_a = StdRng::seed_from_u64(11);
        let die_a = v.sample_techs(&base, 4, &mut rng_a);
        for t in &die_a[1..] {
            assert_eq!(*t, die_a[0], "zero WID sigma means identical gates per die");
        }
        let mut rng_b = StdRng::seed_from_u64(12);
        let die_b = v.sample_techs(&base, 4, &mut rng_b);
        assert_ne!(die_a[0], die_b[0], "different dies must differ");
    }

    #[test]
    fn d2d_split_increases_path_delay_correlation() {
        // Sum of per-gate kp factors: variance grows faster under D2D
        // (correlated) than under the same total sigma i.i.d.
        let base = Tech::generic_180nm();
        let n_gates = 7;
        let runs = 400;
        let spread = |v: VariationModel, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sums: Vec<f64> = (0..runs)
                .map(|_| {
                    v.sample_techs(&base, n_gates, &mut rng)
                        .iter()
                        .map(|t| t.kp_n / base.kp_n)
                        .sum::<f64>()
                })
                .collect();
            let m = sums.iter().sum::<f64>() / runs as f64;
            (sums.iter().map(|s| (s - m).powi(2)).sum::<f64>() / runs as f64).sqrt()
        };
        let wid_only = spread(VariationModel::paper(), 5);
        let with_d2d = spread(VariationModel::paper_d2d(), 5);
        assert!(
            with_d2d > wid_only,
            "correlated variation must spread path sums more: {with_d2d:.3} vs {wid_only:.3}"
        );
    }
}
