//! The I_DDQ baseline for bridging faults.
//!
//! The paper's §2 taxonomy notes that bridges change "the static and
//! dynamic current" — the classic I_DDQ observable. This module
//! implements a realistic deep-submicron I_DDQ test: the measured supply
//! current is the fault's drive-fight current **plus a large fluctuating
//! background leakage** (the reason I_DDQ lost resolution as processes
//! scaled — exactly the era of this paper). The threshold is calibrated
//! on the fault-free Monte Carlo sample with the usual zero-false-positive
//! rule; what the background noise swallows is the method's blind spot.

use crate::durable::Completeness;
use crate::engine::{DefectKind, PathInstance, PathUnderTest};
use crate::error::CoreError;
use crate::study::{CoverageCurve, McConfig};
use pulsar_mc::Gaussian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The I_DDQ study on a bridge-carrying path.
#[derive(Debug, Clone)]
pub struct IddqStudy {
    /// The path + defect under study (must carry a bridge; opens draw no
    /// static current and make the study trivially blind).
    pub put: PathUnderTest,
    /// Monte Carlo setup.
    pub mc: McConfig,
    /// Mean background leakage of the surrounding chip, amperes. The
    /// default (2 mA) emulates a large digital die of the paper's era;
    /// set to 0 for the idealized single-path measurement.
    pub background_mean: f64,
    /// Threshold guard above the worst fault-free measurement (1.0 =
    /// exactly at it).
    pub guard: f64,
}

impl IddqStudy {
    /// A study with a large-die background model and a 5 % guard.
    ///
    /// # Panics
    ///
    /// Panics if `put` does not carry a bridge defect.
    pub fn new(put: PathUnderTest, mc: McConfig) -> Self {
        assert!(
            matches!(put.defect, DefectKind::Bridge { .. }),
            "IDDQ study needs a bridge defect (opens draw no static current)"
        );
        IddqStudy {
            put,
            mc,
            background_mean: 2e-3,
            guard: 1.05,
        }
    }

    fn driver(&self) -> pulsar_mc::MonteCarlo {
        let d = pulsar_mc::MonteCarlo::new(self.mc.samples, self.mc.seed);
        match self.mc.threads {
            Some(t) => d.with_threads(t),
            None => d,
        }
    }

    /// Per-instance background leakage draws (independent salted stream).
    fn backgrounds(&self) -> Vec<f64> {
        let sigma = self.mc.variation.sigma;
        let mut rng = StdRng::seed_from_u64(self.mc.seed ^ 0x1DD0_0B5E_55AA_1234);
        let g = Gaussian::relative(self.background_mean, sigma);
        (0..self.mc.samples)
            .map(|_| g.sample_clamped(&mut rng, 0.0, f64::INFINITY))
            .collect()
    }

    /// Measured I_DDQ (worst over both input vectors) of every fault-free
    /// instance, background included.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver failures.
    pub fn fault_free_currents(&self) -> Result<Vec<f64>, CoreError> {
        let bg = self.backgrounds();
        let raw: Vec<Result<f64, CoreError>> = self.driver().run(|_, rng| {
            let techs = self
                .mc
                .variation
                .sample_techs(&self.put.tech, self.put.spec.len(), rng);
            let mut p = self.put.instantiate_fault_free(&techs);
            let a = p.built_path().quiescent_current(false)?;
            let b = p.built_path().quiescent_current(true)?;
            Ok(a.max(b))
        });
        raw.into_iter()
            .zip(bg)
            .map(|(r, bg)| r.map(|i| i + bg))
            .collect()
    }

    /// Calibrated detection threshold: `guard × max(fault-free I_DDQ)`.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures; fails on an empty sample.
    pub fn calibrate(&self) -> Result<f64, CoreError> {
        let currents = self.fault_free_currents()?;
        if currents.is_empty() {
            return Err(CoreError::EmptyCalibration {
                what: "fault-free iddq sample",
            });
        }
        Ok(self.guard * currents.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// `C_iddq(R)`: fraction of instances whose measured current (worst
    /// vector, background included) exceeds the threshold.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures.
    pub fn coverage(&self, threshold: f64, r_values: &[f64]) -> Result<CoverageCurve, CoreError> {
        let bg = self.backgrounds();
        let r_vec = r_values.to_vec();
        let rows: Vec<Result<Vec<f64>, CoreError>> = self.driver().run(move |_, rng| {
            let techs = self
                .mc
                .variation
                .sample_techs(&self.put.tech, self.put.spec.len(), rng);
            let mut p = self.put.instantiate(&techs, r_vec[0]);
            let mut row = Vec::with_capacity(r_vec.len());
            for &r in &r_vec {
                p.set_resistance(r)?;
                let a = p.built_path().quiescent_current(false)?;
                let b = p.built_path().quiescent_current(true)?;
                row.push(a.max(b));
            }
            Ok(row)
        });
        let rows: Vec<Vec<f64>> = rows.into_iter().collect::<Result<_, _>>()?;

        let coverage = (0..r_values.len())
            .map(|ri| {
                let detected = rows
                    .iter()
                    .zip(&bg)
                    .filter(|(row, b)| row[ri] + **b > threshold)
                    .count();
                detected as f64 / rows.len().max(1) as f64
            })
            .collect();
        Ok(CoverageCurve {
            factor: 1.0,
            resistance: r_values.to_vec(),
            coverage,
            // This study still aborts on the first solver error, so a
            // returned curve always covers every sample.
            unresolved: 0.0,
            completeness: Completeness::full(rows.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_cells::{PathSpec, Tech};

    fn put() -> PathUnderTest {
        PathUnderTest {
            spec: PathSpec::paper_chain(),
            defect: DefectKind::Bridge {
                aggressor_high: false,
            },
            stage: 1,
            tech: Tech::generic_180nm(),
        }
    }

    #[test]
    fn iddq_catches_hard_bridges_and_misses_soft_ones() {
        let study = IddqStudy::new(put(), McConfig::paper(6, 77));
        let th = study.calibrate().unwrap();
        // Fault-free sample never trips (by construction).
        for i in study.fault_free_currents().unwrap() {
            assert!(i <= th);
        }
        let curve = study.coverage(th, &[800.0, 300e3]).unwrap();
        assert!(
            curve.coverage[0] > 0.9,
            "a hard bridge draws milliamps: {:?}",
            curve.coverage
        );
        assert!(
            curve.coverage[1] < 0.3,
            "a 300 kΩ bridge hides under the background: {:?}",
            curve.coverage
        );
    }

    #[test]
    fn ideal_measurement_extends_the_range() {
        let mut study = IddqStudy::new(put(), McConfig::paper(6, 77));
        study.background_mean = 0.0;
        let th = study.calibrate().unwrap();
        let curve = study.coverage(th, &[100e3]).unwrap();
        // Without background noise even a weak fight is visible.
        assert!(
            curve.coverage[0] > 0.9,
            "ideal IDDQ sees 100 kΩ bridges: {:?}",
            curve.coverage
        );
    }

    #[test]
    #[should_panic(expected = "needs a bridge defect")]
    fn opens_are_rejected() {
        let p = PathUnderTest {
            defect: DefectKind::ExternalRop,
            ..put()
        };
        IddqStudy::new(p, McConfig::paper(2, 1));
    }
}
