//! Pattern compaction for pulse-test application (paper §5, "test
//! generation and application issues").
//!
//! Loading a scan vector dominates test time; injecting a pulse and
//! reading a detector is cheap. Plans whose input vectors are
//! *compatible* (no conflicting assigned bits) can therefore share one
//! vector-load **session**, firing their pulses one after another. The
//! merge is kept conservative: two plans join a session only if their
//! structural fan-out cones are disjoint, so one plan's activity can
//! never disturb another's quiet sensitized side inputs.

use crate::testgen::PathTestPlan;
use pulsar_logic::{Netlist, SignalId};

/// One compacted test session: a single merged input vector plus the
/// pulse injections applied under it.
#[derive(Debug, Clone)]
pub struct TestSession {
    /// Merged per-signal assignment (indexed by [`SignalId::index`];
    /// only primary inputs populated, `None` = still don't-care).
    pub vector: Vec<Option<bool>>,
    /// Indices (into the input plan list) of the plans this session
    /// applies.
    pub members: Vec<usize>,
}

/// Greedily packs `plans` into sessions.
///
/// Two plans are mergeable when (a) their vectors agree on every PI both
/// assign and (b) neither plan's injection activity can reach the
/// *other's monitored path*: the fan-out cone of each member's injection
/// input must avoid the gates of every other member's path (a foreign
/// pulse on the path would disturb its side inputs or feed its output
/// detector). Cone overlap elsewhere in the circuit is harmless — only
/// the monitored paths must stay quiet. Greedy first-fit keeps the
/// procedure `O(plans² · gates)` — fine at campaign scale.
pub fn compact_patterns(nl: &Netlist, plans: &[PathTestPlan]) -> Vec<TestSession> {
    let cones: Vec<Vec<bool>> = plans.iter().map(|p| fanout_cone(nl, p.path.from)).collect();
    let paths: Vec<Vec<bool>> = plans
        .iter()
        .map(|p| {
            let mut on = vec![false; nl.gate_count()];
            for step in &p.path.steps {
                on[step.gate.index()] = true;
            }
            on
        })
        .collect();

    let mut sessions: Vec<TestSession> = Vec::new();
    // Per session: union of members' cones and of members' path gates.
    let mut session_cones: Vec<Vec<bool>> = Vec::new();
    let mut session_paths: Vec<Vec<bool>> = Vec::new();

    'plans: for (i, plan) in plans.iter().enumerate() {
        for (s, session) in sessions.iter_mut().enumerate() {
            if vectors_compatible(&session.vector, &plan.vector.values)
                && cones_disjoint(&session_cones[s], &paths[i])
                && cones_disjoint(&cones[i], &session_paths[s])
            {
                merge_vector(&mut session.vector, &plan.vector.values);
                merge_cone(&mut session_cones[s], &cones[i]);
                merge_cone(&mut session_paths[s], &paths[i]);
                session.members.push(i);
                continue 'plans;
            }
        }
        sessions.push(TestSession {
            vector: plan.vector.values.clone(),
            members: vec![i],
        });
        session_cones.push(cones[i].clone());
        session_paths.push(paths[i].clone());
    }
    sessions
}

/// Per-gate membership of the structural fan-out cone of `from`.
fn fanout_cone(nl: &Netlist, from: SignalId) -> Vec<bool> {
    let fanouts = nl.fanouts();
    let mut in_cone = vec![false; nl.gate_count()];
    let mut frontier = vec![from];
    while let Some(sig) = frontier.pop() {
        for &(gate, _) in &fanouts[sig.index()] {
            if !in_cone[gate.index()] {
                in_cone[gate.index()] = true;
                frontier.push(nl.gate(gate).output);
            }
        }
    }
    in_cone
}

fn vectors_compatible(a: &[Option<bool>], b: &[Option<bool>]) -> bool {
    a.iter().zip(b).all(|(x, y)| match (x, y) {
        (Some(p), Some(q)) => p == q,
        _ => true,
    })
}

fn merge_vector(into: &mut [Option<bool>], from: &[Option<bool>]) {
    for (i, f) in into.iter_mut().zip(from) {
        if i.is_none() {
            *i = *f;
        }
    }
}

fn cones_disjoint(a: &[bool], b: &[bool]) -> bool {
    a.iter().zip(b).all(|(x, y)| !(*x && *y))
}

fn merge_cone(into: &mut [bool], from: &[bool]) {
    for (i, f) in into.iter_mut().zip(from) {
        *i |= f;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::testgen::{plan_for_site, TestgenConfig};
    use pulsar_logic::{c17, GateKind};
    use pulsar_timing::TimingLibrary;

    /// Two independent 2-gate chains: their plans must share a session.
    #[test]
    fn disjoint_cones_merge_into_one_session() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let y0 = nl.add_gate(GateKind::Not, &[g0], "y0").unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[b], "g1").unwrap();
        let y1 = nl.add_gate(GateKind::Not, &[g1], "y1").unwrap();
        nl.mark_output(y0);
        nl.mark_output(y1);

        let lib = TimingLibrary::generic();
        let cfg = TestgenConfig::default();
        let p0 = plan_for_site(&nl, g0, &lib, &cfg).unwrap().swap_remove(0);
        let p1 = plan_for_site(&nl, g1, &lib, &cfg).unwrap().swap_remove(0);
        let sessions = compact_patterns(&nl, &[p0, p1]);
        assert_eq!(sessions.len(), 1, "independent chains must share a session");
        assert_eq!(sessions[0].members, vec![0, 1]);
    }

    /// Plans whose cones overlap stay in separate sessions even with
    /// compatible vectors.
    #[test]
    fn overlapping_cones_do_not_merge() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let g0 = nl.add_gate(GateKind::Not, &[a], "g0").unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[g0], "g1").unwrap();
        let y = nl.add_gate(GateKind::Not, &[g1], "y").unwrap();
        nl.mark_output(y);

        let lib = TimingLibrary::generic();
        let cfg = TestgenConfig::default();
        // Same path, two "plans" (same injection input → same cone).
        let p = plan_for_site(&nl, g0, &lib, &cfg).unwrap().swap_remove(0);
        let sessions = compact_patterns(&nl, &[p.clone(), p]);
        assert_eq!(sessions.len(), 2);
    }

    /// Conflicting vector bits block the merge.
    #[test]
    fn conflicting_vectors_do_not_merge() {
        assert!(vectors_compatible(
            &[Some(true), None],
            &[None, Some(false)]
        ));
        assert!(!vectors_compatible(&[Some(true)], &[Some(false)]));
    }

    /// On c17, compaction must never *increase* the session count and the
    /// merged vectors must preserve every member's assignments.
    #[test]
    fn c17_campaign_compacts_soundly() {
        let nl = c17();
        let lib = TimingLibrary::generic();
        let cfg = TestgenConfig::default();
        let mut plans = Vec::new();
        for g in nl.gates() {
            if let Ok(mut ps) = plan_for_site(&nl, g.output, &lib, &cfg) {
                plans.push(ps.swap_remove(0));
            }
        }
        assert!(!plans.is_empty());
        let sessions = compact_patterns(&nl, &plans);
        assert!(sessions.len() <= plans.len());
        // Soundness: each member's assigned bits survive in the merged
        // vector.
        for s in &sessions {
            for &m in &s.members {
                for (merged, own) in s.vector.iter().zip(&plans[m].vector.values) {
                    if let Some(v) = own {
                        assert_eq!(merged.as_ref(), Some(v), "merge lost an assignment");
                    }
                }
            }
        }
        // Every plan appears in exactly one session.
        let mut seen = vec![0usize; plans.len()];
        for s in &sessions {
            for &m in &s.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|c| *c == 1));
    }
}
