//! Batch-equivalence laws for the batched Monte Carlo device-eval
//! engine: batching is a *pure optimization*, so every observable result
//! — values, outcome shapes, attempt counts, completeness accounting —
//! must be bit-identical to the scalar path, whatever the batch width,
//! thread count, planned faults, or cancellation timing.

use proptest::prelude::*;
use pulsar_analog::{FaultKind, FaultPlan, Polarity};
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{
    CancelReason, CancelToken, CoreError, DefectKind, McConfig, McRunReport, PathUnderTest,
    PulseStudy,
};
use pulsar_mc::SampleOutcome;
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::atomic::{AtomicBool, Ordering};

const RS: [f64; 2] = [1e3, 50e3];
const W_IN: f64 = 450e-12;

/// A 3-stage chain stays under the sparse crossover, so its lanes run the
/// dense batch engine instead of ejecting to the scalar path.
fn small_put() -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::inverter_chain(3),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

fn study(
    samples: usize,
    seed: u64,
    batch: usize,
    threads: usize,
    plan: Option<FaultPlan>,
) -> PulseStudy {
    let mut mc = McConfig::paper(samples, seed);
    mc.batch = batch;
    mc.threads = Some(threads);
    mc.fault_plan = plan;
    PulseStudy::new(small_put(), mc, Polarity::PositiveGoing)
}

/// Comparable signature of a run: outcome shape, attempts, value bits.
fn sig(r: &McRunReport<Vec<f64>>) -> Vec<(u8, u32, Vec<u64>)> {
    r.outcomes
        .iter()
        .map(|o| match o {
            SampleOutcome::Ok(v) => (0u8, 1u32, v.iter().map(|x| x.to_bits()).collect()),
            SampleOutcome::Recovered { value, attempts } => {
                (1, *attempts, value.iter().map(|x| x.to_bits()).collect())
            }
            SampleOutcome::Failed { attempts, .. } => (2, *attempts, Vec::new()),
        })
        .collect()
}

proptest! {
    // Each case runs several full electrical Monte Carlo studies; keep
    // the case count low — the law is exact, not statistical.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Batch-of-1 and any batched width K, under any thread count, with a
    /// planned mid-batch ejection (a retryable fault on one sample's
    /// first attempt), all reproduce the scalar run outcome-for-outcome
    /// bit-identically — including the `Recovered { attempts: 2 }` shape
    /// of the ejected sample.
    #[test]
    fn batched_outcomes_bit_identical_to_scalar(
        seed in 0u64..1000,
        samples in 3usize..6,
        batch in 1usize..5,
        threads in 1usize..4,
        fault_sample in 0usize..6,
    ) {
        let plan = FaultPlan::new().fail_sample(
            fault_sample % samples,
            FaultKind::NonConvergence,
            1,
        );
        let base = study(samples, seed, 0, 1, Some(plan.clone()))
            .try_faulty_wouts(W_IN, &RS)
            .expect("scalar run");
        prop_assert!(
            base.outcomes
                .iter()
                .any(|o| matches!(o, SampleOutcome::Recovered { attempts: 2, .. })),
            "the planned fault must force a mid-batch ejection + recovery"
        );
        let batched = study(samples, seed, batch, threads, Some(plan))
            .try_faulty_wouts(W_IN, &RS)
            .expect("batched run");
        prop_assert_eq!(sig(&base), sig(&batched));

        // And with no fault plan, batch-of-1 (driver degenerates to
        // scalar) under the same thread count.
        let clean = study(samples, seed, 0, 1, None)
            .try_faulty_wouts(W_IN, &RS)
            .expect("clean scalar run");
        let one = study(samples, seed, 1, threads, None)
            .try_faulty_wouts(W_IN, &RS)
            .expect("batch-of-1 run");
        prop_assert_eq!(sig(&clean), sig(&one));
    }
}

/// Run cancellation landing mid-campaign, between batched groups: the
/// already-resolved group stays done, every later sample comes back as a
/// `None` slot — cancelled, never failed, never in a coverage
/// denominator — and the truncation is reported honestly.
#[test]
fn cancellation_mid_batch_truncates_without_counting() {
    let mut mc = McConfig::paper(8, 7);
    mc.batch = 3;
    mc.threads = Some(1);
    let token = CancelToken::new();
    let saw_cancelled_lanes = AtomicBool::new(false);
    let run = mc
        .try_run_samples_durable_batched(
            "cancel-batch",
            &token,
            None,
            |idx: &[usize], rngs: &mut [StdRng], _recs, lane_tokens: &[CancelToken]| {
                if idx[0] == 0 {
                    // First group resolves normally.
                    rngs.iter_mut().map(|r| Some(r.random::<f64>())).collect()
                } else {
                    // The run is cancelled mid-campaign; the per-lane
                    // attempt tokens must observe it so in-flight solves
                    // eject, and the ejected lanes resolve to None.
                    token.cancel(CancelReason::User);
                    saw_cancelled_lanes.store(
                        lane_tokens.iter().all(CancelToken::is_cancelled),
                        Ordering::SeqCst,
                    );
                    idx.iter().map(|_| None).collect()
                }
            },
            |_i, _attempt, rng, _rec, t| {
                if t.is_cancelled() {
                    Err(CoreError::Analog(pulsar_analog::Error::Cancelled {
                        time: 0.0,
                        reason: CancelReason::User,
                    }))
                } else {
                    Ok(rng.random::<f64>())
                }
            },
        )
        .expect("durable run");
    assert_eq!(run.completeness.requested, 8);
    assert_eq!(run.completeness.done, 3, "only the first group resolved");
    assert_eq!(run.completeness.truncated, Some("interrupted"));
    assert!(
        saw_cancelled_lanes.load(Ordering::SeqCst),
        "run cancellation must propagate to the per-lane attempt tokens"
    );
    // Cancelled samples are not-done, never failed: they stay out of the
    // failure accounting and any coverage denominator.
    assert_eq!(run.failures.samples, 3);
    assert_eq!(run.failures.failed, 0);
    assert!(run.outcomes[3..].iter().all(Option::is_none));
    assert_eq!(run.resolved_indexed().count(), 3);
}

/// A token cancelled before the batched study starts: nothing runs,
/// nothing counts, and the study still returns an honest (empty) result
/// instead of an error.
#[test]
fn precancelled_batched_study_reports_honest_truncation() {
    let token = CancelToken::new();
    token.cancel(CancelReason::User);
    let s = study(5, 3, 3, 2, None);
    let run = s
        .try_faulty_wouts_durable(W_IN, &RS, &token, None)
        .expect("durable run");
    assert_eq!(run.completeness.done, 0);
    assert_eq!(run.completeness.truncated, Some("interrupted"));
    assert_eq!(run.failures.samples, 0, "nothing ran, nothing counted");
    assert!(run.outcomes.iter().all(Option::is_none));
}
