//! Acceptance tests for the resilient Monte Carlo runtime: deterministic
//! solver fault injection driven through the full study stack, per-sample
//! isolation and retry accounting, thread-count determinism, and the
//! failure budget abort.

use pulsar_analog::{FaultKind, FaultPlan, Polarity};
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{
    CoreError, DefectKind, DfStudy, McConfig, PathUnderTest, PulseCalibration, PulseStudy,
    ResilienceConfig,
};

fn put() -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

/// A plausible operating point for the paper chain; the resilience
/// machinery under test is independent of exact calibration.
fn calib() -> PulseCalibration {
    PulseCalibration {
        w_in: 500e-12,
        w_th: 120e-12,
    }
}

/// 64 samples, 3 of which hit injected non-convergence on every attempt.
fn faulty_study(threads: usize, budget: f64) -> PulseStudy {
    let mc = McConfig {
        threads: Some(threads),
        resilience: ResilienceConfig::tolerant(3, budget),
        fault_plan: Some(
            FaultPlan::new()
                .fail_sample(5, FaultKind::NonConvergence, FaultPlan::ALWAYS)
                .fail_sample(17, FaultKind::NonConvergence, FaultPlan::ALWAYS)
                .fail_sample(40, FaultKind::NonConvergence, FaultPlan::ALWAYS),
        ),
        ..McConfig::paper(64, 2007)
    };
    PulseStudy::new(put(), mc, Polarity::PositiveGoing)
}

const RS: [f64; 2] = [1e3, 100e3];

#[test]
fn injected_failures_leave_coverage_running_with_exact_accounting() {
    // 3 of 64 samples always fail: within a 5 % budget the study must
    // complete and report exactly those samples as unresolved, with the
    // full retry ladder spent on each.
    let study = faulty_study(8, 0.05);
    let (curves, failures) = study
        .coverage_with_report(&calib(), &RS, &[1.0])
        .expect("3/64 failures are inside a 5 % budget");

    assert_eq!(failures.samples, 64);
    assert_eq!(failures.failed, 3, "exactly the three planned samples");
    assert_eq!(failures.recovered, 0);
    assert_eq!(failures.by_kind, vec![("non-convergence", 3)]);
    // Retry accounting: 61 clean one-shot samples, 3 that burned all
    // three permitted attempts.
    assert_eq!(failures.retry_histogram, vec![(1, 61), (3, 3)]);
    let mut failed_samples: Vec<usize> = failures.worst.iter().map(|w| w.0).collect();
    failed_samples.sort_unstable();
    assert_eq!(failed_samples, vec![5, 17, 40]);

    // Coverage is over the 61 resolved samples; the curve says so.
    assert_eq!(curves.len(), 1);
    assert!((curves[0].unresolved - 3.0 / 64.0).abs() < 1e-12);
    assert!(
        curves[0].coverage[1] > 0.9,
        "a 100 kΩ open is still caught over the resolved samples: {:?}",
        curves[0].coverage
    );
}

#[test]
fn curves_and_outcomes_are_bit_identical_across_thread_counts() {
    let one = faulty_study(1, 0.05);
    let eight = faulty_study(8, 0.05);

    let r1 = one.try_faulty_wouts(calib().w_in, &RS).unwrap();
    let r8 = eight.try_faulty_wouts(calib().w_in, &RS).unwrap();
    assert_eq!(r1.outcomes, r8.outcomes, "per-sample outcomes must match");
    assert_eq!(r1.failures, r8.failures);

    let c1 = one
        .coverage_with_report(&calib(), &RS, &[0.9, 1.0, 1.1])
        .unwrap();
    let c8 = eight
        .coverage_with_report(&calib(), &RS, &[0.9, 1.0, 1.1])
        .unwrap();
    assert_eq!(c1.0, c8.0, "coverage curves must be bit-identical");
}

#[test]
fn failure_budget_aborts_with_per_kind_breakdown() {
    // The same run under a 1 % budget: 3 failures > 0.64 allowed → abort.
    let study = faulty_study(8, 0.01);
    let err = study
        .coverage_with_report(&calib(), &RS, &[1.0])
        .expect_err("3/64 failures must exceed a 1 % budget");
    match err {
        CoreError::FailureBudgetExceeded { report } => {
            assert_eq!(report.samples, 64);
            assert_eq!(report.failed, 3);
            assert_eq!(report.by_kind, vec![("non-convergence", 3)]);
            assert!((report.failure_budget - 0.01).abs() < 1e-12);
            let text = report.to_string();
            assert!(text.contains("non-convergence×3"), "{text}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn transient_faults_recover_on_retry() {
    // Faults bounded to the first attempt: the retry ladder must resolve
    // them, under the *default* zero failure budget.
    let mc = McConfig {
        threads: Some(4),
        fault_plan: Some(
            FaultPlan::new()
                .fail_sample(2, FaultKind::NonConvergence, 1)
                .fail_sample(9, FaultKind::NonConvergence, 1),
        ),
        ..McConfig::paper(16, 7)
    };
    let study = PulseStudy::new(put(), mc, Polarity::PositiveGoing);
    let report = study.try_faulty_wouts(calib().w_in, &RS).unwrap();
    assert_eq!(report.failures.failed, 0);
    assert_eq!(report.failures.recovered, 2);
    assert_eq!(report.failures.retry_histogram, vec![(1, 14), (2, 2)]);
    assert!(report.outcomes[2].is_recovered());
    assert_eq!(report.outcomes[2].attempts(), 2);
    // Recovered samples carry usable measurements.
    assert!(report.outcomes[2].value().unwrap()[0] > 0.0);
}

#[test]
fn singular_matrix_is_not_retried_and_df_coverage_reports_it() {
    // A structural failure (singular matrix) must not burn retries, and
    // the legacy DfStudy::coverage path must surface it through the
    // default zero budget as FailureBudgetExceeded.
    let mc = McConfig {
        threads: Some(2),
        fault_plan: Some(FaultPlan::new().fail_sample(
            4,
            FaultKind::SingularMatrix,
            FaultPlan::ALWAYS,
        )),
        ..McConfig::paper(12, 11)
    };
    let study = DfStudy::new(put(), mc);
    let err = study
        .try_faulty_needs(&RS)
        .expect_err("budget 0 must abort");
    match err {
        CoreError::FailureBudgetExceeded { report } => {
            assert_eq!(report.failed, 1);
            assert_eq!(report.by_kind, vec![("singular-matrix", 1)]);
            // Not retryable → a single attempt.
            assert_eq!(report.worst[0].1, 1);
            assert_eq!(report.retry_histogram, vec![(1, 12)]);
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn df_study_recovers_injected_transients_end_to_end() {
    // DfStudy::coverage (the legacy API) over a plan whose faults heal on
    // the second attempt: completes cleanly, identical to the plan-free
    // run in sample count.
    let mc = McConfig {
        threads: Some(4),
        fault_plan: Some(FaultPlan::new().fail_sample(1, FaultKind::NonConvergence, 1)),
        ..McConfig::paper(8, 3)
    };
    let study = DfStudy::new(put(), mc);
    let cal = study.calibrate().expect("calibration survives the plan");
    let (curves, failures) = study
        .coverage_with_report(&cal, &RS, &[1.0])
        .expect("recovered faults stay inside the zero budget");
    assert_eq!(failures.failed, 0);
    assert_eq!(failures.recovered, 1);
    assert_eq!(curves[0].unresolved, 0.0);
    assert!(curves[0].coverage[1] > 0.9);
}
