//! Acceptance tests for adaptive sequential sampling: the decided
//! coverage curve must be **bit-identical across thread counts** (stop
//! decisions happen only on ordered sample prefixes), **bit-identical
//! after kill-and-resume** through a mid-curve checkpoint, and — with a
//! precision target no run can meet — **identical to the fixed-budget
//! study**, so the adaptive path cannot silently change the estimator.

use pulsar_analog::Polarity;
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{
    AdaptivePoint, AdaptivePolicy, AdaptiveReport, CheckpointSpec, CoreError, DefectKind,
    DfCalibration, DfStudy, McConfig, PathUnderTest, PulseStudy,
};
use pulsar_core::{Checkpoint, CoverageCurve};
use std::sync::atomic::{AtomicUsize, Ordering};

fn put() -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

const RS: [f64; 3] = [1e3, 30e3, 100e3];
const FACTORS: [f64; 2] = [0.9, 1.1];

static FILE_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_ckpt(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pulsar-adaptive-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = dir.join(format!(
        "{}-{}-{}.ckpt",
        std::process::id(),
        FILE_SEQ.fetch_add(1, Ordering::Relaxed),
        name
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A loose policy a tiny run can actually satisfy, with small rounds so
/// several stop decisions happen mid-stream.
fn loose_policy() -> AdaptivePolicy {
    AdaptivePolicy {
        min_samples: 4,
        chunk: 4,
        ..AdaptivePolicy::new(0.2, 12)
    }
}

fn df_study(threads: usize) -> DfStudy {
    DfStudy::new(
        put(),
        McConfig {
            threads: Some(threads),
            ..McConfig::paper(12, 2007)
        },
    )
}

/// The paper's calibration over the same Monte Carlo sample. The result
/// is deterministic, so every test sees the same thresholds; on this grid
/// coverage is near 0 at 1 kΩ and near 1 at 30/100 kΩ, which is exactly
/// the regime where early stopping engages.
fn calib() -> DfCalibration {
    df_study(1).calibrate().expect("df calibration")
}

/// Everything decision-relevant, as bit patterns.
fn fingerprint(report: &AdaptiveReport) -> Vec<(u64, u64, u64, u64, bool, bool)> {
    report
        .points
        .iter()
        .map(|p: &AdaptivePoint| {
            (
                p.coverage.to_bits(),
                p.interval.lo.to_bits(),
                p.interval.hi.to_bits(),
                p.accuracy.samples_spent,
                p.accuracy.stopped_early,
                p.refined,
            )
        })
        .collect()
}

#[test]
fn adaptive_curve_is_bit_identical_across_thread_counts() {
    let baseline = df_study(1)
        .coverage_adaptive(&calib(), &RS, &FACTORS, &loose_policy(), None)
        .expect("single-threaded adaptive run");
    for threads in [2, 4] {
        let run = df_study(threads)
            .coverage_adaptive(&calib(), &RS, &FACTORS, &loose_policy(), None)
            .expect("multi-threaded adaptive run");
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&run),
            "adaptive decisions must not depend on thread count (threads={threads})"
        );
        assert_eq!(baseline.evals, run.evals);
    }
}

#[test]
fn adaptive_resume_from_truncated_checkpoint_is_bit_identical() {
    let study = df_study(2);
    let policy = loose_policy();
    let c = calib();
    let baseline = study
        .coverage_adaptive(&c, &RS, &FACTORS, &policy, None)
        .expect("uninterrupted adaptive run");

    let spec = study.adaptive_checkpoint_spec(&RS, &FACTORS, &policy, None);
    let path = fresh_ckpt("adaptive");
    {
        let ck = Checkpoint::create(&path, spec).expect("create checkpoint");
        let full = study
            .coverage_adaptive_durable(&c, &RS, &FACTORS, &policy, None, &ck)
            .expect("checkpointed adaptive run");
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&full),
            "writing a checkpoint must not change the run"
        );
    }
    // Kill mid-curve: keep only a byte prefix of the checkpoint, so the
    // resumed run restores some samples and recomputes the rest.
    let bytes = std::fs::read(&path).expect("read checkpoint");
    for cut_permille in [0usize, 250, 500, 900] {
        let cut = bytes.len() * cut_permille / 1000;
        std::fs::write(&path, &bytes[..cut]).expect("truncate checkpoint");
        let ck = Checkpoint::open(&path, spec).expect("reopen truncated checkpoint");
        let resumed = study
            .coverage_adaptive_durable(&c, &RS, &FACTORS, &policy, None, &ck)
            .expect("resumed adaptive run");
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&resumed),
            "resume must replay the same stopping decisions (cut={cut_permille}‰)"
        );
        assert_eq!(baseline.evals, resumed.evals, "eval accounting is replayed");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unreachable_precision_reduces_to_the_fixed_budget_study() {
    // A half-width target of 0 can never be met, so every column runs to
    // max_samples, nothing is saved, and nothing refines: the curves must
    // equal the fixed-budget estimator sample for sample.
    let study = df_study(2);
    let policy = AdaptivePolicy {
        min_samples: 4,
        chunk: 4,
        ..AdaptivePolicy::new(0.0, 12)
    };
    let c = calib();
    let adaptive = study
        .coverage_adaptive(&c, &RS, &FACTORS, &policy, None)
        .expect("exhaustive adaptive run");
    let fixed = study.coverage(&c, &RS, &FACTORS).expect("fixed-budget run");
    assert_eq!(adaptive.curves.len(), fixed.len());
    for (a, f) in adaptive.curves.iter().zip(&fixed) {
        assert_eq!(a.factor, f.factor);
        let a_bits: Vec<u64> = a.coverage.iter().map(|v| v.to_bits()).collect();
        let f_bits: Vec<u64> = f.coverage.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            a_bits, f_bits,
            "estimator must not change at factor {}",
            a.factor
        );
    }
    assert_eq!(adaptive.evals, adaptive.fixed_budget_evals);
    assert_eq!(adaptive.refine_evals, 0);
    assert!(adaptive.points.iter().all(|p| !p.accuracy.stopped_early));
}

#[test]
fn early_stops_save_evals_and_honestly_report_achieved_precision() {
    let study = df_study(2);
    let policy = loose_policy();
    let report = study
        .coverage_adaptive(&calib(), &RS, &FACTORS, &policy, None)
        .expect("adaptive run");
    assert!(
        report.evals - report.refine_evals < report.fixed_budget_evals,
        "a loose target must stop at least one column early ({} vs {})",
        report.evals - report.refine_evals,
        report.fixed_budget_evals
    );
    assert!(
        report.evals <= report.fixed_budget_evals,
        "refinement may only reinvest what early stopping saved ({} vs {})",
        report.evals,
        report.fixed_budget_evals
    );
    // On a grid with no crossover in sight (coverage ≈ 1 everywhere) the
    // refinement pass has nothing to spend on and the saving is net.
    let high_rs = [30e3, 60e3, 100e3];
    let high = study
        .coverage_adaptive(&calib(), &high_rs, &FACTORS, &policy, None)
        .expect("all-high adaptive run");
    assert_eq!(high.refine_evals, 0, "no crossover, no refinement");
    assert!(
        high.evals < high.fixed_budget_evals,
        "away from the crossover the saving must be net ({} vs {})",
        high.evals,
        high.fixed_budget_evals
    );
    for p in &report.points {
        assert!(p.accuracy.samples_spent >= policy.min_samples as u64);
        assert!(
            p.accuracy.achieved_halfwidth > 0.0 && p.accuracy.achieved_halfwidth <= 0.5,
            "half-width must be a real interval measurement"
        );
        if p.accuracy.stopped_early && !p.refined {
            assert!(
                p.accuracy.achieved_halfwidth <= p.accuracy.requested_halfwidth,
                "an early stop must have met its target"
            );
        }
    }
    // Manifest block mirrors the in-memory report.
    let manifest = report.to_manifest();
    assert_eq!(manifest.points.len(), report.points.len());
    assert_eq!(manifest.evals, report.evals);
    assert_eq!(manifest.fixed_budget_evals, report.fixed_budget_evals);
}

#[test]
fn warm_start_and_mismatched_crossover_are_rejected() {
    let mut study = df_study(1);
    study.mc.dc_warm_start = true;
    let err = study
        .coverage_adaptive(&calib(), &RS, &FACTORS, &loose_policy(), None)
        .expect_err("warm start breaks subset purity");
    assert!(matches!(err, CoreError::Unsupported { .. }), "{err:?}");

    let study = df_study(1);
    let alien = [CoverageCurve {
        factor: 1.0,
        resistance: vec![1e3, 2e3],
        coverage: vec![0.5, 0.5],
        unresolved: 0.0,
        completeness: pulsar_core::Completeness::full(12),
    }];
    let err = study
        .coverage_adaptive(&calib(), &RS, &FACTORS, &loose_policy(), Some(&alien))
        .expect_err("crossover reference on a different grid");
    assert!(matches!(err, CoreError::Unsupported { .. }), "{err:?}");
}

#[test]
fn checkpoint_spec_must_reserve_the_refinement_record_space() {
    let study = df_study(1);
    let policy = loose_policy();
    let spec = study.adaptive_checkpoint_spec(&RS, &FACTORS, &policy, None);
    assert_eq!(spec.samples, 3 * policy.max_samples);
    // A spec sized like a plain fixed-budget run is refused outright.
    let bad = CheckpointSpec {
        samples: policy.max_samples,
        ..spec
    };
    let path = fresh_ckpt("bad-spec");
    let ck = Checkpoint::create(&path, bad).expect("create undersized checkpoint");
    let err = study
        .coverage_adaptive_durable(&calib(), &RS, &FACTORS, &policy, None, &ck)
        .expect_err("undersized record space");
    assert!(matches!(err, CoreError::Checkpoint { .. }), "{err:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pulse_adaptive_with_crossover_reference_runs_and_refines_near_crossings() {
    // A reference curve engineered to cross the pulse coverage somewhere
    // inside the sweep: refinement must mark at least the crossing
    // neighbourhood and spend its extra budget there.
    let put = put();
    let mc = McConfig {
        threads: Some(2),
        ..McConfig::paper(8, 77)
    };
    let study = PulseStudy::new(put, mc, Polarity::PositiveGoing);
    let policy = AdaptivePolicy {
        min_samples: 4,
        chunk: 4,
        ..AdaptivePolicy::new(0.3, 8)
    };
    let calib = study.calibrate().expect("pulse calibration");
    let reference: Vec<CoverageCurve> = FACTORS
        .iter()
        .map(|&f| CoverageCurve {
            factor: f,
            resistance: RS.to_vec(),
            // Descends through 0.5 across the sweep, the shape of a DF
            // curve heading the other way.
            coverage: vec![1.0, 0.4, 0.0],
            unresolved: 0.0,
            completeness: pulsar_core::Completeness::full(8),
        })
        .collect();
    let report = study
        .coverage_adaptive(&calib, &RS, &FACTORS, &policy, Some(&reference))
        .expect("pulse adaptive run");
    assert_eq!(report.curves.len(), FACTORS.len());
    assert_eq!(report.points.len(), FACTORS.len() * RS.len());
    for p in &report.points {
        if p.refined {
            assert_eq!(p.accuracy.requested_halfwidth, policy.precision / 2.0);
        }
    }
    // The same run twice is bit-identical (covers the crossover path).
    let again = study
        .coverage_adaptive(&calib, &RS, &FACTORS, &policy, Some(&reference))
        .expect("repeat run");
    assert_eq!(fingerprint(&report), fingerprint(&again));
}
