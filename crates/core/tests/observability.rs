//! Acceptance tests for the observability subsystem threaded through the
//! study stack: a disabled recorder must be invisible (bit-identical
//! results), and an enabled recorder's journal + metrics must be rich
//! enough to reconstruct per-sample retry counts, escalation rungs,
//! failure kinds and Newton-iteration histograms after the run.

use pulsar_analog::{FaultKind, FaultPlan, Polarity};
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{DefectKind, McConfig, PathUnderTest, PulseStudy, ResilienceConfig};
use pulsar_mc::MonteCarlo;
use pulsar_obs::{json, render_journal, Counter, HistId, Recorder};

fn put() -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

const RS: [f64; 2] = [1e3, 100e3];
const W_IN: f64 = 500e-12;
const SAMPLES: usize = 16;
const SEED: u64 = 2007;

/// 16 samples: sample 2 hits injected non-convergence on its first
/// attempt only (recovers on retry), sample 7 on every attempt (fails
/// after the full ladder). The budget tolerates the one hard failure.
fn study(obs: Recorder) -> PulseStudy {
    let mc = McConfig {
        threads: Some(4),
        resilience: ResilienceConfig::tolerant(3, 0.25),
        fault_plan: Some(
            FaultPlan::new()
                .fail_sample(2, FaultKind::NonConvergence, 1)
                .fail_sample(7, FaultKind::NonConvergence, FaultPlan::ALWAYS),
        ),
        obs,
        ..McConfig::paper(SAMPLES, SEED)
    };
    PulseStudy::new(put(), mc, Polarity::PositiveGoing)
}

#[test]
fn disabled_recorder_is_bit_identical_to_enabled() {
    let plain = study(Recorder::disabled())
        .try_faulty_wouts(W_IN, &RS)
        .expect("inside budget");
    let rec = Recorder::enabled();
    let live = study(rec.clone())
        .try_faulty_wouts(W_IN, &RS)
        .expect("inside budget");
    // `SampleOutcome<Vec<f64>>` equality is exact — same widths to the
    // last bit, same attempt counts, same error classification.
    assert_eq!(
        plain.outcomes, live.outcomes,
        "recording changed the physics"
    );
    assert_eq!(plain.failures, live.failures);
    // And the instrumented run did actually observe the work.
    assert!(rec.event_count() > 0, "enabled recorder journaled nothing");
}

#[test]
fn journal_reconstructs_retries_escalation_and_failure_kinds() {
    let rec = Recorder::enabled();
    let report = study(rec.clone())
        .try_faulty_wouts(W_IN, &RS)
        .expect("inside budget");

    let events: Vec<_> = rec
        .events()
        .into_iter()
        .filter(|e| e.kind == "sample")
        .collect();
    assert_eq!(events.len(), SAMPLES, "one journal event per sample");

    let driver = MonteCarlo::new(SAMPLES, SEED);
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.index, i, "events arrive in sample order");
        assert_eq!(e.label.as_deref(), Some("pulse-faulty"));
        // The journaled seed is the replayable per-stream seed.
        assert_eq!(e.seed, Some(driver.stream_seed(i)));
        // Attempt counts reconstruct the run report exactly.
        assert_eq!(e.attempts, report.outcomes[i].attempts());
        assert_eq!(e.escalation_rung, e.attempts - 1);
    }

    assert_eq!(events[2].outcome, "recovered");
    assert_eq!(events[2].attempts, 2);
    assert_eq!(events[7].outcome, "failed");
    assert_eq!(events[7].attempts, 3);
    assert_eq!(events[7].error_kind.as_deref(), Some("non-convergence"));
    // A clean sample carries its per-sample solver counters.
    assert!(
        events[0]
            .counters
            .iter()
            .any(|(name, v)| *name == "newton_iterations" && *v > 0),
        "per-sample counters missing Newton work: {:?}",
        events[0].counters
    );

    // Run-level metrics agree with the journal.
    let snap = rec.snapshot();
    assert_eq!(snap.counter(Counter::SamplesOk), 14);
    assert_eq!(snap.counter(Counter::SamplesRecovered), 1);
    assert_eq!(snap.counter(Counter::SamplesFailed), 1);
    // One extra attempt for the recovered sample, two for the failed one.
    assert_eq!(snap.counter(Counter::RetryAttempts), 3);
    // The Newton-iterations-per-solve histogram is reconstructible.
    assert!(snap.histogram_count(HistId::NewtonItersPerSolve) > 0);
    assert_eq!(
        snap.histogram_count(HistId::NewtonItersPerSolve),
        snap.counter(Counter::SparseSolves) + snap.counter(Counter::DenseSolves),
        "one histogram observation per Newton solve"
    );

    // Every rendered journal line is machine-readable JSON.
    let journal = render_journal(&rec.events());
    for line in journal.lines() {
        json::parse(line).expect("journal line must parse as JSON");
    }
}
