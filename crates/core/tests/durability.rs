//! Chaos soak for the durable-campaign machinery: kill/resume cycles,
//! truncated checkpoints (a kill can land on any byte), injected stalls
//! against per-sample timeouts, and panic storms with and without
//! containment. The invariants under test are always the same two:
//! **resume-equivalence** (a resumed run is bit-identical to an
//! uninterrupted one) and **no-lost-samples** (whatever was reported done
//! stays done, and everything requested is eventually done).

use proptest::prelude::*;
use pulsar_analog::{FaultKind, FaultPlan, Polarity};
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{
    CancelReason, CancelToken, Checkpoint, CheckpointSpec, CoreError, DefectKind, McConfig,
    PathUnderTest, PulseStudy, ResilienceConfig,
};
use pulsar_mc::SampleOutcome;
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn put() -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

const RS: [f64; 2] = [1e3, 100e3];
const W_IN: f64 = 500e-12;

static FILE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh (non-existent) checkpoint path, unique per call.
fn fresh_ckpt(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pulsar-durability-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = dir.join(format!(
        "{}-{}-{}.ckpt",
        std::process::id(),
        FILE_SEQ.fetch_add(1, Ordering::Relaxed),
        name
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deterministic synthetic per-sample value: depends only on the sample's
/// seeded RNG stream, like a real measurement.
fn synth(rng: &mut StdRng) -> f64 {
    rng.random::<f64>()
}

fn synth_spec(samples: usize, seed: u64) -> CheckpointSpec {
    CheckpointSpec {
        config_digest: 0x51AB_C0DE_D00D_F00Du64,
        seed,
        samples,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A kill can land on any byte of the checkpoint file. Whatever
    /// prefix survives, the resumed run must reproduce the uninterrupted
    /// result bit for bit and finish everything.
    #[test]
    fn resume_from_any_truncated_prefix_is_bit_identical(cut_permille in 0u32..=1000) {
        let mc = McConfig { threads: Some(2), ..McConfig::paper(16, 99) };
        let spec = synth_spec(16, 99);

        let baseline = mc
            .try_run_samples_durable("soak", &CancelToken::new(), None, |_, _, rng, _, _| {
                Ok(synth(rng))
            })
            .expect("clean synthetic run");
        let base_bits: Vec<(usize, u64)> = baseline
            .resolved_indexed()
            .map(|(i, v)| (i, v.to_bits()))
            .collect();

        // Write a full checkpoint, then keep only a byte prefix of it.
        let path = fresh_ckpt("prefix");
        {
            let ck = Checkpoint::create(&path, spec).expect("create");
            mc.try_run_samples_durable("soak", &CancelToken::new(), Some(&ck), |_, _, rng, _, _| {
                Ok(synth(rng))
            })
            .expect("checkpointed run");
        }
        let bytes = std::fs::read(&path).expect("read checkpoint");
        let cut = bytes.len() * cut_permille as usize / 1000;
        std::fs::write(&path, &bytes[..cut]).expect("truncate checkpoint");

        let ck = Checkpoint::open(&path, spec).expect("reopen truncated");
        let restored = ck.resumed_count();
        let resumed = mc
            .try_run_samples_durable("soak", &CancelToken::new(), Some(&ck), |_, _, rng, _, _| {
                Ok(synth(rng))
            })
            .expect("resumed run");

        let resumed_bits: Vec<(usize, u64)> = resumed
            .resolved_indexed()
            .map(|(i, v)| (i, v.to_bits()))
            .collect();
        prop_assert_eq!(&base_bits, &resumed_bits, "resume-equivalence");
        prop_assert!(resumed.is_complete(), "no lost samples");
        prop_assert_eq!(resumed.completeness.resumed, restored);
        prop_assert!(restored <= 16);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn kill_resume_cycles_lose_no_samples_and_converge() {
    let mc = McConfig {
        threads: Some(2),
        ..McConfig::paper(24, 7)
    };
    let spec = synth_spec(24, 7);
    let baseline = mc
        .try_run_samples_durable("soak", &CancelToken::new(), None, |_, _, rng, _, _| {
            Ok(synth(rng))
        })
        .expect("clean run");
    let base_bits: Vec<(usize, u64)> = baseline
        .resolved_indexed()
        .map(|(i, v)| (i, v.to_bits()))
        .collect();

    // Operator kills the run after ~6 fresh samples, over and over, always
    // resuming from the same checkpoint file.
    let path = fresh_ckpt("cycles");
    let mut cycles = 0;
    let mut last_restored = 0;
    let finished = loop {
        cycles += 1;
        assert!(cycles <= 24, "kill/resume must converge, not thrash");
        let ck = Checkpoint::open(&path, spec).expect("open checkpoint");
        assert!(
            ck.resumed_count() >= last_restored,
            "done samples must never be lost across cycles"
        );
        last_restored = ck.resumed_count();
        let token = CancelToken::new();
        let fresh = AtomicUsize::new(0);
        let run = mc
            .try_run_samples_durable("soak", &token, Some(&ck), |_, _, rng, _, _| {
                if fresh.fetch_add(1, Ordering::Relaxed) >= 5 {
                    token.cancel(CancelReason::User); // the simulated kill
                }
                Ok(synth(rng))
            })
            .expect("cycle run");
        if run.is_complete() {
            break run;
        }
        assert_eq!(run.completeness.truncated, Some("interrupted"));
    };

    assert!(cycles >= 2, "the kill must actually truncate at least once");
    let final_bits: Vec<(usize, u64)> = finished
        .resolved_indexed()
        .map(|(i, v)| (i, v.to_bits()))
        .collect();
    assert_eq!(base_bits, final_bits, "resume-equivalence after the soak");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn electrical_kill_resume_matches_uninterrupted_run() {
    let mc = McConfig {
        threads: Some(2),
        ..McConfig::paper(8, 11)
    };
    let study = PulseStudy::new(put(), mc, Polarity::PositiveGoing);
    let baseline = study
        .try_faulty_wouts_durable(W_IN, &RS, &CancelToken::new(), None)
        .expect("clean electrical run");
    let base_bits: Vec<Vec<u64>> = baseline
        .resolved_indexed()
        .map(|(_, row)| row.iter().map(|x| x.to_bits()).collect())
        .collect();

    let path = fresh_ckpt("electrical");
    let spec = study.faulty_checkpoint_spec(W_IN, &RS);
    {
        let ck = Checkpoint::create(&path, spec).expect("create");
        study
            .try_faulty_wouts_durable(W_IN, &RS, &CancelToken::new(), Some(&ck))
            .expect("checkpointed electrical run");
    }
    // Kill mid-file, then resume to completion.
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    let ck = Checkpoint::open(&path, spec).expect("reopen");
    let resumed = study
        .try_faulty_wouts_durable(W_IN, &RS, &CancelToken::new(), Some(&ck))
        .expect("resumed electrical run");
    let resumed_bits: Vec<Vec<u64>> = resumed
        .resolved_indexed()
        .map(|(_, row)| row.iter().map(|x| x.to_bits()).collect())
        .collect();
    assert_eq!(base_bits, resumed_bits);
    assert!(resumed.is_complete());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_stall_trips_the_sample_timeout_and_recovers_on_retry() {
    // Sample 3 stalls 2 s per accepted time point on its first attempt
    // only; the 500 ms per-sample timeout cuts it loose, the retry (fresh
    // timeout budget, no stall planned) recovers it. The margins are wide
    // on purpose: the retry must finish inside the timeout even on a
    // loaded CI machine running the whole suite in parallel (an idle
    // debug-build sample is ~40 ms).
    let mc = McConfig {
        threads: Some(2),
        resilience: ResilienceConfig {
            sample_timeout: Some(Duration::from_millis(500)),
            ..ResilienceConfig::tolerant(3, 0.3)
        },
        fault_plan: Some(FaultPlan::new().fail_sample(3, FaultKind::Stall { millis: 2000 }, 1)),
        ..McConfig::paper(8, 11)
    };
    let study = PulseStudy::new(put(), mc, Polarity::PositiveGoing);
    let run = study
        .try_faulty_wouts_durable(W_IN, &RS, &CancelToken::new(), None)
        .expect("timeout must be recoverable");

    assert!(
        run.is_complete(),
        "a sample timeout never truncates the run"
    );
    assert!(
        matches!(
            &run.outcomes[3],
            Some(SampleOutcome::Recovered { attempts: 2, .. })
        ),
        "sample 3 must recover on its second attempt: {:?}",
        run.outcomes[3].as_ref().map(|o| o.value().is_some())
    );
    assert_eq!(run.failures.recovered, 1);
    assert_eq!(run.failures.failed, 0);
    assert!(
        run.outcomes[3].as_ref().and_then(|o| o.value()).is_some(),
        "the recovered sample carries a real measurement"
    );
}

#[test]
fn panic_storm_is_contained_into_failed_samples() {
    let mc = McConfig {
        threads: Some(2),
        resilience: ResilienceConfig {
            contain_panics: true,
            ..ResilienceConfig::tolerant(1, 0.25)
        },
        fault_plan: Some(
            FaultPlan::new()
                .fail_sample(1, FaultKind::Panic, FaultPlan::ALWAYS)
                .fail_sample(6, FaultKind::Panic, FaultPlan::ALWAYS)
                .fail_sample(9, FaultKind::Panic, FaultPlan::ALWAYS),
        ),
        ..McConfig::paper(16, 5)
    };
    let study = PulseStudy::new(put(), mc, Polarity::PositiveGoing);
    let run = study
        .try_faulty_wouts_durable(W_IN, &RS, &CancelToken::new(), None)
        .expect("3/16 contained panics are inside a 25 % budget");

    assert!(
        run.is_complete(),
        "contained panics do not truncate the run"
    );
    assert_eq!(run.failures.failed, 3);
    for i in [1usize, 6, 9] {
        match &run.outcomes[i] {
            Some(SampleOutcome::Failed { error, .. }) => {
                assert_eq!(pulsar_core::error_kind(error), "panic");
                match error {
                    CoreError::Panic { message } => {
                        assert!(message.contains("injected panic"), "{message}");
                    }
                    other => panic!("expected CoreError::Panic, got {other:?}"),
                }
            }
            other => panic!("sample {i} must fail: {:?}", other.is_some()),
        }
    }
    // Every other sample resolved normally.
    assert_eq!(run.resolved_indexed().count(), 13);
}

#[test]
fn panic_storm_unwinds_by_default() {
    let mc = McConfig {
        threads: Some(2),
        fault_plan: Some(FaultPlan::new().fail_sample(2, FaultKind::Panic, FaultPlan::ALWAYS)),
        ..McConfig::paper(8, 5)
    };
    let study = PulseStudy::new(put(), mc, Polarity::PositiveGoing);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        study.try_faulty_wouts_durable(W_IN, &RS, &CancelToken::new(), None)
    }));
    assert!(
        result.is_err(),
        "without contain_panics a worker panic must unwind the caller"
    );
}
