//! Symbolic-factorization caching across a Monte Carlo study.
//!
//! The sparse solver's symbolic analysis (fill-reducing ordering +
//! elimination structure) depends only on circuit *topology*, which a
//! study never changes: process variation and resistance sweeps perturb
//! element values only. The study runner therefore primes the analysis
//! once on a nominal instance and every per-sample instance adopts it.
//! This test pins that contract with the global solver counters.
//!
//! Counters are process-global, so this file holds exactly one test and
//! runs as its own integration-test binary: nothing else in the process
//! touches the solver while it measures.

// This test is *about* the process-global legacy view: it pins the
// topology-wide analysis count across samples that share no workspace.
#[allow(deprecated)]
use pulsar_analog::solver_counters;
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{DefectKind, DfStudy, McConfig, PathUnderTest};

#[test]
#[allow(deprecated)]
fn study_runs_exactly_one_symbolic_analysis_per_topology() {
    // 32 stages → 36 MNA unknowns, above the sparse crossover, so
    // SolverMode::Auto engages the sparse engine without any forcing.
    let put = PathUnderTest {
        spec: PathSpec::inverter_chain(32),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    };
    let study = DfStudy::new(put, McConfig::paper(3, 7));

    let before = solver_counters();
    let report = study
        .try_faulty_needs(&[10e3, 80e3])
        .expect("study must resolve");
    let delta = solver_counters().since(&before);

    assert_eq!(report.outcomes.len(), 3);
    assert_eq!(
        delta.symbolic_analyses, 1,
        "one topology, one analysis — every sample and sweep point must \
         adopt the primed factorization: {delta:?}"
    );
    assert!(
        delta.sparse_solves > 0,
        "a 36-unknown circuit must route through the sparse engine: {delta:?}"
    );
    assert_eq!(
        delta.dense_fallbacks, 0,
        "a healthy chain must never fall back to dense: {delta:?}"
    );
    assert!(
        delta.numeric_factorizations > 0,
        "Newton must refactor numerically: {delta:?}"
    );
}
