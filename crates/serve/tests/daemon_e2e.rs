//! End-to-end daemon tests over a real Unix socket: whole-result cache
//! hits with zero transient solves (asserted via the obs counters),
//! malformed-line handling that keeps the connection open, busy
//! backpressure, cancel, stream, per-tenant failure budgets, and a
//! drain/restart cycle that resumes a checkpointed job bit-identically.

use std::path::PathBuf;
use std::time::Duration;

use pulsar_obs::json::{self, Json};
use pulsar_serve::{Client, Daemon, JobSpec, ServeConfig, StudyKind};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pulsar-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn small_study(seed: u64) -> JobSpec {
    JobSpec::Study {
        kind: StudyKind::Df,
        samples: 2,
        seed,
        rs: vec![1e3],
        factors: vec![1.0],
    }
}

fn counter(stats_payload: &str, name: &str) -> u64 {
    let doc = json::parse(stats_payload).expect("stats payload is JSON");
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_num)
        .map(|n| n as u64)
        .unwrap_or(0)
}

fn solves(stats_payload: &str) -> u64 {
    counter(stats_payload, "sparse_solves") + counter(stats_payload, "dense_solves")
}

#[test]
fn identical_digest_is_a_zero_solve_cache_hit() {
    let dir = tmp_dir("hit");
    let mut cfg = ServeConfig::new(dir.join("d.sock"));
    cfg.workers = 2;
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");

    // Cold submit: runs for real.
    let (job1, digest1, cached1) = c.submit(&small_study(7)).expect("submit 1");
    assert!(!cached1, "first submit of a digest cannot be cached");
    let o1 = c.wait(job1).expect("wait 1");
    assert_eq!(o1.state, "done", "{:?}", o1.error);
    let text1 = o1.result.clone().expect("done job has a result");
    assert!(
        text1.starts_with("df study on the paper path"),
        "result must be the CLI-identical report, got: {text1}"
    );

    let before = c.stats().expect("stats");
    assert!(solves(&before) > 0, "cold run must have spent solves");

    // Warm submit, identical digest: answered inline from the
    // whole-result cache with zero additional transient solves.
    let (job2, digest2, cached2) = c.submit(&small_study(7)).expect("submit 2");
    assert_eq!(digest1, digest2);
    assert!(cached2, "identical digest must be a whole-result hit");
    let o2 = c.wait(job2).expect("wait 2");
    assert_eq!(o2.state, "done");
    assert_eq!(
        o2.result.as_deref(),
        Some(text1.as_str()),
        "cache hit must be byte-identical"
    );
    let after = c.stats().expect("stats");
    assert_eq!(
        solves(&before),
        solves(&after),
        "a whole-result hit must spend zero transient solves"
    );
    assert!(counter(&after, "serve_result_cache_hits") >= 1);

    // Distinct digest: a real run again.
    let (job3, digest3, cached3) = c.submit(&small_study(8)).expect("submit 3");
    assert_ne!(digest1, digest3);
    assert!(!cached3);
    let o3 = c.wait(job3).expect("wait 3");
    assert_eq!(o3.state, "done", "{:?}", o3.error);
    assert_ne!(
        o3.result, o1.result,
        "a different seed must change the curves"
    );
    let end = c.stats().expect("stats");
    assert!(
        solves(&end) > solves(&after),
        "a distinct digest must run for real"
    );
    // The second job shares calibration-independent caches where keys
    // match: same topology, so the symbolic factorization was adopted.
    assert!(counter(&end, "serve_symbolic_cache_hits") >= 1);
    assert!(counter(&end, "serve_lint_cache_hits") >= 1);

    c.shutdown().expect("shutdown");
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_line_gets_typed_error_and_connection_survives() {
    let dir = tmp_dir("malformed");
    let daemon = Daemon::start(ServeConfig::new(dir.join("d.sock"))).expect("start daemon");

    // Drive the raw socket to inject garbage between valid requests.
    use std::io::{BufRead, BufReader, Write};
    let stream = std::os::unix::net::UnixStream::connect(daemon.socket()).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    let mut line = String::new();
    writer.write_all(b"this is not json\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"ok\":false") && line.contains("\"malformed\""),
        "garbage must get a typed error response, got: {line}"
    );

    line.clear();
    writer.write_all(b"{\"op\":\"nonsense\"}\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"ok\":false") && line.contains("\"usage\""),
        "unknown op must get a usage error, got: {line}"
    );

    // The same connection still serves valid requests.
    line.clear();
    writer.write_all(b"{\"op\":\"stats\"}\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"ok\":true") && line.contains("\"op\":\"stats\""),
        "connection must survive malformed lines, got: {line}"
    );

    line.clear();
    writer
        .write_all(b"{\"op\":\"status\",\"job\":999}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"unknown-job\""), "got: {line}");

    drop(writer);
    let mut c = Client::connect(daemon.socket()).expect("connect");
    c.shutdown().expect("shutdown");
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_cancel_and_stream() {
    let dir = tmp_dir("backpressure");
    let mut cfg = ServeConfig::new(dir.join("d.sock"));
    cfg.workers = 1;
    cfg.queue_depth = 1;
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");

    // One worker, queue depth 1: rapid distinct submits must trip the
    // typed busy rejection long before the worker can drain real
    // Monte Carlo jobs.
    let mut admitted = Vec::new();
    let mut saw_busy = false;
    for seed in 100..120 {
        match c.submit(&small_study(seed)) {
            Ok((job, _, _)) => admitted.push(job),
            Err(e) => {
                assert_eq!(e.kind, "busy", "expected busy, got {e}");
                saw_busy = true;
                break;
            }
        }
    }
    assert!(
        saw_busy,
        "20 rapid submits never hit the depth-1 queue bound"
    );
    assert!(admitted.len() >= 2, "at least running + queued");

    // The queued (not yet running) job can be cancelled and never runs.
    let last = *admitted.last().expect("non-empty");
    let o = c.cancel(last).expect("cancel");
    assert!(
        o.state == "cancelled" || o.state == "running",
        "cancel of a queued job: got {}",
        o.state
    );
    let o = c.wait(last).expect("wait cancelled");
    assert_eq!(o.state, "cancelled");

    // Every admitted job reaches a terminal state; the first ran to
    // completion and its journal streams (events, then the marker).
    let first = admitted[0];
    let o = c.wait(first).expect("wait first");
    assert_eq!(o.state, "done", "{:?}", o.error);
    let mut events = 0;
    let mut c2 = Client::connect(daemon.socket()).expect("second connection");
    let state = c2.stream(first, |_payload| events += 1).expect("stream");
    assert_eq!(state, "done");
    assert!(events > 0, "a completed study job must have journal events");

    let stats = c.stats().expect("stats");
    assert!(counter(&stats, "serve_busy_rejections") >= 1);
    assert!(counter(&stats, "serve_jobs_cancelled") >= 1);

    c.shutdown().expect("shutdown");
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_failure_budget_rejects_repeat_offenders() {
    let dir = tmp_dir("tenant");
    let mut cfg = ServeConfig::new(dir.join("d.sock"));
    cfg.tenant_budget = Some(1);
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");

    // A campaign on unparseable netlist text fails (and is not cached).
    let broken = JobSpec::Campaign {
        netlist: "this is not an iscas85 netlist".to_owned(),
        stride: 1,
    };
    let (job, _, _) = c
        .submit_with(&broken, Some("team-a"), None, None)
        .expect("submit broken");
    let o = c.wait(job).expect("wait broken");
    assert_eq!(o.state, "failed", "{o:?}");

    // team-a is now over its failed-job budget of 1.
    let e = c
        .submit_with(&small_study(1), Some("team-a"), None, None)
        .expect_err("over-budget tenant must be rejected");
    assert_eq!(e.kind, "tenant-budget");

    // Other tenants are unaffected.
    let (job, _, _) = c
        .submit_with(&small_study(1), Some("team-b"), None, None)
        .expect("submit team-b");
    let o = c.wait(job).expect("wait team-b");
    assert_eq!(o.state, "done", "{:?}", o.error);

    let stats = c.stats().expect("stats");
    assert!(counter(&stats, "serve_tenant_rejections") >= 1);
    assert!(counter(&stats, "serve_jobs_failed") >= 1);

    c.shutdown().expect("shutdown");
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_checkpoints_and_restart_resumes_bit_identically() {
    let dir = tmp_dir("drain");
    let spool = dir.join("spool");
    let spec = JobSpec::Study {
        kind: StudyKind::Df,
        samples: 6,
        seed: 42,
        rs: vec![1e3, 30e3],
        factors: vec![0.9, 1.1],
    };

    // Reference: a daemon that runs the job to completion untouched.
    let mut cfg = ServeConfig::new(dir.join("ref.sock"));
    cfg.spool = Some(dir.join("ref-spool"));
    let daemon = Daemon::start(cfg).expect("start ref daemon");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");
    let (job, _, _) = c.submit(&spec).expect("submit ref");
    let reference = c.wait(job).expect("wait ref");
    assert_eq!(reference.state, "done", "{:?}", reference.error);
    let reference_text = reference.result.expect("ref result");
    c.shutdown().expect("shutdown ref");
    daemon.join().expect("join ref");

    // Interrupted daemon: shut down while the job is (most likely)
    // mid-run. Whatever progress it made is in the spool checkpoint.
    let mut cfg = ServeConfig::new(dir.join("a.sock"));
    cfg.spool = Some(spool.clone());
    let daemon = Daemon::start(cfg).expect("start daemon a");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");
    let (job, _, _) = c.submit(&spec).expect("submit a");
    daemon.shutdown();
    let o = c.wait(job).expect("wait a");
    assert!(
        o.state == "cancelled" || o.state == "done",
        "drained job must be cancelled (or already done), got {}",
        o.state
    );
    daemon.join().expect("join a");

    // Restarted daemon, same spool: the resubmitted digest resumes from
    // the checkpoint and the final curves are byte-identical to the
    // uninterrupted run.
    let mut cfg = ServeConfig::new(dir.join("b.sock"));
    cfg.spool = Some(spool);
    let daemon = Daemon::start(cfg).expect("start daemon b");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");
    let (job, _, _) = c.submit(&spec).expect("submit b");
    let o = c.wait(job).expect("wait b");
    assert_eq!(o.state, "done", "{:?}", o.error);
    assert_eq!(
        o.result.as_deref(),
        Some(reference_text.as_str()),
        "resumed run must be bit-identical to an uninterrupted run"
    );
    c.shutdown().expect("shutdown b");
    let summary = daemon.join().expect("join b");
    assert!(summary.jobs_completed >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_writes_a_serve_manifest() {
    let dir = tmp_dir("manifest");
    let manifest_path = dir.join("serve.json");
    let mut cfg = ServeConfig::new(dir.join("d.sock"));
    cfg.metrics_out = Some(manifest_path.clone());
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut c = Client::connect_within(daemon.socket(), Duration::from_secs(5)).expect("connect");
    let (job, _, _) = c.submit(&small_study(3)).expect("submit");
    let o = c.wait(job).expect("wait");
    assert_eq!(o.state, "done", "{:?}", o.error);
    c.shutdown().expect("shutdown");
    let summary = daemon.join().expect("join");
    assert_eq!(summary.jobs_admitted, 1);
    assert_eq!(summary.jobs_completed, 1);

    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let doc = json::parse(&text).expect("manifest is JSON");
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("serve"),
        "{text}"
    );
    let serve = doc.get("serve").expect("serve block");
    assert_eq!(serve.get("jobs_admitted").and_then(Json::as_num), Some(1.0));
    let _ = std::fs::remove_dir_all(&dir);
}
