//! Golden-corpus test for the wire protocol: every canonical line in
//! `tests/proto/corpus.txt` (repo root) must round-trip byte-for-byte
//! through parse + render, and every `BAD*` line must be rejected with
//! a typed error. The corpus is the protocol's compatibility contract:
//! a change that rewrites a canonical line is a wire-format break and
//! must update DESIGN.md §5.10 alongside the corpus.

use pulsar_serve::{Request, Response};

fn corpus() -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/proto/corpus.txt");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn corpus_round_trips_and_rejections() {
    let text = corpus();
    let mut reqs = 0;
    let mut bad_reqs = 0;
    let mut resps = 0;
    let mut bad_resps = 0;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(payload) = line.strip_prefix("REQ ") {
            let req = Request::parse(payload)
                .unwrap_or_else(|e| panic!("corpus line {n}: REQ must parse, got: {e}"));
            assert_eq!(
                req.render(),
                payload,
                "corpus line {n}: canonical request must re-render identically"
            );
            reqs += 1;
        } else if let Some(payload) = line.strip_prefix("BADREQ ") {
            assert!(
                Request::parse(payload).is_err(),
                "corpus line {n}: BADREQ must be rejected: {payload}"
            );
            bad_reqs += 1;
        } else if let Some(payload) = line.strip_prefix("RESP ") {
            let resp = Response::parse(payload)
                .unwrap_or_else(|e| panic!("corpus line {n}: RESP must parse, got: {e}"));
            assert_eq!(
                resp.render(),
                payload,
                "corpus line {n}: canonical response must re-render identically"
            );
            resps += 1;
        } else if let Some(payload) = line.strip_prefix("BADRESP ") {
            assert!(
                Response::parse(payload).is_err(),
                "corpus line {n}: BADRESP must be rejected: {payload}"
            );
            bad_resps += 1;
        } else {
            panic!("corpus line {n}: unknown directive: {line}");
        }
    }
    // Guard against the corpus silently shrinking.
    assert!(reqs >= 10, "expected >= 10 canonical requests, got {reqs}");
    assert!(
        bad_reqs >= 10,
        "expected >= 10 bad requests, got {bad_reqs}"
    );
    assert!(
        resps >= 10,
        "expected >= 10 canonical responses, got {resps}"
    );
    assert!(
        bad_resps >= 5,
        "expected >= 5 bad responses, got {bad_resps}"
    );
}

/// A typed error response for a malformed line renders as valid JSON
/// that itself parses as a Response::Error — the framing never
/// collapses into free text.
#[test]
fn malformed_request_error_response_is_well_formed() {
    let err = Request::parse("not json").expect_err("must reject");
    let resp = Response::Error {
        kind: "malformed".to_owned(),
        message: err,
    };
    let line = resp.render();
    match Response::parse(&line).expect("error response must parse") {
        Response::Error { kind, .. } => assert_eq!(kind, "malformed"),
        other => panic!("expected error response, got {other:?}"),
    }
}
