//! The daemon: Unix-socket listener, protocol front-end, worker pool,
//! and graceful drain.
//!
//! Threads:
//!
//! - the **accept loop** (joined) polls a non-blocking `UnixListener`
//!   (~25 ms) so it notices the shutdown token without a connection;
//! - one detached **connection handler** per client, reading request
//!   lines and writing response lines (a `stream` op occupies its
//!   connection until the job ends — use a second connection for
//!   control);
//! - `workers` **worker threads** (joined) popping job ids off the
//!   bounded [`JobQueue`] and executing them through the cross-job
//!   [`ServeCaches`].
//!
//! Shutdown (client `shutdown` op, or [`Daemon::shutdown`], e.g. from a
//! SIGINT handler) cancels the daemon token — which, being the parent
//! of every job token, interrupts running jobs mid-solve so their
//! durable runs flush checkpoints — closes the queue, and lets the
//! workers drain the backlog as `cancelled` jobs. [`Daemon::join`]
//! collects the threads, removes the socket, writes the serve manifest,
//! and returns a [`ServeSummary`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pulsar_obs::{CancelReason, CancelToken, Counter, Recorder, RunManifest, ServeManifest};

use crate::cache::ServeCaches;
use crate::job::{execute, Job, JobState, JobTable};
use crate::proto::{Request, Response};
use crate::queue::{JobQueue, PushError};
use crate::spec::JobSpec;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (removed and re-created).
    pub socket: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bound on queued (not yet running) jobs; past it, submits get a
    /// typed `busy` rejection.
    pub queue_depth: usize,
    /// Checkpoint spool directory. `None` disables durable jobs: a
    /// killed daemon restarts cold instead of resuming.
    pub spool: Option<PathBuf>,
    /// Per-tenant failed-job budget: once a tenant accumulates this
    /// many failed jobs, further submits are rejected (`tenant-budget`).
    pub tenant_budget: Option<u64>,
    /// Where to write the serve run manifest at shutdown.
    pub metrics_out: Option<PathBuf>,
}

impl ServeConfig {
    /// A config with the CLI defaults for everything but the socket.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            workers: 2,
            queue_depth: 8,
            spool: None,
            tenant_budget: None,
            metrics_out: None,
        }
    }
}

/// What the daemon did over its lifetime, reported by [`Daemon::join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs admitted (queued or answered from the whole-result cache).
    pub jobs_admitted: u64,
    /// Jobs completed successfully (cache hits included).
    pub jobs_completed: u64,
    /// Jobs that ended `failed`.
    pub jobs_failed: u64,
    /// Jobs that ended `cancelled` (client cancels and shutdown drain).
    pub jobs_drained: u64,
    /// Whole-result cache hits.
    pub result_cache_hits: u64,
}

struct DaemonInner {
    cfg: ServeConfig,
    queue: JobQueue,
    table: JobTable,
    caches: ServeCaches,
    token: CancelToken,
    rec: Recorder,
    /// Failed-job counts per tenant, for the admission budget.
    tenants: Mutex<HashMap<String, u64>>,
}

impl DaemonInner {
    fn tenant_over_budget(&self, tenant: &str) -> bool {
        match self.cfg.tenant_budget {
            Some(budget) => {
                let t = lock_clean(&self.tenants);
                t.get(tenant).copied().unwrap_or(0) >= budget
            }
            None => false,
        }
    }

    fn bill_tenant_failure(&self, tenant: &str) {
        let mut t = lock_clean(&self.tenants);
        *t.entry(tenant.to_owned()).or_insert(0) += 1;
    }

    fn shutdown(&self) {
        self.token.cancel(CancelReason::User);
        self.queue.close();
    }
}

/// A running daemon. Dropping it does *not* stop it; call
/// [`Daemon::shutdown`] + [`Daemon::join`] (or send the `shutdown` op).
pub struct Daemon {
    inner: Arc<DaemonInner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    started_unix_ms: u64,
    started: std::time::Instant,
}

impl Daemon {
    /// Binds the socket, starts the accept loop and the worker pool.
    ///
    /// # Errors
    ///
    /// I/O errors binding the socket or creating the spool directory.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Daemon> {
        if let Some(spool) = &cfg.spool {
            std::fs::create_dir_all(spool)?;
        }
        // A stale socket file from a killed daemon blocks bind; the
        // kill/resume flow depends on replacing it.
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        let inner = Arc::new(DaemonInner {
            queue: JobQueue::new(cfg.queue_depth),
            table: JobTable::new(),
            caches: ServeCaches::default(),
            token: CancelToken::new(),
            rec: Recorder::enabled(),
            tenants: Mutex::new(HashMap::new()),
            cfg,
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_inner));

        let mut workers = Vec::new();
        for _ in 0..inner.cfg.workers.max(1) {
            let w = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&w)));
        }
        // Watchdog: a bare token cancel (e.g. a SIGINT bridge tripping
        // `Daemon::token`) must also close the queue, or the workers
        // would block in `pop` forever. Joined with the workers.
        let wd = Arc::clone(&inner);
        workers.push(std::thread::spawn(move || {
            while !wd.token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(25));
            }
            wd.queue.close();
        }));

        Ok(Daemon {
            inner,
            accept: Some(accept),
            workers,
            started_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
                .unwrap_or(0),
            started: std::time::Instant::now(),
        })
    }

    /// The daemon cancellation token (parent of every job token).
    /// Cancel it from a signal handler to drain and exit.
    pub fn token(&self) -> &CancelToken {
        &self.inner.token
    }

    /// The socket path the daemon is listening on.
    pub fn socket(&self) -> &Path {
        &self.inner.cfg.socket
    }

    /// Initiates a graceful drain (idempotent): stop admitting, cancel
    /// the job tokens so durable runs flush their checkpoints, close
    /// the queue.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// Waits for the accept loop and workers to finish, removes the
    /// socket, writes the serve manifest (when configured), and returns
    /// the lifetime summary. Blocks until someone triggers shutdown.
    pub fn join(mut self) -> std::io::Result<ServeSummary> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.inner.cfg.socket);

        let snap = self.inner.rec.snapshot();
        let summary = ServeSummary {
            jobs_admitted: snap.counter(Counter::ServeJobsSubmitted),
            jobs_completed: snap.counter(Counter::ServeJobsCompleted),
            jobs_failed: snap.counter(Counter::ServeJobsFailed),
            jobs_drained: snap.counter(Counter::ServeJobsCancelled),
            result_cache_hits: snap.counter(Counter::ServeResultCacheHits),
        };
        if let Some(path) = &self.inner.cfg.metrics_out {
            let digest = pulsar_obs::config_digest(&format!(
                "serve workers={} queue_depth={}",
                self.inner.cfg.workers, self.inner.cfg.queue_depth
            ));
            let mut manifest = RunManifest::new("serve", digest);
            manifest.threads = Some(self.inner.cfg.workers);
            manifest.serve = Some(ServeManifest {
                workers: self.inner.cfg.workers as u64,
                queue_depth: self.inner.cfg.queue_depth as u64,
                jobs_admitted: summary.jobs_admitted,
                jobs_drained: summary.jobs_drained,
                tenant_budget: self.inner.cfg.tenant_budget,
            });
            manifest.started_unix_ms = self.started_unix_ms;
            manifest.wall_ms =
                u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
            manifest.events = self.inner.rec.event_count();
            manifest.metrics = snap;
            let mut doc = manifest.render_json();
            doc.push('\n');
            std::fs::write(path, doc)?;
        }
        Ok(summary)
    }
}

fn accept_loop(listener: UnixListener, inner: &Arc<DaemonInner>) {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn_inner = Arc::clone(inner);
                // spawn: detached by design — the handler lives as long as
                // its client connection; shutdown closes the listener and
                // pending handlers see queue/table errors and return.
                std::thread::spawn(move || handle_connection(stream, &conn_inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if inner.token.is_cancelled() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => {
                if inner.token.is_cancelled() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn worker_loop(inner: &Arc<DaemonInner>) {
    while let Some(id) = inner.queue.pop() {
        let Some(job) = inner.table.get(id) else {
            continue;
        };
        if !job.begin_running() {
            // Cancelled while queued (client cancel or shutdown drain):
            // never run it. A client cancel already installed the
            // terminal state; the drain path installs it here.
            job.finish(JobState::Cancelled {
                reason: job
                    .token
                    .cancelled()
                    .map(CancelReason::label)
                    .unwrap_or("cancelled")
                    .to_owned(),
            });
            settle(inner, &job, None);
            continue;
        }
        let state = execute(&job, &inner.caches, inner.cfg.spool.as_deref());
        settle(inner, &job, Some(state));
    }
}

/// Bills tenant failures, folds the job's counters into the daemon
/// recorder, then installs the terminal state. Accounting lands
/// *before* `finish` wakes any `wait`/`stream` clients, so a stats
/// request issued right after a wait returns sees the job's work.
fn settle(inner: &DaemonInner, job: &Job, state: Option<JobState>) {
    let label = match &state {
        Some(s) => s.name().to_owned(),
        None => job.outcome().state,
    };
    match label.as_str() {
        "done" => inner.rec.add(Counter::ServeJobsCompleted, 1),
        "failed" => {
            inner.rec.add(Counter::ServeJobsFailed, 1);
            inner.bill_tenant_failure(&job.tenant);
        }
        _ => inner.rec.add(Counter::ServeJobsCancelled, 1),
    }
    let snap = job.rec.snapshot();
    for c in Counter::ALL {
        let n = snap.counter(c);
        if n > 0 {
            inner.rec.add(c, n);
        }
    }
    if let Some(state) = state {
        job.finish(state);
    }
}

fn handle_connection(stream: UnixStream, inner: &Arc<DaemonInner>) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(reader_half);
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply_ok = match Request::parse(&line) {
            Ok(req) => respond(&req, inner, &mut writer),
            Err(msg) => {
                let kind = if msg.starts_with("malformed JSON") {
                    "malformed"
                } else {
                    "usage"
                };
                write_line(
                    &mut writer,
                    &Response::Error {
                        kind: kind.to_owned(),
                        message: msg,
                    },
                )
            }
        };
        if !reply_ok {
            return;
        }
    }
}

/// Handles one request; returns false when the connection is dead.
fn respond(req: &Request, inner: &Arc<DaemonInner>, w: &mut UnixStream) -> bool {
    match req {
        Request::Submit {
            spec,
            tenant,
            deadline_ms,
            failure_budget,
        } => {
            let resp = submit(
                inner,
                spec,
                tenant.as_deref(),
                *deadline_ms,
                *failure_budget,
            );
            write_line(w, &resp)
        }
        Request::Status { job } => with_job(inner, *job, w, |job, w| {
            write_line(w, &outcome_response(&job.outcome()))
        }),
        Request::Wait { job } => with_job(inner, *job, w, |job, w| {
            write_line(w, &outcome_response(&job.wait_terminal()))
        }),
        Request::Cancel { job } => with_job(inner, *job, w, |job, w| {
            job.cancel();
            write_line(w, &outcome_response(&job.outcome()))
        }),
        Request::Stream { job } => with_job(inner, *job, w, |job, w| stream_job(&job, w)),
        Request::Stats => write_line(
            w,
            &Response::Stats {
                payload: stats_payload(inner),
            },
        ),
        Request::Shutdown => {
            let ok = write_line(w, &Response::Bye);
            inner.shutdown();
            ok
        }
    }
}

fn with_job(
    inner: &Arc<DaemonInner>,
    id: u64,
    w: &mut UnixStream,
    f: impl FnOnce(Arc<Job>, &mut UnixStream) -> bool,
) -> bool {
    match inner.table.get(id) {
        Some(job) => f(job, w),
        None => write_line(
            w,
            &Response::Error {
                kind: "unknown-job".to_owned(),
                message: format!("no job {id}"),
            },
        ),
    }
}

fn submit(
    inner: &Arc<DaemonInner>,
    spec: &JobSpec,
    tenant: Option<&str>,
    deadline_ms: Option<u64>,
    failure_budget: Option<f64>,
) -> Response {
    if inner.token.is_cancelled() {
        return Response::Error {
            kind: "shutdown".to_owned(),
            message: "daemon is draining".to_owned(),
        };
    }
    let tenant = tenant.unwrap_or("anonymous");
    if inner.tenant_over_budget(tenant) {
        inner.rec.add(Counter::ServeTenantRejections, 1);
        return Response::Error {
            kind: "tenant-budget".to_owned(),
            message: format!("tenant `{tenant}` is over its failed-job budget"),
        };
    }
    let digest = spec.digest();

    // Whole-result fast path: an identical digest that already completed
    // is answered inline — no queue slot, no worker, zero solves.
    if let Some(hit) = inner.caches.result.lookup(digest) {
        let job = inner
            .table
            .create(spec.clone(), tenant.to_owned(), None, None, &inner.token);
        job.begin_running();
        job.finish(JobState::Done {
            text: hit.text,
            cached: true,
        });
        inner.rec.add(Counter::ServeJobsSubmitted, 1);
        inner.rec.add(Counter::ServeResultCacheHits, 1);
        inner.rec.add(Counter::ServeJobsCompleted, 1);
        return Response::Accepted {
            job: job.id,
            digest,
            cached: true,
            state: "done".to_owned(),
        };
    }

    let job = inner.table.create(
        spec.clone(),
        tenant.to_owned(),
        deadline_ms.map(Duration::from_millis),
        failure_budget,
        &inner.token,
    );
    match inner.queue.push(job.id) {
        Ok(()) => {
            inner.rec.add(Counter::ServeJobsSubmitted, 1);
            Response::Accepted {
                job: job.id,
                digest,
                cached: false,
                state: "queued".to_owned(),
            }
        }
        Err(e) => {
            job.finish(JobState::Cancelled {
                reason: "rejected".to_owned(),
            });
            let (kind, message) = match e {
                PushError::Busy => {
                    inner.rec.add(Counter::ServeBusyRejections, 1);
                    (
                        "busy",
                        format!("queue full (depth {})", inner.cfg.queue_depth),
                    )
                }
                PushError::Closed => ("shutdown", "daemon is draining".to_owned()),
            };
            Response::Error {
                kind: kind.to_owned(),
                message,
            }
        }
    }
}

fn outcome_response(o: &crate::job::JobOutcome) -> Response {
    Response::Status {
        job: o.job,
        state: o.state.clone(),
        result: o.result.clone(),
        error: o.error.clone(),
    }
}

/// Forwards journal events as they land, then the terminal marker.
/// Polls the job recorder (~10 ms); the job's own threads never block
/// on a slow stream consumer.
fn stream_job(job: &Job, w: &mut UnixStream) -> bool {
    let mut sent = 0usize;
    loop {
        let events = job.rec.events();
        for e in &events[sent.min(events.len())..] {
            if !write_line(
                w,
                &Response::Event {
                    payload: e.render_jsonl(),
                },
            ) {
                return false;
            }
        }
        sent = events.len();
        let o = job.outcome();
        if o.terminal && sent == job.rec.event_count() {
            return write_line(
                w,
                &Response::StreamEnd {
                    job: o.job,
                    state: o.state,
                },
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stats_payload(inner: &DaemonInner) -> String {
    use std::fmt::Write as _;
    let snap = inner.rec.snapshot();
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for c in Counter::ALL {
        let n = snap.counter(c);
        if n > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{n}", c.name());
        }
    }
    let _ = write!(
        out,
        "}},\"queue\":{},\"jobs\":{},\"caches\":{{\"result\":{},\"calib\":{},\"lint\":{},\
         \"symbolic\":{}}}}}",
        inner.queue.len(),
        inner.table.len(),
        inner.caches.result.len(),
        inner.caches.calib.len(),
        inner.caches.lint.len(),
        inner.caches.symbolic.len()
    );
    out
}

fn write_line(w: &mut UnixStream, resp: &Response) -> bool {
    let mut line = resp.render();
    line.push('\n');
    w.write_all(line.as_bytes()).is_ok()
}

fn lock_clean<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}
