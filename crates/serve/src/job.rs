//! Job table, per-job state machine, and job execution.
//!
//! A [`Job`] is one submitted unit of work: its spec, its digest, its
//! own [`CancelToken`] (a child of the daemon token, so daemon shutdown
//! cancels every job) and its own enabled [`Recorder`] (so `stream` can
//! forward journal events and `stats` can fold per-job counters into
//! the daemon totals). State transitions are guarded so that a job
//! cancelled while still queued can never start running — the
//! queue-handoff/cancel interleaving is explored exhaustively by
//! protocol model P4 in `pulsar-check`.
//!
//! [`execute`] runs a job the way the one-shot CLI would, but through
//! the cross-job caches: lint verdicts, calibrated operating points and
//! symbolic factorizations are fetched (or filled once) from
//! [`ServeCaches`], and the whole run is wrapped in the whole-result
//! cache so an identical config digest is answered with zero solves.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pulsar_analog::Polarity;
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{
    error_kind, Campaign, CheckpointSpec, CoreError, CoverageCurve, DefectKind, DfStudy, McConfig,
    PathUnderTest, PulseStudy, ResilienceConfig,
};
use pulsar_logic::parse_iscas85;
use pulsar_obs::{CancelReason, CancelToken, Counter, Recorder};
use pulsar_timing::TimingLibrary;

use crate::cache::{CacheOutcome, CachedResult, CalibEntry, LintVerdict, ServeCaches};
use crate::spec::{JobSpec, StudyKind};

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// In the queue, not yet picked up by a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done {
        /// The rendered report, byte-identical to the one-shot CLI.
        text: String,
        /// True when answered from the whole-result cache.
        cached: bool,
    },
    /// Finished unsuccessfully.
    Failed {
        /// Stable failure kind (`lint`, `budget`, `checkpoint`, `run`).
        kind: String,
        /// Human-readable message.
        error: String,
    },
    /// Cancelled by the client, a deadline, or daemon shutdown. With a
    /// spool directory the partial progress is checkpointed, so a
    /// resubmission resumes instead of restarting.
    Cancelled {
        /// Why (`interrupted`, `deadline`, `truncated`, ...).
        reason: String,
    },
}

impl JobState {
    /// Stable state label for the wire protocol.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled { .. } => "cancelled",
        }
    }

    /// True for states no transition leaves.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed { .. } | JobState::Cancelled { .. }
        )
    }
}

/// Snapshot of a job's state, flattened for the wire protocol.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job id.
    pub job: u64,
    /// State label (`queued` | `running` | `done` | `failed` |
    /// `cancelled`).
    pub state: String,
    /// Report text, when done.
    pub result: Option<String>,
    /// Error message, when failed or cancelled.
    pub error: Option<String>,
    /// True once no further transitions can happen.
    pub terminal: bool,
}

/// One submitted job.
pub struct Job {
    /// Job id, unique within the daemon.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// Whole-result cache key ([`JobSpec::digest`]).
    pub digest: u64,
    /// Tenant billed for this job's failures.
    pub tenant: String,
    /// Per-job deadline, if any.
    pub deadline: Option<Duration>,
    /// Per-job Monte Carlo failure budget override.
    pub failure_budget: Option<f64>,
    /// Child of the daemon token: daemon shutdown cancels the job, a
    /// job cancel leaves the daemon alone.
    pub token: CancelToken,
    /// Per-job journal + counters (enabled, for `stream` / `stats`).
    pub rec: Recorder,
    state: Mutex<JobState>,
    terminal: Condvar,
}

impl Job {
    /// Current state, flattened.
    pub fn outcome(&self) -> JobOutcome {
        self.to_outcome(&lock_clean(&self.state))
    }

    fn to_outcome(&self, st: &JobState) -> JobOutcome {
        let (result, error) = match st {
            JobState::Done { text, .. } => (Some(text.clone()), None),
            JobState::Failed { error, .. } => (None, Some(error.clone())),
            JobState::Cancelled { reason } => (None, Some(format!("cancelled: {reason}"))),
            _ => (None, None),
        };
        JobOutcome {
            job: self.id,
            state: st.name().to_owned(),
            result,
            error,
            terminal: st.is_terminal(),
        }
    }

    /// Queued → Running, refusing when the job was cancelled while
    /// queued (or is in any other state). P4 invariant: a job observed
    /// cancelled at dequeue never starts.
    pub fn begin_running(&self) -> bool {
        let mut st = lock_clean(&self.state);
        if *st == JobState::Queued && self.token.cancelled().is_none() {
            *st = JobState::Running;
            true
        } else {
            false
        }
    }

    /// Installs a terminal state and wakes every `wait`/`stream` blocked
    /// on it. Refuses to overwrite an existing terminal state (a cancel
    /// that raced the final transition keeps whichever landed first).
    pub fn finish(&self, state: JobState) {
        debug_assert!(state.is_terminal());
        let mut st = lock_clean(&self.state);
        if !st.is_terminal() {
            *st = state;
        }
        drop(st);
        self.terminal.notify_all();
    }

    /// Requests cancellation. A queued job transitions to `Cancelled`
    /// immediately; a running job has its token tripped and transitions
    /// when the durable run unwinds (flushing its checkpoint). Returns
    /// false when the job was already terminal.
    pub fn cancel(&self) -> bool {
        let mut st = lock_clean(&self.state);
        match &*st {
            JobState::Queued => {
                self.token.cancel(CancelReason::User);
                *st = JobState::Cancelled {
                    reason: CancelReason::User.label().to_owned(),
                };
                drop(st);
                self.terminal.notify_all();
                true
            }
            JobState::Running => {
                self.token.cancel(CancelReason::User);
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait_terminal(&self) -> JobOutcome {
        let mut st = lock_clean(&self.state);
        while !st.is_terminal() {
            st = match self.terminal.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        self.to_outcome(&st)
    }
}

/// Registry of every job the daemon has accepted.
pub struct JobTable {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    // ordering: pure id allocation, no data published through it.
    next_id: AtomicU64,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> JobTable {
        JobTable {
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Registers a new queued job under a fresh id. The job's token is
    /// a child of `parent` (the daemon token).
    pub fn create(
        &self,
        spec: JobSpec,
        tenant: String,
        deadline: Option<Duration>,
        failure_budget: Option<f64>,
        parent: &CancelToken,
    ) -> Arc<Job> {
        // ordering: id allocation only, publication is via the table mutex
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let digest = spec.digest();
        let job = Arc::new(Job {
            id,
            spec,
            digest,
            tenant,
            deadline,
            failure_budget,
            token: parent.child(),
            rec: Recorder::enabled(),
            state: Mutex::new(JobState::Queued),
            terminal: Condvar::new(),
        });
        lock_clean(&self.jobs).insert(id, Arc::clone(&job));
        job
    }

    /// Looks a job up by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        lock_clean(&self.jobs).get(&id).cloned()
    }

    /// Number of jobs ever accepted and still tracked.
    pub fn len(&self) -> usize {
        lock_clean(&self.jobs).len()
    }

    /// True when no jobs are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of jobs currently in a non-terminal state.
    pub fn live_ids(&self) -> Vec<u64> {
        lock_clean(&self.jobs)
            .values()
            .filter(|j| !j.outcome().terminal)
            .map(|j| j.id)
            .collect()
    }
}

fn lock_clean<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// The built-in paper path, exactly as `pulsar study` constructs it.
fn paper_put() -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

enum RunError {
    Core(CoreError),
    Lint(String),
    Cancelled(String),
}

impl From<CoreError> for RunError {
    fn from(e: CoreError) -> RunError {
        RunError::Core(e)
    }
}

/// Executes a job to a terminal state. The worker loop calls this after
/// a successful [`Job::begin_running`]; the caller installs the
/// returned state via [`Job::finish`].
///
/// The whole run sits behind the whole-result cache: an identical
/// digest that already completed returns its report with zero solves; a
/// concurrent identical digest blocks until the first fill publishes
/// (single-fill, see [`crate::fill::FillSlot`]). Failed or cancelled
/// runs abandon the fill so a resubmission recomputes (resuming from
/// the spool checkpoint when one exists).
pub fn execute(job: &Job, caches: &ServeCaches, spool: Option<&Path>) -> JobState {
    let filled = caches
        .result
        .get_or_fill(job.digest, || run_uncached(job, caches, spool));
    match filled {
        Ok((r, CacheOutcome::Filled)) => {
            job.rec.add(Counter::ServeResultCacheMisses, 1);
            JobState::Done {
                text: r.text,
                cached: false,
            }
        }
        Ok((r, CacheOutcome::Hit)) => {
            job.rec.add(Counter::ServeResultCacheHits, 1);
            JobState::Done {
                text: r.text,
                cached: true,
            }
        }
        Err(RunError::Lint(rendered)) => JobState::Failed {
            kind: "lint".to_owned(),
            error: rendered,
        },
        Err(RunError::Cancelled(reason)) => JobState::Cancelled { reason },
        Err(RunError::Core(e)) => {
            let kind = match &e {
                CoreError::LintRejected { .. } => "lint",
                CoreError::FailureBudgetExceeded { .. } => "budget",
                CoreError::Checkpoint { .. } => "checkpoint",
                other => error_kind(other),
            };
            JobState::Failed {
                kind: kind.to_owned(),
                error: e.to_string(),
            }
        }
    }
}

fn run_uncached(
    job: &Job,
    caches: &ServeCaches,
    spool: Option<&Path>,
) -> Result<CachedResult, RunError> {
    match &job.spec {
        JobSpec::Study {
            kind,
            samples,
            seed,
            rs,
            factors,
        } => run_study(job, caches, spool, *kind, *samples, *seed, rs, factors),
        JobSpec::Campaign { netlist, stride } => run_campaign(job, spool, netlist, *stride),
    }
}

fn resilience_for(job: &Job) -> ResilienceConfig {
    ResilienceConfig {
        deadline: job.deadline,
        failure_budget: job
            .failure_budget
            .unwrap_or(ResilienceConfig::default().failure_budget),
        contain_panics: true,
        ..ResilienceConfig::default()
    }
}

fn spool_path(spool: Option<&Path>, digest: u64) -> Option<PathBuf> {
    spool.map(|d| d.join(format!("job-{digest:016x}.ckpt")))
}

/// Bails out with the partial progress checkpointed when the job's
/// token tripped (client cancel, deadline, daemon drain).
fn check_cancelled(job: &Job) -> Result<(), RunError> {
    match job.token.cancelled() {
        Some(reason) => Err(RunError::Cancelled(reason.label().to_owned())),
        None => Ok(()),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_study(
    job: &Job,
    caches: &ServeCaches,
    spool: Option<&Path>,
    kind: StudyKind,
    samples: usize,
    seed: u64,
    rs: &[f64],
    factors: &[f64],
) -> Result<CachedResult, RunError> {
    let rec = job.rec.clone();

    // Static preflight through the lint-verdict cache: structurally
    // broken configs are rejected without engaging the Monte Carlo
    // machinery, and the verdict is shared across jobs.
    let (verdict, lo) = caches.lint.get_or_fill(job.spec.lint_digest(), || {
        let report = paper_put().lint(Some(rs));
        Ok::<_, RunError>(LintVerdict {
            clean: report.is_clean(),
            rendered: report.render_human(),
        })
    })?;
    if lo == CacheOutcome::Hit {
        rec.add(Counter::ServeLintCacheHits, 1);
    }
    if !verdict.clean {
        return Err(RunError::Lint(verdict.rendered));
    }

    let base_mc = McConfig {
        obs: rec.clone(),
        resilience: resilience_for(job),
        ..McConfig::paper(samples, seed)
    };
    let calib_key = job
        .spec
        .calib_digest()
        .ok_or_else(|| RunError::Cancelled("internal: study without calib key".to_owned()))?;
    let topo_key = job
        .spec
        .topology_digest()
        .ok_or_else(|| RunError::Cancelled("internal: study without topology key".to_owned()))?;

    match kind {
        StudyKind::Df => {
            // Calibration runs on the *fault-free* topology, so it uses a
            // study without the (faulty-topology) symbolic cache — adoption
            // is mismatch-safe but would forfeit the intra-run sharing.
            let study = DfStudy::new(paper_put(), base_mc.clone());
            let (entry, co) = caches.calib.get_or_fill(calib_key, || {
                study
                    .calibrate()
                    .map(CalibEntry::Df)
                    .map_err(RunError::Core)
            })?;
            if co == CacheOutcome::Hit {
                rec.add(Counter::ServeCalibCacheHits, 1);
            }
            let CalibEntry::Df(calib) = entry else {
                return Err(RunError::Cancelled(
                    "internal: calibration cache kind mismatch".to_owned(),
                ));
            };
            check_cancelled(job)?;

            let (sym, so) = caches
                .symbolic
                .get_or_fill(topo_key, || Ok::<_, RunError>(study.prime_symbolic(rs[0])))?;
            if so == CacheOutcome::Hit {
                // A cached `None` (dense path, no factorization) is
                // still an answered probe: the rebuild+analysis attempt
                // was skipped.
                rec.add(Counter::ServeSymbolicCacheHits, 1);
            }
            let study = DfStudy::new(
                paper_put(),
                McConfig {
                    symbolic: sym,
                    ..base_mc
                },
            );

            let ck = open_checkpoint(spool, job.digest, study.faulty_checkpoint_spec(rs))?;
            let (curves, _failures) =
                study.coverage_durable(&calib, rs, factors, &job.token, ck.as_ref())?;
            check_cancelled(job)?;
            check_complete(&curves)?;

            let mut text = format!(
                "df study on the paper path: T0 = {:.3e} s, {} resistances x {} clock factors, \
                 N = {samples}, seed {seed}\n",
                calib.t0,
                rs.len(),
                factors.len()
            );
            text.push_str(&CoverageCurve::render_set(&curves));
            Ok(CachedResult {
                text,
                solves: solves_spent(&rec),
            })
        }
        StudyKind::Pulse => {
            let study = PulseStudy::new(paper_put(), base_mc.clone(), Polarity::PositiveGoing);
            let (entry, co) = caches.calib.get_or_fill(calib_key, || {
                study
                    .calibrate()
                    .map(CalibEntry::Pulse)
                    .map_err(RunError::Core)
            })?;
            if co == CacheOutcome::Hit {
                rec.add(Counter::ServeCalibCacheHits, 1);
            }
            let CalibEntry::Pulse(calib) = entry else {
                return Err(RunError::Cancelled(
                    "internal: calibration cache kind mismatch".to_owned(),
                ));
            };
            check_cancelled(job)?;

            let (sym, so) = caches
                .symbolic
                .get_or_fill(topo_key, || Ok::<_, RunError>(study.prime_symbolic(rs[0])))?;
            if so == CacheOutcome::Hit {
                // A cached `None` (dense path, no factorization) is
                // still an answered probe: the rebuild+analysis attempt
                // was skipped.
                rec.add(Counter::ServeSymbolicCacheHits, 1);
            }
            let study = PulseStudy::new(
                paper_put(),
                McConfig {
                    symbolic: sym,
                    ..base_mc
                },
                Polarity::PositiveGoing,
            );

            let ck = open_checkpoint(
                spool,
                job.digest,
                study.faulty_checkpoint_spec(calib.w_in, rs),
            )?;
            let (curves, _failures) =
                study.coverage_durable(&calib, rs, factors, &job.token, ck.as_ref())?;
            check_cancelled(job)?;
            check_complete(&curves)?;

            let mut text = format!(
                "pulse study on the paper path: w_in = {:.3e} s, w_th = {:.3e} s, {} resistances \
                 x {} threshold factors, N = {samples}, seed {seed}\n",
                calib.w_in,
                calib.w_th,
                rs.len(),
                factors.len()
            );
            text.push_str(&CoverageCurve::render_set(&curves));
            Ok(CachedResult {
                text,
                solves: solves_spent(&rec),
            })
        }
    }
}

fn run_campaign(
    job: &Job,
    spool: Option<&Path>,
    netlist: &str,
    stride: usize,
) -> Result<CachedResult, RunError> {
    let rec = job.rec.clone();
    let nl = parse_iscas85(netlist).map_err(|e| RunError::Core(CoreError::Logic(e)))?;
    let campaign = Campaign {
        stride,
        obs: rec.clone(),
        resilience: resilience_for(job),
        ..Campaign::default()
    };
    let lib = TimingLibrary::generic();
    let ck_path = spool_path(spool, job.digest);
    let report = match &ck_path {
        Some(p) => campaign.resume_from(&nl, &lib, &job.token, p),
        None => campaign.run_durable(&nl, &lib, &job.token, None),
    }?;
    check_cancelled(job)?;
    let text = report.render_report(&nl, ck_path.as_deref().and_then(Path::to_str));
    Ok(CachedResult {
        text,
        solves: solves_spent(&rec),
    })
}

fn open_checkpoint(
    spool: Option<&Path>,
    digest: u64,
    spec: CheckpointSpec,
) -> Result<Option<pulsar_core::Checkpoint<Vec<f64>>>, RunError> {
    match spool_path(spool, digest) {
        Some(p) => Ok(Some(pulsar_core::Checkpoint::open(&p, spec)?)),
        None => Ok(None),
    }
}

/// A durable run that was truncated (deadline, cancel) must not be
/// cached as the answer for its digest.
fn check_complete(curves: &[CoverageCurve]) -> Result<(), RunError> {
    match curves.first() {
        Some(c) if !c.completeness.is_complete() => {
            Err(RunError::Cancelled("truncated".to_owned()))
        }
        _ => Ok(()),
    }
}

/// Transient-solve work this job's recorder observed (sparse + dense).
fn solves_spent(rec: &Recorder) -> u64 {
    let snap = rec.snapshot();
    snap.counter(Counter::SparseSolves) + snap.counter(Counter::DenseSolves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_and_token() -> (JobTable, CancelToken) {
        (JobTable::new(), CancelToken::new())
    }

    fn small_spec() -> JobSpec {
        JobSpec::Study {
            kind: StudyKind::Df,
            samples: 2,
            seed: 1,
            rs: vec![1e3],
            factors: vec![1.0],
        }
    }

    #[test]
    fn cancel_before_dequeue_prevents_running() {
        let (table, root) = table_and_token();
        let job = table.create(small_spec(), "t".into(), None, None, &root);
        assert!(job.cancel());
        assert!(!job.begin_running(), "cancelled job must not start");
        let o = job.outcome();
        assert_eq!(o.state, "cancelled");
        assert!(o.terminal);
        assert!(!job.cancel(), "second cancel is a no-op");
    }

    #[test]
    fn state_machine_reaches_done_and_wakes_waiters() {
        let (table, root) = table_and_token();
        let job = table.create(small_spec(), "t".into(), None, None, &root);
        assert!(job.begin_running());
        assert!(!job.begin_running(), "double dequeue must not re-run");
        let j2 = Arc::clone(&job);
        let waiter = std::thread::spawn(move || j2.wait_terminal());
        job.finish(JobState::Done {
            text: "report".into(),
            cached: false,
        });
        let o = waiter.join().expect("join");
        assert_eq!(o.state, "done");
        assert_eq!(o.result.as_deref(), Some("report"));
    }

    #[test]
    fn daemon_token_cancels_queued_jobs() {
        let (table, root) = table_and_token();
        let job = table.create(small_spec(), "t".into(), None, None, &root);
        root.cancel(CancelReason::User);
        assert!(
            !job.begin_running(),
            "drained daemon must not start new work"
        );
    }
}
