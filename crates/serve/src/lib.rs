//! `pulsar serve`: the long-running campaign daemon.
//!
//! One-shot CLI runs re-pay symbolic factorization, calibration, lint
//! preflight, and whole coverage curves on every invocation, even when
//! the config digest is identical to the previous request. This crate
//! turns the existing engines ([`pulsar_core::DfStudy`],
//! [`pulsar_core::PulseStudy`], [`pulsar_core::Campaign`]) into a
//! daemon:
//!
//! - a **bounded job queue** feeding a sharded worker pool, with typed
//!   `busy` backpressure when the queue is full and per-tenant failure
//!   budgets;
//! - a hand-rolled **JSONL-over-Unix-socket protocol** (`submit`,
//!   `status`, `wait`, `stream`, `cancel`, `stats`, `shutdown`) reusing
//!   the `pulsar-obs` JSON writer/parser — no new dependencies;
//! - **cross-job caches** keyed by the FNV-1a config digest: whole
//!   results (an identical digest is answered with zero solves),
//!   calibrated operating points, lint verdicts, and symbolic
//!   factorizations, each filled exactly once under the
//!   [`fill::FillSlot`] single-fill protocol that `pulsar-check`
//!   explores as protocol model P4;
//! - **durable drain**: every job runs under its own
//!   [`pulsar_obs::CancelToken`] child with an optional deadline, and
//!   (with a spool directory) through the existing checkpoint path, so
//!   a killed or drained daemon resumes interrupted jobs bit-identically
//!   on restart.
//!
//! Results are byte-identical to the one-shot CLI for the same config
//! digest: both render through [`pulsar_core::CoverageCurve::render_set`]
//! / [`pulsar_core::CampaignReport::render_report`] and hash the same
//! [`pulsar_core::study_digest_repr`] strings (DESIGN.md §5.10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod fill;
pub mod job;
pub mod proto;
pub mod queue;
pub mod spec;

pub use cache::{CacheOutcome, CachedResult, CalibEntry, DigestCache, LintVerdict, ServeCaches};
pub use client::{Client, ClientError};
pub use daemon::{Daemon, ServeConfig, ServeSummary};
pub use fill::{Claim, FillOrderings, FillSlot, FILL_ORDERINGS};
pub use job::{Job, JobOutcome, JobState, JobTable};
pub use proto::{Request, Response};
pub use queue::{JobQueue, PushError};
pub use spec::{JobSpec, StudyKind};
