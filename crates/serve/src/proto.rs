//! The JSONL wire protocol: one request or response object per line.
//!
//! Hand-rolled over the `pulsar-obs` JSON writer/parser — no new
//! dependencies, no framing beyond newline termination. A malformed
//! line produces a typed error *response* on the same connection, never
//! a dropped connection; the full request/response corpus is pinned by
//! the golden tests in `tests/proto_golden.rs` (protocol spec in
//! DESIGN.md §5.10).

use crate::spec::{JobSpec, StudyKind};
use pulsar_obs::json::{self, json_str, Json};
use std::fmt::Write as _;

/// One request line, client → daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for execution (or a whole-result cache hit).
    Submit {
        /// What to run.
        spec: JobSpec,
        /// Tenant name for per-tenant failure budgets; `None` bills the
        /// anonymous tenant.
        tenant: Option<String>,
        /// Per-job wall-clock deadline, milliseconds.
        deadline_ms: Option<u64>,
        /// Per-job Monte Carlo failure budget (fraction, 0.0–1.0).
        failure_budget: Option<f64>,
    },
    /// Report a job's current state.
    Status {
        /// Job id from the submit response.
        job: u64,
    },
    /// Block until the job reaches a terminal state, then report it.
    Wait {
        /// Job id from the submit response.
        job: u64,
    },
    /// Forward the job's journal events live, then a terminal marker.
    Stream {
        /// Job id from the submit response.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id from the submit response.
        job: u64,
    },
    /// Report daemon counters and cache occupancy.
    Stats,
    /// Stop accepting work, drain (checkpoint) in-flight jobs, exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not valid JSON or not a
    /// well-formed request; the daemon turns it into a typed `malformed`
    /// / `usage` error response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        match op {
            "submit" => Self::parse_submit(&doc),
            "status" => Ok(Request::Status { job: job_id(&doc)? }),
            "wait" => Ok(Request::Wait { job: job_id(&doc)? }),
            "stream" => Ok(Request::Stream { job: job_id(&doc)? }),
            "cancel" => Ok(Request::Cancel { job: job_id(&doc)? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    fn parse_submit(doc: &Json) -> Result<Request, String> {
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("submit: missing string field `kind`")?;
        let tenant = doc.get("tenant").and_then(Json::as_str).map(str::to_owned);
        let deadline_ms = doc
            .get("deadline_ms")
            .and_then(Json::as_num)
            .map(|n| n as u64);
        let failure_budget = doc.get("failure_budget").and_then(Json::as_num);
        let spec = if kind == "campaign" {
            let netlist = doc
                .get("netlist")
                .and_then(Json::as_str)
                .ok_or("submit campaign: missing string field `netlist`")?
                .to_owned();
            let stride = doc
                .get("stride")
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .unwrap_or(1);
            if stride == 0 {
                return Err("submit campaign: `stride` must be >= 1".to_owned());
            }
            JobSpec::Campaign { netlist, stride }
        } else {
            let kind = StudyKind::parse(kind)
                .ok_or_else(|| format!("submit: unknown kind `{kind}` (df|pulse|campaign)"))?;
            let samples = doc
                .get("samples")
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .unwrap_or(24);
            let seed = doc
                .get("seed")
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .unwrap_or(2007);
            let rs = num_list(doc, "r").unwrap_or_else(|| vec![1e3, 30e3, 100e3]);
            let factors = num_list(doc, "factors").unwrap_or_else(|| vec![0.9, 1.1]);
            if samples == 0 {
                return Err("submit: `samples` must be >= 1".to_owned());
            }
            if rs.is_empty() || factors.is_empty() {
                return Err("submit: `r` and `factors` must be non-empty".to_owned());
            }
            JobSpec::Study {
                kind,
                samples,
                seed,
                rs,
                factors,
            }
        };
        Ok(Request::Submit {
            spec,
            tenant,
            deadline_ms,
            failure_budget,
        })
    }

    /// Renders the request as one JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Submit {
                spec,
                tenant,
                deadline_ms,
                failure_budget,
            } => {
                let mut out = String::from("{\"op\":\"submit\"");
                match spec {
                    JobSpec::Study {
                        kind,
                        samples,
                        seed,
                        rs,
                        factors,
                    } => {
                        let _ = write!(
                            out,
                            ",\"kind\":{},\"samples\":{samples},\"seed\":{seed},\"r\":{},\
                             \"factors\":{}",
                            json_str(kind.as_str()),
                            num_array(rs),
                            num_array(factors)
                        );
                    }
                    JobSpec::Campaign { netlist, stride } => {
                        let _ = write!(
                            out,
                            ",\"kind\":\"campaign\",\"stride\":{stride},\"netlist\":{}",
                            json_str(netlist)
                        );
                    }
                }
                if let Some(t) = tenant {
                    let _ = write!(out, ",\"tenant\":{}", json_str(t));
                }
                if let Some(d) = deadline_ms {
                    let _ = write!(out, ",\"deadline_ms\":{d}");
                }
                if let Some(b) = failure_budget {
                    let _ = write!(out, ",\"failure_budget\":{b}");
                }
                out.push('}');
                out
            }
            Request::Status { job } => format!("{{\"op\":\"status\",\"job\":{job}}}"),
            Request::Wait { job } => format!("{{\"op\":\"wait\",\"job\":{job}}}"),
            Request::Stream { job } => format!("{{\"op\":\"stream\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Stats => "{\"op\":\"stats\"}".to_owned(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_owned(),
        }
    }
}

fn job_id(doc: &Json) -> Result<u64, String> {
    doc.get("job")
        .and_then(Json::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| "missing numeric field `job`".to_owned())
}

fn num_list(doc: &Json, key: &str) -> Option<Vec<f64>> {
    match doc.get(key) {
        Some(Json::Arr(items)) => items.iter().map(Json::as_num).collect(),
        _ => None,
    }
}

fn num_array(vs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// One response line, daemon → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Submit accepted (queued, or answered from the whole-result cache).
    Accepted {
        /// Assigned job id.
        job: u64,
        /// Config digest of the job.
        digest: u64,
        /// True when the whole-result cache answered with zero solves.
        cached: bool,
        /// Initial job state (`"queued"`, or `"done"` on a cache hit).
        state: String,
    },
    /// Job status (also the response to `wait` and `cancel`).
    Status {
        /// Job id.
        job: u64,
        /// `queued` | `running` | `done` | `failed` | `cancelled`.
        state: String,
        /// Report text, present when `done`.
        result: Option<String>,
        /// Error message, present when `failed` or `cancelled`.
        error: Option<String>,
    },
    /// One forwarded journal event (during `stream`).
    Event {
        /// The event object, exactly as the journal renders it.
        payload: String,
    },
    /// Terminal marker ending a `stream`.
    StreamEnd {
        /// Job id.
        job: u64,
        /// Terminal state of the job.
        state: String,
    },
    /// Daemon counter snapshot and cache occupancy.
    Stats {
        /// `{"counters":{...},"caches":{...},...}` payload object.
        payload: String,
    },
    /// Shutdown acknowledged; the daemon drains and exits.
    Bye,
    /// Typed failure. `kind` is stable for scripting:
    /// `malformed` | `usage` | `busy` | `tenant-budget` | `unknown-job` |
    /// `lint` | `shutdown`.
    Error {
        /// Stable machine-readable failure kind.
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

impl Response {
    /// Renders the response as one JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Accepted {
                job,
                digest,
                cached,
                state,
            } => format!(
                "{{\"ok\":true,\"op\":\"submit\",\"job\":{job},\"digest\":\"{digest:#018x}\",\
                 \"cached\":{cached},\"state\":{}}}",
                json_str(state)
            ),
            Response::Status {
                job,
                state,
                result,
                error,
            } => {
                let mut out = format!(
                    "{{\"ok\":true,\"op\":\"status\",\"job\":{job},\"state\":{}",
                    json_str(state)
                );
                if let Some(r) = result {
                    let _ = write!(out, ",\"result\":{}", json_str(r));
                }
                if let Some(e) = error {
                    let _ = write!(out, ",\"error\":{}", json_str(e));
                }
                out.push('}');
                out
            }
            Response::Event { payload } => {
                format!("{{\"ok\":true,\"op\":\"event\",\"event\":{payload}}}")
            }
            Response::StreamEnd { job, state } => format!(
                "{{\"ok\":true,\"op\":\"stream-end\",\"job\":{job},\"state\":{}}}",
                json_str(state)
            ),
            Response::Stats { payload } => {
                format!("{{\"ok\":true,\"op\":\"stats\",\"stats\":{payload}}}")
            }
            Response::Bye => "{\"ok\":true,\"op\":\"shutdown\"}".to_owned(),
            Response::Error { kind, message } => format!(
                "{{\"ok\":false,\"kind\":{},\"error\":{}}}",
                json_str(kind),
                json_str(message)
            ),
        }
    }

    /// Parses one response line (client side).
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not a well-formed
    /// response.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let ok = match doc.get("ok") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing boolean field `ok`".to_owned()),
        };
        if !ok {
            return Ok(Response::Error {
                kind: doc
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            });
        }
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        match op {
            "submit" => {
                let digest_hex = doc
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or("submit response: missing `digest`")?;
                let digest = parse_hex_digest(digest_hex)?;
                Ok(Response::Accepted {
                    job: job_id(&doc)?,
                    digest,
                    cached: matches!(doc.get("cached"), Some(Json::Bool(true))),
                    state: doc
                        .get("state")
                        .and_then(Json::as_str)
                        .unwrap_or("queued")
                        .to_owned(),
                })
            }
            "status" => Ok(Response::Status {
                job: job_id(&doc)?,
                state: doc
                    .get("state")
                    .and_then(Json::as_str)
                    .ok_or("status response: missing `state`")?
                    .to_owned(),
                result: doc.get("result").and_then(Json::as_str).map(str::to_owned),
                error: doc.get("error").and_then(Json::as_str).map(str::to_owned),
            }),
            "event" => {
                let ev = doc.get("event").ok_or("event response: missing `event`")?;
                Ok(Response::Event {
                    payload: render_json(ev),
                })
            }
            "stream-end" => Ok(Response::StreamEnd {
                job: job_id(&doc)?,
                state: doc
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("done")
                    .to_owned(),
            }),
            "stats" => {
                let s = doc.get("stats").ok_or("stats response: missing `stats`")?;
                Ok(Response::Stats {
                    payload: render_json(s),
                })
            }
            "shutdown" => Ok(Response::Bye),
            other => Err(format!("unknown response op `{other}`")),
        }
    }
}

fn parse_hex_digest(s: &str) -> Result<u64, String> {
    let hex = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(hex, 16).map_err(|e| format!("bad digest `{s}`: {e}"))
}

/// Re-renders a parsed [`Json`] value (used to carry nested objects
/// opaquely through the client).
fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => json_str(s),
        Json::Arr(items) => {
            let mut out = String::from("[");
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&render_json(it));
            }
            out.push(']');
            out
        }
        Json::Obj(pairs) => {
            let mut out = String::from("{");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), render_json(val));
            }
            out.push('}');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Submit {
                spec: JobSpec::Study {
                    kind: StudyKind::Df,
                    samples: 8,
                    seed: 7,
                    rs: vec![1000.0, 30000.0],
                    factors: vec![0.9, 1.1],
                },
                tenant: Some("t1".into()),
                deadline_ms: Some(5000),
                failure_budget: Some(0.25),
            },
            Request::Submit {
                spec: JobSpec::Campaign {
                    netlist: "# c17\n".into(),
                    stride: 2,
                },
                tenant: None,
                deadline_ms: None,
                failure_budget: None,
            },
            Request::Status { job: 3 },
            Request::Wait { job: 3 },
            Request::Stream { job: 4 },
            Request::Cancel { job: 5 },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.render();
            assert_eq!(Request::parse(&line).expect("parse"), r, "{line}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Accepted {
                job: 1,
                digest: 0xdead_beef_0123_4567,
                cached: true,
                state: "done".into(),
            },
            Response::Status {
                job: 1,
                state: "failed".into(),
                result: None,
                error: Some("budget exceeded".into()),
            },
            Response::StreamEnd {
                job: 2,
                state: "done".into(),
            },
            Response::Bye,
            Response::Error {
                kind: "busy".into(),
                message: "queue full (depth 4)".into(),
            },
        ];
        for r in resps {
            let line = r.render();
            assert_eq!(Response::parse(&line).expect("parse"), r, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"submit\"}",
            "{\"op\":\"submit\",\"kind\":\"df\",\"samples\":0}",
            "{\"op\":\"status\"}",
            "[1,2,3]",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
