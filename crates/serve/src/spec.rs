//! Job specifications and their digest keys.
//!
//! A submitted job is either a coverage study on the paper path or a
//! whole-netlist campaign. The *config digest* of a spec is computed
//! from the same canonical strings the one-shot CLI hashes
//! ([`pulsar_core::study_digest_repr`] /
//! [`pulsar_core::campaign_digest_repr`]), which is what makes the
//! whole-result cache honest: a daemon hit and a CLI run with equal
//! digests are the same experiment by construction.

use pulsar_core::{campaign_digest_repr, study_digest_repr, AdaptivePolicy};
use pulsar_obs::config_digest;

/// Which coverage study a study job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyKind {
    /// Reduced-clock DF test (`pulsar study df`).
    Df,
    /// Pulse-propagation test (`pulsar study pulse`).
    Pulse,
}

impl StudyKind {
    /// The CLI kind string (`"df"` | `"pulse"`).
    pub fn as_str(self) -> &'static str {
        match self {
            StudyKind::Df => "df",
            StudyKind::Pulse => "pulse",
        }
    }

    /// Parses the CLI kind string.
    pub fn parse(s: &str) -> Option<StudyKind> {
        match s {
            "df" => Some(StudyKind::Df),
            "pulse" => Some(StudyKind::Pulse),
            _ => None,
        }
    }
}

/// One submitted unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A Monte Carlo coverage study on the built-in paper path, with the
    /// same defaults and semantics as `pulsar study`.
    Study {
        /// `df` or `pulse`.
        kind: StudyKind,
        /// Monte Carlo sample count.
        samples: usize,
        /// Master seed.
        seed: u64,
        /// Defect resistance sweep, ohms.
        rs: Vec<f64>,
        /// Clock / threshold factors.
        factors: Vec<f64>,
    },
    /// A whole-netlist campaign, with the same semantics as
    /// `pulsar campaign`.
    Campaign {
        /// ISCAS-85 netlist text (shipped inline over the socket).
        netlist: String,
        /// Site stride.
        stride: usize,
    },
}

impl JobSpec {
    /// The run config digest — cache key of the whole-result cache and
    /// the digest reported in manifests. Matches the digest the one-shot
    /// CLI computes for the equivalent invocation.
    pub fn digest(&self) -> u64 {
        match self {
            JobSpec::Study {
                kind,
                samples,
                seed,
                rs,
                factors,
            } => {
                // The CLI hashes `adaptive`/`policy` from its flags; the
                // daemon runs fixed-budget studies, which the CLI
                // expresses as adaptive=false with the default policy.
                let policy = AdaptivePolicy::new(0.15, *samples);
                config_digest(&study_digest_repr(
                    kind.as_str(),
                    *samples,
                    *seed,
                    rs,
                    factors,
                    false,
                    &policy,
                ))
            }
            JobSpec::Campaign { netlist, stride } => {
                config_digest(&campaign_digest_repr(*stride, netlist))
            }
        }
    }

    /// Cache key of the calibration cache. Calibration depends on the
    /// study kind, sample count, and seed — not on the sweep grid — so
    /// jobs that differ only in `rs`/`factors` share a calibration.
    /// `None` for campaigns (no Monte Carlo calibration phase).
    pub fn calib_digest(&self) -> Option<u64> {
        match self {
            JobSpec::Study {
                kind,
                samples,
                seed,
                ..
            } => Some(config_digest(&format!(
                "serve-calib kind={} samples={samples} seed={seed}",
                kind.as_str()
            ))),
            JobSpec::Campaign { .. } => None,
        }
    }

    /// Cache key of the lint-verdict cache: the static preflight depends
    /// on the path under test and the resistance sweep only.
    pub fn lint_digest(&self) -> u64 {
        match self {
            JobSpec::Study { kind, rs, .. } => {
                let bits: Vec<u64> = rs.iter().map(|r| r.to_bits()).collect();
                config_digest(&format!("serve-lint kind={} r={bits:?}", kind.as_str()))
            }
            JobSpec::Campaign { netlist, stride } => {
                config_digest(&format!("serve-lint campaign stride={stride}\n{netlist}"))
            }
        }
    }

    /// Cache key of the symbolic-factorization cache: the faulty
    /// topology of the paper path depends on the study kind only (the
    /// defect model and stage are fixed; resistance and process draws
    /// change values, never the stamp pattern). `None` for campaigns.
    pub fn topology_digest(&self) -> Option<u64> {
        match self {
            JobSpec::Study { kind, .. } => Some(config_digest(&format!(
                "serve-topology kind={}",
                kind.as_str()
            ))),
            JobSpec::Campaign { .. } => None,
        }
    }

    /// Short human label for status lines and logs.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Study {
                kind,
                samples,
                seed,
                rs,
                factors,
            } => format!(
                "study {} samples={samples} seed={seed} |r|={} |f|={}",
                kind.as_str(),
                rs.len(),
                factors.len()
            ),
            JobSpec::Campaign { netlist, stride } => {
                format!("campaign stride={stride} bytes={}", netlist.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(seed: u64) -> JobSpec {
        JobSpec::Study {
            kind: StudyKind::Df,
            samples: 4,
            seed,
            rs: vec![1e3, 30e3],
            factors: vec![0.9, 1.1],
        }
    }

    #[test]
    fn digest_is_stable_and_seed_sensitive() {
        assert_eq!(study(1).digest(), study(1).digest());
        assert_ne!(study(1).digest(), study(2).digest());
    }

    #[test]
    fn calibration_key_ignores_the_sweep() {
        let a = study(1);
        let b = JobSpec::Study {
            kind: StudyKind::Df,
            samples: 4,
            seed: 1,
            rs: vec![5e3],
            factors: vec![1.0],
        };
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.calib_digest(), b.calib_digest());
    }

    #[test]
    fn campaign_digest_matches_cli_string() {
        let spec = JobSpec::Campaign {
            netlist: "x".into(),
            stride: 3,
        };
        assert_eq!(spec.digest(), config_digest(&campaign_digest_repr(3, "x")));
    }
}
