//! Cross-job caches keyed by the FNV-1a config digest.
//!
//! Every cache is a map from digest → slot, where a slot's lifecycle is
//! governed by the [`FillSlot`] single-fill protocol: the first job to
//! need a cold key computes the value exactly once, concurrent jobs on
//! the same key block until the value is published (publish and wakeup
//! happen under the slot mutex, so a waiter can never miss the wakeup),
//! and every later job reads the published value without spending any
//! work. A failed fill abandons the claim, so the computation is retried
//! by the next job instead of wedging the key forever.

use crate::fill::{Claim, FillSlot, EMPTY, FILL_ORDERINGS, READY};
use pulsar_analog::SymbolicCache;
use pulsar_core::{DfCalibration, PulseCalibration};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One cache entry: the fill flag plus the (mutex-guarded) value and the
/// condvar waiters block on while the fill is in flight.
#[derive(Debug)]
struct Slot<T> {
    fill: FillSlot,
    value: Mutex<Option<T>>,
    ready_cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            fill: FillSlot::new(),
            value: Mutex::new(None),
            ready_cv: Condvar::new(),
        }
    }
}

/// Outcome of a [`DigestCache::get_or_fill`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// This call computed and published the value.
    Filled,
    /// The value was already published (or another job filled it while
    /// this call waited) — zero work spent here.
    Hit,
}

/// A digest-keyed, single-fill, blocking cache.
#[derive(Debug)]
pub struct DigestCache<T> {
    slots: Mutex<HashMap<u64, Arc<Slot<T>>>>,
}

impl<T> Default for DigestCache<T> {
    fn default() -> Self {
        DigestCache {
            slots: Mutex::new(HashMap::new()),
        }
    }
}

impl<T: Clone> DigestCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        DigestCache {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn slot(&self, key: u64) -> Arc<Slot<T>> {
        let mut map = lock_clean(&self.slots);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Slot::new())))
    }

    /// The published value for `key`, without blocking or filling.
    pub fn lookup(&self, key: u64) -> Option<T> {
        let slot = self.slot(key);
        if slot.fill.ready(&FILL_ORDERINGS) {
            lock_clean(&slot.value).clone()
        } else {
            None
        }
    }

    /// Returns the value for `key`, computing it with `compute` if and
    /// only if this call wins the fill claim. Exactly one concurrent
    /// caller per cold key runs `compute`; the others block until the
    /// value is published and then share it. When the winning `compute`
    /// fails, the claim is abandoned (the error propagates to the winner
    /// only) and a blocked caller takes over the fill with its own
    /// `compute` closure.
    ///
    /// # Errors
    ///
    /// Whatever the winning `compute` returns.
    pub fn get_or_fill<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(T, CacheOutcome), E> {
        let slot = self.slot(key);
        let mut compute = Some(compute);
        loop {
            match slot.fill.try_claim(&FILL_ORDERINGS) {
                Claim::Won => {
                    // `compute` is only consumed here, and a `Won` arm
                    // always returns, so the claim can't outlive it.
                    let Some(f) = compute.take() else {
                        slot.fill.abandon(&FILL_ORDERINGS);
                        slot.ready_cv.notify_all();
                        return Err(unreachable_fill_state());
                    };
                    match f() {
                        Ok(v) => {
                            let mut g = lock_clean(&slot.value);
                            *g = Some(v.clone());
                            // Publish + wakeup under the slot mutex:
                            // a waiter holding the lock either sees READY
                            // already or is on the condvar before the
                            // notify — no lost wakeup.
                            slot.fill.publish(&FILL_ORDERINGS);
                            slot.ready_cv.notify_all();
                            drop(g);
                            return Ok((v, CacheOutcome::Filled));
                        }
                        Err(e) => {
                            let g = lock_clean(&slot.value);
                            slot.fill.abandon(&FILL_ORDERINGS);
                            slot.ready_cv.notify_all();
                            drop(g);
                            return Err(e);
                        }
                    }
                }
                Claim::Ready => {
                    let g = lock_clean(&slot.value);
                    if let Some(v) = g.clone() {
                        return Ok((v, CacheOutcome::Hit));
                    }
                    // READY with no value cannot happen (publish follows
                    // the value write under the same mutex); treat it as
                    // in-progress rather than panic in a daemon.
                }
                Claim::InProgress => {}
            }
            // Block until the in-flight fill publishes or abandons.
            let mut g = lock_clean(&slot.value);
            loop {
                match slot.fill.peek(&FILL_ORDERINGS) {
                    READY => break,
                    EMPTY => break, // abandoned: retry the claim
                    _ => {
                        g = slot
                            .ready_cv
                            .wait(g)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        }
    }

    /// Number of keys with a published value (for stats reporting).
    pub fn len(&self) -> usize {
        let map = lock_clean(&self.slots);
        map.values()
            .filter(|s| s.fill.ready(&FILL_ORDERINGS))
            .count()
    }

    /// True when no key has a published value.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Locks a mutex, riding through poisoning: a cache value is only
/// observable after a *completed* fill, so a panic elsewhere can't leave
/// it half-written.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Stand-in error for the impossible claim-won-twice state; never
/// constructed with a correct [`FillSlot`] (see `get_or_fill`).
fn unreachable_fill_state<E>() -> E {
    // The fill protocol guarantees a single `Won` per claim cycle and the
    // winning arm always returns, so this closure-already-consumed path
    // is dead; `pulsar-check` model P4 explores the claim protocol.
    panic!("fill claim won twice for one get_or_fill call")
}

/// A completed run's cached payload: the exact report text the first
/// execution produced (bit-identical replay for every later hit) plus
/// the transient-solve count the first execution spent — the number every
/// subsequent hit saves.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Rendered report, byte-identical to the one-shot CLI's.
    pub text: String,
    /// Transient solves (sparse + dense) the filling run spent.
    pub solves: u64,
}

/// A cached calibration: the study's calibrated operating point (`T₀`
/// for DF, `(ω_in⁰, ω_th⁰)` for the pulse test). This *is* the cached
/// DC-operating-point layer: the calibrated point pins the nominal
/// electrical operating state of the path, and per-sample DC solutions
/// can't be shared without changing results (each Monte Carlo draw has
/// its own operating point).
#[derive(Debug, Clone, Copy)]
pub enum CalibEntry {
    /// DF-test calibration.
    Df(DfCalibration),
    /// Pulse-test calibration.
    Pulse(PulseCalibration),
}

/// A cached lint preflight verdict for one config digest.
#[derive(Debug, Clone)]
pub struct LintVerdict {
    /// True when the config passed the zero-solve static preflight.
    pub clean: bool,
    /// Rendered findings (empty when clean).
    pub rendered: String,
}

/// The daemon's cross-job cache bundle, shared by every worker.
#[derive(Debug, Default)]
pub struct ServeCaches {
    /// Whole-result cache: digest → completed report text. A hit answers
    /// a submission with zero solves.
    pub result: DigestCache<CachedResult>,
    /// Calibration cache (see [`CalibEntry`]).
    pub calib: DigestCache<CalibEntry>,
    /// Lint-verdict cache: admission preflight without re-running the
    /// static analysis.
    pub lint: DigestCache<LintVerdict>,
    /// Symbolic-factorization cache per topology digest. `None` is a
    /// cached *negative* — the sparse engine is not engaged for this
    /// circuit, so later jobs skip even the priming attempt.
    pub symbolic: DigestCache<Option<SymbolicCache>>,
}

impl ServeCaches {
    /// Empty caches.
    pub fn new() -> Self {
        ServeCaches::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn second_lookup_hits_without_computing() {
        let cache: DigestCache<u64> = DigestCache::new();
        let computes = AtomicU64::new(0);
        let f = || {
            computes.fetch_add(1, Ordering::Relaxed); // ordering: test-only counter
            Ok::<u64, ()>(7)
        };
        let (v, o) = cache.get_or_fill(42, f).expect("fill");
        assert_eq!((v, o), (7, CacheOutcome::Filled));
        let (v, o) = cache
            .get_or_fill(42, || {
                computes.fetch_add(1, Ordering::Relaxed); // ordering: test-only counter
                Ok::<u64, ()>(8)
            })
            .expect("hit");
        assert_eq!((v, o), (7, CacheOutcome::Hit));
        assert_eq!(computes.load(Ordering::Relaxed), 1); // ordering: test-only counter
        assert_eq!(cache.lookup(42), Some(7));
        assert_eq!(cache.lookup(43), None);
    }

    #[test]
    fn failed_fill_is_retried_by_the_next_caller() {
        let cache: DigestCache<u64> = DigestCache::new();
        let e = cache.get_or_fill(1, || Err::<u64, &str>("boom"));
        assert_eq!(e.expect_err("fill must fail"), "boom");
        let (v, o) = cache.get_or_fill(1, || Ok::<u64, &str>(5)).expect("retry");
        assert_eq!((v, o), (5, CacheOutcome::Filled));
    }

    #[test]
    fn concurrent_cold_key_fills_exactly_once() {
        let cache = Arc::new(DigestCache::<u64>::new());
        let computes = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (v, _) = cache
                    .get_or_fill(9, || {
                        computes.fetch_add(1, Ordering::Relaxed); // ordering: test-only counter
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        Ok::<u64, ()>(11)
                    })
                    .expect("fill or hit");
                v
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("no panic"), 11);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1); // ordering: test-only counter
    }
}
