//! The single-fill publication protocol of a digest-keyed cache slot.
//!
//! A cross-job cache entry goes through three states: `EMPTY` (nobody has
//! computed the value), `FILLING` (exactly one job claimed the fill and is
//! computing), and `READY` (the value is published). The core guarantees:
//!
//! 1. **Single fill** — the `EMPTY → FILLING` transition is a CAS, so at
//!    most one claimer ever computes the value, no matter how many jobs
//!    race on a cold key.
//! 2. **Race-free publication** — the filler writes the value *before*
//!    the `Release` store of `READY`; an observer that sees `READY` via
//!    an `Acquire` load therefore sees the completed value.
//!
//! Like the shard-merge and cancellation cores, this is a *shipped
//! generic* protocol: generic over [`AtomicFamily`] so the `pulsar-check`
//! explorer can instantiate the exact code that runs in production with
//! modeled atomics and check both guarantees bounded-exhaustively
//! (protocol model P4), including a mutation self-test that weakening
//! [`FillOrderings::publish`] to `Relaxed` is caught as a data race.

use pulsar_obs::sync::{AtomicFamily, AtomicU8Like, StdAtomics};
use std::sync::atomic::Ordering;

/// Slot is empty: no job has claimed the fill yet.
pub const EMPTY: u8 = 0;
/// Exactly one job holds the fill claim and is computing the value.
pub const FILLING: u8 = 1;
/// The value is published and safe to read.
pub const READY: u8 = 2;

/// The memory orderings the fill protocol ships with. Kept in a struct
/// (one shared constant, [`FILL_ORDERINGS`]) so the model checker
/// explores exactly what production runs, and so a mutation self-test
/// can weaken a single field and assert the explorer notices.
#[derive(Debug, Clone, Copy)]
pub struct FillOrderings {
    /// Success ordering of the claiming `EMPTY → FILLING` CAS.
    pub claim: Ordering,
    /// Failure ordering of the claiming CAS. A loser that observes
    /// `READY` here proceeds to read the value, so this load must pair
    /// with [`FillOrderings::publish`].
    pub claim_failure: Ordering,
    /// Ordering of the `READY` store; publishes the value written before.
    pub publish: Ordering,
    /// Ordering of a standalone readiness poll before reading the value.
    pub observe: Ordering,
}

/// Shipped orderings: `Release` publication, `Acquire` observation.
///
/// The claim CAS itself needs only atomicity — at the moment of a
/// successful claim nothing has been published yet, so `Relaxed` is
/// sound there; its *failure* load doubles as an observation and
/// therefore acquires. The publish/observe pair is the load-bearing
/// edge: it orders the filler's value write before every reader's value
/// read, which the `pulsar-check` model P4 verifies (and whose `Relaxed`
/// mutation it catches as a data race).
pub const FILL_ORDERINGS: FillOrderings = FillOrderings {
    claim: Ordering::Relaxed, // ordering: CAS atomicity alone gives single-fill; no data published yet
    claim_failure: Ordering::Acquire, // ordering: pairs with `publish` when the loser sees READY
    publish: Ordering::Release, // ordering: publishes the filled value to observers
    observe: Ordering::Acquire, // ordering: pairs with `publish`
};

/// What a fill claim attempt found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The caller won the `EMPTY → FILLING` CAS and must fill (then
    /// [`FillSlot::publish`]) — it is the only thread that ever will.
    Won,
    /// Another job holds the claim; the value is on its way.
    InProgress,
    /// The value is already published and safe to read.
    Ready,
}

/// The tri-state fill flag of one cache slot, generic over the atomics
/// family ([`StdAtomics`] in production, modeled atomics under
/// `pulsar-check`).
#[derive(Debug)]
pub struct FillSlot<F: AtomicFamily = StdAtomics> {
    state: F::U8,
}

impl<F: AtomicFamily> FillSlot<F> {
    /// A fresh, empty slot.
    pub fn new() -> Self {
        FillSlot {
            state: F::U8::new(EMPTY),
        }
    }

    /// Attempts to claim the fill.
    pub fn try_claim(&self, ord: &FillOrderings) -> Claim {
        match self
            .state
            .compare_exchange(EMPTY, FILLING, ord.claim, ord.claim_failure)
        {
            Ok(_) => Claim::Won,
            Err(READY) => Claim::Ready,
            Err(_) => Claim::InProgress,
        }
    }

    /// Publishes the value the claim winner filled in. Must be called
    /// exactly once, by the thread whose [`FillSlot::try_claim`] returned
    /// [`Claim::Won`], *after* the value write.
    pub fn publish(&self, ord: &FillOrderings) {
        self.state.store(READY, ord.publish);
    }

    /// Abandons a won claim (the fill failed), returning the slot to
    /// `EMPTY` so a later job can retry the computation.
    pub fn abandon(&self, ord: &FillOrderings) {
        self.state.store(EMPTY, ord.publish);
    }

    /// True when the value is published; pairs with the publishing store
    /// so a `true` result licenses reading the value.
    pub fn ready(&self, ord: &FillOrderings) -> bool {
        self.state.load(ord.observe) == READY
    }

    /// The raw state ([`EMPTY`] | [`FILLING`] | [`READY`]), loaded with
    /// the observe ordering so a `READY` result licenses a value read.
    pub fn peek(&self, ord: &FillOrderings) -> u8 {
        self.state.load(ord.observe)
    }
}

impl<F: AtomicFamily> Default for FillSlot<F> {
    fn default() -> Self {
        FillSlot::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_is_exclusive_and_publish_is_observed() {
        let slot: FillSlot = FillSlot::new();
        assert_eq!(slot.try_claim(&FILL_ORDERINGS), Claim::Won);
        assert_eq!(slot.try_claim(&FILL_ORDERINGS), Claim::InProgress);
        assert!(!slot.ready(&FILL_ORDERINGS));
        slot.publish(&FILL_ORDERINGS);
        assert!(slot.ready(&FILL_ORDERINGS));
        assert_eq!(slot.try_claim(&FILL_ORDERINGS), Claim::Ready);
    }

    #[test]
    fn abandon_reopens_the_slot() {
        let slot: FillSlot = FillSlot::new();
        assert_eq!(slot.try_claim(&FILL_ORDERINGS), Claim::Won);
        slot.abandon(&FILL_ORDERINGS);
        assert_eq!(slot.try_claim(&FILL_ORDERINGS), Claim::Won);
    }
}
