//! Bounded job queue between the protocol front-end and the worker pool.
//!
//! A plain `Mutex<VecDeque>` + `Condvar` channel with a hard depth
//! bound: `push` never blocks — at capacity it returns
//! [`PushError::Busy`] and the daemon answers the client with a typed
//! `busy` response (backpressure is the client's problem, by design).
//! `pop` blocks until an item arrives or the queue is closed and
//! drained. The queue carries job *ids*; job state lives in
//! [`crate::job::JobTable`]. The dequeue/cancel interleaving is
//! explored by protocol model P4 in `pulsar-check`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its depth bound; retry later.
    Busy,
    /// The queue is closed (daemon shutting down); never retry.
    Closed,
}

struct QueueState {
    items: VecDeque<u64>,
    closed: bool,
}

/// Bounded MPMC queue of job ids.
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
}

impl JobQueue {
    /// Creates a queue holding at most `depth` queued jobs.
    pub fn new(depth: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues a job id. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Busy`] at the depth bound, [`PushError::Closed`]
    /// after [`close`](Self::close).
    pub fn push(&self, id: u64) -> Result<(), PushError> {
        let mut st = lock_clean(&self.state);
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.depth {
            return Err(PushError::Busy);
        }
        st.items.push_back(id);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next job id, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed and drained —
    /// the worker's signal to exit.
    pub fn pop(&self) -> Option<u64> {
        let mut st = lock_clean(&self.state);
        loop {
            if let Some(id) = st.items.pop_front() {
                return Some(id);
            }
            if st.closed {
                return None;
            }
            st = match self.ready.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Closes the queue: future pushes fail, blocked poppers drain the
    /// backlog and then observe `None`.
    pub fn close(&self) {
        let mut st = lock_clean(&self.state);
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    /// Number of jobs currently queued (racy; for stats only).
    pub fn len(&self) -> usize {
        lock_clean(&self.state).items.len()
    }

    /// True when nothing is queued (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn lock_clean<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_reports_busy_then_drains() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(PushError::Busy));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        q.close();
        assert_eq!(q.push(4), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || q.pop()));
        }
        q.push(9).expect("push");
        q.close();
        let got: Vec<Option<u64>> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|g| g.is_none()).count(), 2);
    }
}
