//! Blocking client for the daemon's JSONL-over-Unix-socket protocol.
//!
//! One [`Client`] wraps one connection. Requests and responses are
//! strictly request/response on this connection except for
//! [`Client::stream`], which occupies the connection with event lines
//! until the terminal marker — open a second client for control while
//! streaming.

use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::job::JobOutcome;
use crate::proto::{Request, Response};
use crate::spec::JobSpec;

/// A connected protocol client.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

/// A client-side protocol failure: transport error, malformed response,
/// or a typed error response from the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError {
    /// Stable kind: the daemon's error kind (`busy`, `tenant-budget`,
    /// ...) or `transport` / `protocol` for local failures.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl ClientError {
    fn transport(e: impl std::fmt::Display) -> ClientError {
        ClientError {
            kind: "transport".to_owned(),
            message: e.to_string(),
        }
    }

    fn protocol(msg: impl Into<String>) -> ClientError {
        ClientError {
            kind: "protocol".to_owned(),
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// Transport errors (socket missing, daemon gone).
    pub fn connect(socket: &Path) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(socket).map_err(ClientError::transport)?;
        let reader = stream.try_clone().map_err(ClientError::transport)?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(reader),
        })
    }

    /// Connects, retrying for up to `timeout` while the socket does not
    /// exist yet — for racing a just-started daemon.
    ///
    /// # Errors
    ///
    /// The last transport error when the deadline passes.
    pub fn connect_within(socket: &Path, timeout: Duration) -> Result<Client, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures; typed daemon errors are returned
    /// as `Ok(Response::Error { .. })`.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut line = req.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(ClientError::transport)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(ClientError::transport)?;
        if n == 0 {
            return Err(ClientError::transport("connection closed by daemon"));
        }
        Response::parse(line.trim_end()).map_err(ClientError::protocol)
    }

    /// Submits a job; returns `(job id, digest, answered-from-cache)`.
    ///
    /// # Errors
    ///
    /// Typed daemon rejections (`busy`, `tenant-budget`, `shutdown`,
    /// ...) and transport failures.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<(u64, u64, bool), ClientError> {
        self.submit_with(spec, None, None, None)
    }

    /// [`Client::submit`] with tenant / deadline / failure-budget
    /// attribution.
    ///
    /// # Errors
    ///
    /// As for [`Client::submit`].
    pub fn submit_with(
        &mut self,
        spec: &JobSpec,
        tenant: Option<&str>,
        deadline_ms: Option<u64>,
        failure_budget: Option<f64>,
    ) -> Result<(u64, u64, bool), ClientError> {
        let req = Request::Submit {
            spec: spec.clone(),
            tenant: tenant.map(str::to_owned),
            deadline_ms,
            failure_budget,
        };
        match self.request(&req)? {
            Response::Accepted {
                job,
                digest,
                cached,
                ..
            } => Ok((job, digest, cached)),
            Response::Error { kind, message } => Err(ClientError { kind, message }),
            other => Err(ClientError::protocol(format!(
                "unexpected response to submit: {other:?}"
            ))),
        }
    }

    /// Reports a job's current state.
    ///
    /// # Errors
    ///
    /// `unknown-job` and transport failures.
    pub fn status(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        self.expect_status(&Request::Status { job })
    }

    /// Blocks until the job is terminal, then reports it.
    ///
    /// # Errors
    ///
    /// `unknown-job` and transport failures.
    pub fn wait(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        self.expect_status(&Request::Wait { job })
    }

    /// Cancels a job and reports the state after the cancel landed.
    ///
    /// # Errors
    ///
    /// `unknown-job` and transport failures.
    pub fn cancel(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        self.expect_status(&Request::Cancel { job })
    }

    fn expect_status(&mut self, req: &Request) -> Result<JobOutcome, ClientError> {
        match self.request(req)? {
            Response::Status {
                job,
                state,
                result,
                error,
            } => {
                let terminal = matches!(state.as_str(), "done" | "failed" | "cancelled");
                Ok(JobOutcome {
                    job,
                    state,
                    result,
                    error,
                    terminal,
                })
            }
            Response::Error { kind, message } => Err(ClientError { kind, message }),
            other => Err(ClientError::protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Streams the job's journal events, invoking `on_event` with each
    /// raw event JSON object, until the terminal marker; returns the
    /// terminal state. Occupies this connection for the duration.
    ///
    /// # Errors
    ///
    /// `unknown-job` and transport failures.
    pub fn stream(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&str),
    ) -> Result<String, ClientError> {
        let mut line = Request::Stream { job }.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(ClientError::transport)?;
        loop {
            match self.read_response()? {
                Response::Event { payload } => on_event(&payload),
                Response::StreamEnd { state, .. } => return Ok(state),
                Response::Error { kind, message } => return Err(ClientError { kind, message }),
                other => {
                    return Err(ClientError::protocol(format!(
                        "unexpected response while streaming: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the daemon's counter snapshot and cache occupancy as a
    /// raw JSON object.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats { payload } => Ok(payload),
            Response::Error { kind, message } => Err(ClientError { kind, message }),
            other => Err(ClientError::protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error { kind, message } => Err(ClientError { kind, message }),
            other => Err(ClientError::protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}
