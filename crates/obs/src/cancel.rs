//! Cooperative cancellation: a lock-free token threaded from campaign
//! drivers down into the transient step loop.
//!
//! A [`CancelToken`] is a shared tri-state flag (live / cancelled with a
//! [`CancelReason`]). Checking it is one (for a chained token, two)
//! relaxed atomic loads — cheap enough for the solver's accepted-point
//! cadence — and tripping it is idempotent: the **first** reason wins, so
//! a SIGINT arriving while a deadline watchdog fires reports one coherent
//! cause.
//!
//! Tokens form at most two levels: a run-level parent (tripped by SIGINT
//! or a wall-clock deadline) and per-sample children
//! ([`CancelToken::child`], tripped by a per-sample timeout watchdog). A
//! child observes its parent's cancellation automatically; cancelling a
//! child never touches the parent, so one stuck sample can be cut loose
//! without ending the run.
//!
//! ## Verified protocol core
//!
//! The atomic heart of the token — first-reason-wins trip, monotonic
//! observation, child/parent propagation — lives in [`CancelCore`],
//! generic over an [`AtomicFamily`] and reading its orderings from
//! [`CANCEL_ORDERINGS`]. `CancelToken` instantiates the core with real
//! `std` atomics; the `pulsar-check` interleaving explorer instantiates
//! the *same* core with modeled atomics, so the schedule exploration
//! covers the shipped code and the shipped orderings (DESIGN.md §5.8,
//! protocol model P2).

use crate::sync::{AtomicFamily, AtomicU8Like, StdAtomics};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Why a token was tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An operator interrupt (SIGINT / explicit cancel call).
    User,
    /// The run-level wall-clock deadline expired.
    Deadline,
    /// A single sample exceeded its per-sample timeout.
    Timeout,
}

impl CancelReason {
    /// Stable label used in journals and failure accounting.
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::User => "interrupted",
            CancelReason::Deadline => "deadline",
            CancelReason::Timeout => "sample-timeout",
        }
    }
}

const LIVE: u8 = 0;
const USER: u8 = 1;
const DEADLINE: u8 = 2;
const TIMEOUT: u8 = 3;

fn decode(v: u8) -> Option<CancelReason> {
    match v {
        USER => Some(CancelReason::User),
        DEADLINE => Some(CancelReason::Deadline),
        TIMEOUT => Some(CancelReason::Timeout),
        _ => None,
    }
}

fn encode(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::User => USER,
        CancelReason::Deadline => DEADLINE,
        CancelReason::Timeout => TIMEOUT,
    }
}

/// The memory orderings the cancellation protocol ships with. One value,
/// shared by production ([`CancelToken`]) and the `pulsar-check` model,
/// so the explorer checks exactly what runs.
#[derive(Debug, Clone, Copy)]
pub struct CancelOrderings {
    /// Success ordering of the first-reason-wins trip CAS.
    pub trip_success: Ordering,
    /// Failure ordering of the trip CAS (a later trip that lost).
    pub trip_failure: Ordering,
    /// Ordering of every observer load.
    pub read: Ordering,
}

/// Shipped orderings: everything `Relaxed`.
///
/// The token is a single atomic location carrying the whole protocol
/// state, so plain coherence already guarantees what callers rely on:
/// the trip CAS is atomic (exactly one reason ever lands) and per-reader
/// observations are monotone (`None` can follow `None`, but once a
/// reader sees `Some(r)` it sees `Some(r)` forever). No payload is
/// published *through* the flag, so no Acquire/Release edge is needed.
/// `pulsar-check` explores this protocol bounded-exhaustively and its
/// mutation self-test proves the explorer would catch a weakened
/// (load-then-store) trip.
pub const CANCEL_ORDERINGS: CancelOrderings = CancelOrderings {
    trip_success: Ordering::Relaxed, // ordering: single-location CAS; coherence suffices
    trip_failure: Ordering::Relaxed, // ordering: losing CAS only learns the winner
    read: Ordering::Relaxed,         // ordering: no data published through the flag
};

/// The cancellation protocol core: a tri-state flag with first-reason-wins
/// tripping and an optional parent link, generic over the atomics family.
///
/// Production code uses it through [`CancelToken`]; `pulsar-check` drives
/// it directly with modeled atomics.
pub struct CancelCore<F: AtomicFamily> {
    flag: F::U8,
    parent: Option<Arc<CancelCore<F>>>,
}

impl<F: AtomicFamily> fmt::Debug for CancelCore<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelCore")
            .field("flag", &self.flag)
            .field("has_parent", &self.parent.is_some())
            .finish()
    }
}

impl<F: AtomicFamily> Default for CancelCore<F> {
    fn default() -> Self {
        CancelCore::new()
    }
}

impl<F: AtomicFamily> CancelCore<F> {
    /// A live, unparented core.
    pub fn new() -> Self {
        CancelCore {
            flag: F::U8::new(LIVE),
            parent: None,
        }
    }

    /// A child core: cancelled when either it or `parent` is.
    pub fn child_of(parent: &Arc<CancelCore<F>>) -> Self {
        CancelCore {
            flag: F::U8::new(LIVE),
            parent: Some(Arc::clone(parent)),
        }
    }

    /// Trips the core. The first reason to land sticks; later calls are
    /// no-ops, so concurrent SIGINT/deadline/timeout races stay coherent.
    pub fn cancel(&self, reason: CancelReason, ord: &CancelOrderings) {
        let _ =
            self.flag
                .compare_exchange(LIVE, encode(reason), ord.trip_success, ord.trip_failure);
    }

    /// The cancellation reason, if tripped (directly or via the parent).
    /// A directly-tripped child reports its *own* reason even when the
    /// parent is also tripped — it was cut loose first.
    #[inline]
    pub fn cancelled(&self, ord: &CancelOrderings) -> Option<CancelReason> {
        if let Some(r) = decode(self.flag.load(ord.read)) {
            return Some(r);
        }
        match &self.parent {
            Some(p) => decode(p.flag.load(ord.read)),
            None => None,
        }
    }
}

/// Shared cooperative-cancellation flag. Clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<CancelCore<StdAtomics>>);

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A live, unparented token.
    pub fn new() -> CancelToken {
        CancelToken(Arc::new(CancelCore::new()))
    }

    /// A child token: cancelled when either it or its parent is. Used for
    /// per-sample timeouts under a run-level token.
    pub fn child(&self) -> CancelToken {
        CancelToken(Arc::new(CancelCore::child_of(&self.0)))
    }

    /// Trips the token. The first reason to land sticks; later calls are
    /// no-ops, so concurrent SIGINT/deadline/timeout races stay coherent.
    pub fn cancel(&self, reason: CancelReason) {
        self.0.cancel(reason, &CANCEL_ORDERINGS);
    }

    /// The cancellation reason, if tripped (directly or via the parent).
    /// One relaxed load for an unparented token, two for a child — safe
    /// to call from the transient step loop.
    #[inline]
    pub fn cancelled(&self) -> Option<CancelReason> {
        self.0.cancelled(&CANCEL_ORDERINGS)
    }

    /// True when the token (or its parent) has been tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert_eq!(t.cancelled(), None);
        t.cancel(CancelReason::Deadline);
        t.cancel(CancelReason::User);
        assert_eq!(t.cancelled(), Some(CancelReason::Deadline));
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel(CancelReason::User);
        assert_eq!(t.cancelled(), Some(CancelReason::User));
    }

    #[test]
    fn child_sees_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel(CancelReason::Timeout);
        assert_eq!(child.cancelled(), Some(CancelReason::Timeout));
        assert_eq!(parent.cancelled(), None, "child trips stay local");

        let child2 = parent.child();
        parent.cancel(CancelReason::Deadline);
        assert_eq!(child2.cancelled(), Some(CancelReason::Deadline));
        // A child's own trip takes precedence over the parent's state in
        // reporting — it was cut loose first.
        assert_eq!(child.cancelled(), Some(CancelReason::Timeout));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CancelReason::User.label(), "interrupted");
        assert_eq!(CancelReason::Deadline.label(), "deadline");
        assert_eq!(CancelReason::Timeout.label(), "sample-timeout");
    }
}
