//! Cooperative cancellation: a lock-free token threaded from campaign
//! drivers down into the transient step loop.
//!
//! A [`CancelToken`] is a shared tri-state flag (live / cancelled with a
//! [`CancelReason`]). Checking it is one (for a chained token, two)
//! relaxed atomic loads — cheap enough for the solver's accepted-point
//! cadence — and tripping it is idempotent: the **first** reason wins, so
//! a SIGINT arriving while a deadline watchdog fires reports one coherent
//! cause.
//!
//! Tokens form at most two levels: a run-level parent (tripped by SIGINT
//! or a wall-clock deadline) and per-sample children
//! ([`CancelToken::child`], tripped by a per-sample timeout watchdog). A
//! child observes its parent's cancellation automatically; cancelling a
//! child never touches the parent, so one stuck sample can be cut loose
//! without ending the run.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a token was tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An operator interrupt (SIGINT / explicit cancel call).
    User,
    /// The run-level wall-clock deadline expired.
    Deadline,
    /// A single sample exceeded its per-sample timeout.
    Timeout,
}

impl CancelReason {
    /// Stable label used in journals and failure accounting.
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::User => "interrupted",
            CancelReason::Deadline => "deadline",
            CancelReason::Timeout => "sample-timeout",
        }
    }
}

const LIVE: u8 = 0;
const USER: u8 = 1;
const DEADLINE: u8 = 2;
const TIMEOUT: u8 = 3;

fn decode(v: u8) -> Option<CancelReason> {
    match v {
        USER => Some(CancelReason::User),
        DEADLINE => Some(CancelReason::Deadline),
        TIMEOUT => Some(CancelReason::Timeout),
        _ => None,
    }
}

#[derive(Debug)]
struct Inner {
    flag: AtomicU8,
    parent: Option<Arc<Inner>>,
}

/// Shared cooperative-cancellation flag. Clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A live, unparented token.
    pub fn new() -> CancelToken {
        CancelToken(Arc::new(Inner {
            flag: AtomicU8::new(LIVE),
            parent: None,
        }))
    }

    /// A child token: cancelled when either it or its parent is. Used for
    /// per-sample timeouts under a run-level token.
    pub fn child(&self) -> CancelToken {
        CancelToken(Arc::new(Inner {
            flag: AtomicU8::new(LIVE),
            parent: Some(self.0.clone()),
        }))
    }

    /// Trips the token. The first reason to land sticks; later calls are
    /// no-ops, so concurrent SIGINT/deadline/timeout races stay coherent.
    pub fn cancel(&self, reason: CancelReason) {
        let v = match reason {
            CancelReason::User => USER,
            CancelReason::Deadline => DEADLINE,
            CancelReason::Timeout => TIMEOUT,
        };
        let _ = self
            .0
            .flag
            .compare_exchange(LIVE, v, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The cancellation reason, if tripped (directly or via the parent).
    /// One relaxed load for an unparented token, two for a child — safe
    /// to call from the transient step loop.
    #[inline]
    pub fn cancelled(&self) -> Option<CancelReason> {
        if let Some(r) = decode(self.0.flag.load(Ordering::Relaxed)) {
            return Some(r);
        }
        match &self.0.parent {
            Some(p) => decode(p.flag.load(Ordering::Relaxed)),
            None => None,
        }
    }

    /// True when the token (or its parent) has been tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert_eq!(t.cancelled(), None);
        t.cancel(CancelReason::Deadline);
        t.cancel(CancelReason::User);
        assert_eq!(t.cancelled(), Some(CancelReason::Deadline));
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel(CancelReason::User);
        assert_eq!(t.cancelled(), Some(CancelReason::User));
    }

    #[test]
    fn child_sees_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel(CancelReason::Timeout);
        assert_eq!(child.cancelled(), Some(CancelReason::Timeout));
        assert_eq!(parent.cancelled(), None, "child trips stay local");

        let child2 = parent.child();
        parent.cancel(CancelReason::Deadline);
        assert_eq!(child2.cancelled(), Some(CancelReason::Deadline));
        // A child's own trip takes precedence over the parent's state in
        // reporting — it was cut loose first.
        assert_eq!(child.cancelled(), Some(CancelReason::Timeout));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CancelReason::User.label(), "interrupted");
        assert_eq!(CancelReason::Deadline.label(), "deadline");
        assert_eq!(CancelReason::Timeout.label(), "sample-timeout");
    }
}
