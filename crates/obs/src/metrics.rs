//! Sharded metrics: named counters, log2-bucket histograms, and span totals.
//!
//! A [`Shard`](crate::recorder::Recorder) owner increments relaxed atomics;
//! snapshots sum shards in arbitrary order, so a merged
//! [`MetricsSnapshot`] is independent of how work was split across threads
//! (addition is commutative and every increment is a plain `+=`).

use shard_proto::{add as proto_add, fold_slice, load_slice, SHARD_ORDERINGS};
use std::sync::atomic::AtomicU64;

/// The shard merge protocol, shared with the `pulsar-check` model checker.
///
/// A `Shard` owner bumps relaxed counters; retiring folds a shard into
/// an accumulator under the registry mutex; snapshots sum shards in
/// arbitrary order. These free functions — generic over the atomics
/// family — *are* that protocol: production calls them with real
/// `std` atomics (below), `pulsar-check` calls them with modeled atomics
/// and explores the interleavings bounded-exhaustively (DESIGN.md §5.8,
/// protocol model P1). The orderings live in one shared
/// [`SHARD_ORDERINGS`] value so the explorer checks what ships.
pub mod shard_proto {
    use crate::sync::AtomicU64Like;
    use std::sync::atomic::Ordering;

    /// The memory orderings the shard protocol ships with.
    #[derive(Debug, Clone, Copy)]
    pub struct ShardOrderings {
        /// Ordering of an owner's counter increment.
        pub add: Ordering,
        /// Ordering of the source-side load when folding a retired shard.
        pub merge_read: Ordering,
        /// Ordering of the destination-side add when folding.
        pub merge_add: Ordering,
        /// Ordering of a snapshot's read of a live shard.
        pub snapshot_read: Ordering,
    }

    /// Shipped orderings: everything `Relaxed`.
    ///
    /// Cross-thread visibility of counts is provided by the registry
    /// mutex (retire and snapshot both run under it), so the cells
    /// themselves need only atomicity: increments are RMWs that can
    /// never lose updates, and sums are commutative, which makes merged
    /// snapshots independent of thread count. The `pulsar-check`
    /// mutation self-test proves the explorer catches the protocol
    /// breaking when that lock synchronization is weakened.
    pub const SHARD_ORDERINGS: ShardOrderings = ShardOrderings {
        add: Ordering::Relaxed, // ordering: atomic RMW; mutex publishes, sums commute
        merge_read: Ordering::Relaxed, // ordering: runs under the registry mutex
        merge_add: Ordering::Relaxed, // ordering: runs under the registry mutex
        snapshot_read: Ordering::Relaxed, // ordering: runs under the registry mutex
    };

    /// One owner-side counter increment.
    #[inline]
    pub fn add<A: AtomicU64Like>(cell: &A, n: u64, ord: &ShardOrderings) {
        cell.fetch_add(n, ord.add);
    }

    /// Folds `src` into `dst` cell-by-cell (retiring a shard). Totals are
    /// preserved exactly because both sides are atomic adds.
    pub fn fold_slice<A: AtomicU64Like>(src: &[A], dst: &[A], ord: &ShardOrderings) {
        for (s, d) in src.iter().zip(dst) {
            d.fetch_add(s.load(ord.merge_read), ord.merge_add);
        }
    }

    /// Adds `src`'s current values into a plain snapshot buffer.
    pub fn load_slice<A: AtomicU64Like>(src: &[A], dst: &mut [u64], ord: &ShardOrderings) {
        for (s, d) in src.iter().zip(dst) {
            *d += s.load(ord.snapshot_read);
        }
    }
}

/// Number of log2 buckets per histogram. Bucket `b > 0` covers values in
/// `[2^(b-1), 2^b)`; bucket `0` covers `{0, 1}` (values of 0 and 1 both
/// land there). 32 buckets cover every nanosecond duration up to ~2 s and
/// every iteration count the solver can produce.
pub const HIST_BUCKETS: usize = 32;

/// Scalar event counters, in canonical rendering order.
///
/// The first block mirrors the legacy `SolverCounters` fields one-for-one
/// (the deprecated `solver_counters()` shim is rebuilt from these); the
/// rest are new with this subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Newton solves dispatched to the sparse engine.
    SparseSolves,
    /// Newton solves run by the dense engine (including fallbacks).
    DenseSolves,
    /// Newton iterations executed by the dense engine.
    DenseIterations,
    /// Newton iterations executed by any engine.
    NewtonIterations,
    /// Fresh symbolic analyses (maximum transversal + ordering + pattern).
    SymbolicAnalyses,
    /// Numeric LU refactorizations on a cached symbolic pattern.
    NumericFactorizations,
    /// Newton iterations that reused the previous factorization (chord steps).
    JacobianReuses,
    /// Sparse attempts abandoned to the dense engine.
    DenseFallbacks,
    /// Transient time points accepted (step-budget spend).
    StepsAccepted,
    /// Transient steps rejected by local-truncation-error control.
    LteRejections,
    /// Transient steps retried after a Newton failure.
    NewtonRetries,
    /// Monte Carlo samples that succeeded on the first attempt.
    SamplesOk,
    /// Monte Carlo samples that succeeded after at least one retry.
    SamplesRecovered,
    /// Monte Carlo samples that exhausted their attempts.
    SamplesFailed,
    /// Extra Monte Carlo attempts beyond the first, across all samples.
    RetryAttempts,
    /// Campaign sites that produced a test plan.
    SitesPlanned,
    /// Campaign sites with no sensitizable path.
    SitesUnsensitizable,
    /// Campaign sites whose electrical analysis failed.
    SitesFailed,
    /// Newton step-solves completed inside the batched engine, one per
    /// lane per accepted-or-attempted time point (per-instance
    /// attribution: K lanes in one shared assembly walk count K).
    BatchedLaneSolves,
    /// Lanes ejected from a batched run back to the scalar path (Newton
    /// failure, cancellation, budget, or an unbatchable configuration).
    BatchEjections,
    /// Per-point sample evaluations the adaptive stopping rule *skipped*
    /// relative to the fixed budget (fixed-budget evals − evals spent).
    AdaptiveSamplesSaved,
    /// Sample evaluations spent in the crossover-refinement pass.
    AdaptiveRefineSamples,
    /// Jobs accepted into the serve daemon's queue.
    ServeJobsSubmitted,
    /// Serve jobs that ran to completion.
    ServeJobsCompleted,
    /// Serve jobs that failed (budget exceeded, lint rejection, ...).
    ServeJobsFailed,
    /// Serve jobs cancelled before or during execution.
    ServeJobsCancelled,
    /// Submissions rejected with `busy` because the queue was full.
    ServeBusyRejections,
    /// Submissions rejected because the tenant's failure budget ran out.
    ServeTenantRejections,
    /// Submissions answered from the whole-result cache (zero solves).
    ServeResultCacheHits,
    /// Submissions that had to execute (result-cache miss).
    ServeResultCacheMisses,
    /// Jobs that adopted a cached calibration instead of re-calibrating.
    ServeCalibCacheHits,
    /// Jobs that adopted a cached symbolic factorization.
    ServeSymbolicCacheHits,
    /// Jobs whose lint preflight verdict came from the cross-job cache.
    ServeLintCacheHits,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 33;

    /// Every counter, in canonical order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::SparseSolves,
        Counter::DenseSolves,
        Counter::DenseIterations,
        Counter::NewtonIterations,
        Counter::SymbolicAnalyses,
        Counter::NumericFactorizations,
        Counter::JacobianReuses,
        Counter::DenseFallbacks,
        Counter::StepsAccepted,
        Counter::LteRejections,
        Counter::NewtonRetries,
        Counter::SamplesOk,
        Counter::SamplesRecovered,
        Counter::SamplesFailed,
        Counter::RetryAttempts,
        Counter::SitesPlanned,
        Counter::SitesUnsensitizable,
        Counter::SitesFailed,
        Counter::BatchedLaneSolves,
        Counter::BatchEjections,
        Counter::AdaptiveSamplesSaved,
        Counter::AdaptiveRefineSamples,
        Counter::ServeJobsSubmitted,
        Counter::ServeJobsCompleted,
        Counter::ServeJobsFailed,
        Counter::ServeJobsCancelled,
        Counter::ServeBusyRejections,
        Counter::ServeTenantRejections,
        Counter::ServeResultCacheHits,
        Counter::ServeResultCacheMisses,
        Counter::ServeCalibCacheHits,
        Counter::ServeSymbolicCacheHits,
        Counter::ServeLintCacheHits,
    ];

    /// Stable snake_case name used in JSON output and journal events.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SparseSolves => "sparse_solves",
            Counter::DenseSolves => "dense_solves",
            Counter::DenseIterations => "dense_iterations",
            Counter::NewtonIterations => "newton_iterations",
            Counter::SymbolicAnalyses => "symbolic_analyses",
            Counter::NumericFactorizations => "numeric_factorizations",
            Counter::JacobianReuses => "jacobian_reuses",
            Counter::DenseFallbacks => "dense_fallbacks",
            Counter::StepsAccepted => "steps_accepted",
            Counter::LteRejections => "lte_rejections",
            Counter::NewtonRetries => "newton_retries",
            Counter::SamplesOk => "samples_ok",
            Counter::SamplesRecovered => "samples_recovered",
            Counter::SamplesFailed => "samples_failed",
            Counter::RetryAttempts => "retry_attempts",
            Counter::SitesPlanned => "sites_planned",
            Counter::SitesUnsensitizable => "sites_unsensitizable",
            Counter::SitesFailed => "sites_failed",
            Counter::BatchedLaneSolves => "batched_lane_solves",
            Counter::BatchEjections => "batch_ejections",
            Counter::AdaptiveSamplesSaved => "adaptive_samples_saved",
            Counter::AdaptiveRefineSamples => "adaptive_refine_samples",
            Counter::ServeJobsSubmitted => "serve_jobs_submitted",
            Counter::ServeJobsCompleted => "serve_jobs_completed",
            Counter::ServeJobsFailed => "serve_jobs_failed",
            Counter::ServeJobsCancelled => "serve_jobs_cancelled",
            Counter::ServeBusyRejections => "serve_busy_rejections",
            Counter::ServeTenantRejections => "serve_tenant_rejections",
            Counter::ServeResultCacheHits => "serve_result_cache_hits",
            Counter::ServeResultCacheMisses => "serve_result_cache_misses",
            Counter::ServeCalibCacheHits => "serve_calib_cache_hits",
            Counter::ServeSymbolicCacheHits => "serve_symbolic_cache_hits",
            Counter::ServeLintCacheHits => "serve_lint_cache_hits",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Hot phases timed by spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Fresh symbolic analysis of the MNA pattern.
    SymbolicAnalysis,
    /// Numeric refactorization on a cached symbolic pattern.
    NumericRefactorize,
    /// One full Newton solve (any engine).
    NewtonSolve,
    /// The transient time-step loop of one simulation.
    TransientStepLoop,
    /// One Monte Carlo sample body (all attempts).
    McSample,
    /// Study or campaign setup (lint preflight, site enumeration).
    StudySetup,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;

    /// Every phase, in canonical order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::SymbolicAnalysis,
        Phase::NumericRefactorize,
        Phase::NewtonSolve,
        Phase::TransientStepLoop,
        Phase::McSample,
        Phase::StudySetup,
    ];

    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SymbolicAnalysis => "symbolic_analysis",
            Phase::NumericRefactorize => "numeric_refactorize",
            Phase::NewtonSolve => "newton_solve",
            Phase::TransientStepLoop => "transient_step_loop",
            Phase::McSample => "mc_sample",
            Phase::StudySetup => "study_setup",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Histogram identifier: one duration histogram per phase plus the Newton
/// iterations-per-solve distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistId {
    /// Span duration in nanoseconds for a phase.
    PhaseNs(Phase),
    /// Newton iterations per solve (any engine).
    NewtonItersPerSolve,
}

/// Total number of histograms.
pub(crate) const HIST_COUNT: usize = Phase::COUNT + 1;

impl HistId {
    /// Every histogram, in canonical order.
    pub const ALL: [HistId; HIST_COUNT] = [
        HistId::PhaseNs(Phase::SymbolicAnalysis),
        HistId::PhaseNs(Phase::NumericRefactorize),
        HistId::PhaseNs(Phase::NewtonSolve),
        HistId::PhaseNs(Phase::TransientStepLoop),
        HistId::PhaseNs(Phase::McSample),
        HistId::PhaseNs(Phase::StudySetup),
        HistId::NewtonItersPerSolve,
    ];

    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            HistId::PhaseNs(Phase::SymbolicAnalysis) => "symbolic_analysis_ns",
            HistId::PhaseNs(Phase::NumericRefactorize) => "numeric_refactorize_ns",
            HistId::PhaseNs(Phase::NewtonSolve) => "newton_solve_ns",
            HistId::PhaseNs(Phase::TransientStepLoop) => "transient_step_loop_ns",
            HistId::PhaseNs(Phase::McSample) => "mc_sample_ns",
            HistId::PhaseNs(Phase::StudySetup) => "study_setup_ns",
            HistId::NewtonItersPerSolve => "newton_iters_per_solve",
        }
    }

    fn index(self) -> usize {
        match self {
            HistId::PhaseNs(p) => p.index(),
            HistId::NewtonItersPerSolve => Phase::COUNT,
        }
    }
}

/// Log2 bucket for a value: 0 and 1 land in bucket 0, otherwise
/// `floor(log2(v)) + 1`, saturating at the last bucket.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// One thread's (or one sample's) private slice of the registry: plain
/// relaxed atomics, no locks on the increment path.
pub(crate) struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    hist: [AtomicU64; HIST_COUNT * HIST_BUCKETS],
    span_ns: [AtomicU64; Phase::COUNT],
    span_count: [AtomicU64; Phase::COUNT],
}

impl Shard {
    pub(crate) fn new() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
            span_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            span_count: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn add(&self, c: Counter, n: u64) {
        proto_add(&self.counters[c.index()], n, &SHARD_ORDERINGS);
    }

    pub(crate) fn record(&self, h: HistId, value: u64) {
        let slot = h.index() * HIST_BUCKETS + bucket_of(value);
        proto_add(&self.hist[slot], 1, &SHARD_ORDERINGS);
    }

    pub(crate) fn span_done(&self, p: Phase, ns: u64) {
        proto_add(&self.span_ns[p.index()], ns, &SHARD_ORDERINGS);
        proto_add(&self.span_count[p.index()], 1, &SHARD_ORDERINGS);
        self.record(HistId::PhaseNs(p), ns);
    }

    /// Adds this shard's totals into `dst` (used when retiring a shard).
    /// Runs under the registry mutex, which provides the cross-thread
    /// visibility edge (see [`shard_proto`]).
    pub(crate) fn fold_into(&self, dst: &Shard) {
        fold_slice(&self.counters, &dst.counters, &SHARD_ORDERINGS);
        fold_slice(&self.hist, &dst.hist, &SHARD_ORDERINGS);
        fold_slice(&self.span_ns, &dst.span_ns, &SHARD_ORDERINGS);
        fold_slice(&self.span_count, &dst.span_count, &SHARD_ORDERINGS);
    }

    /// Adds this shard's totals into a snapshot. Runs under the registry
    /// mutex (see [`shard_proto`]).
    pub(crate) fn load_into(&self, snap: &mut MetricsSnapshot) {
        load_slice(&self.counters, &mut snap.counters, &SHARD_ORDERINGS);
        load_slice(&self.hist, &mut snap.hist, &SHARD_ORDERINGS);
        load_slice(&self.span_ns, &mut snap.span_ns, &SHARD_ORDERINGS);
        load_slice(&self.span_count, &mut snap.span_count, &SHARD_ORDERINGS);
    }
}

/// A point-in-time sum over every shard of a registry. Plain values; safe
/// to hold, diff, and render after the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::COUNT],
    hist: [u64; HIST_COUNT * HIST_BUCKETS],
    span_ns: [u64; Phase::COUNT],
    span_count: [u64; Phase::COUNT],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; Counter::COUNT],
            hist: [0; HIST_COUNT * HIST_BUCKETS],
            span_ns: [0; Phase::COUNT],
            span_count: [0; Phase::COUNT],
        }
    }
}

impl MetricsSnapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// The 32 log2 buckets of one histogram.
    pub fn histogram(&self, h: HistId) -> [u64; HIST_BUCKETS] {
        let base = h.index() * HIST_BUCKETS;
        std::array::from_fn(|b| self.hist[base + b])
    }

    /// Total observations recorded in one histogram.
    pub fn histogram_count(&self, h: HistId) -> u64 {
        self.histogram(h).iter().sum()
    }

    /// Total nanoseconds spent in a phase across all spans.
    pub fn span_ns(&self, p: Phase) -> u64 {
        self.span_ns[p.index()]
    }

    /// Number of spans recorded for a phase.
    pub fn span_count(&self, p: Phase) -> u64 {
        self.span_count[p.index()]
    }

    /// Counters with non-zero values, in canonical order — the compact
    /// form embedded in journal events.
    pub fn nonzero_counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .filter(|c| self.counter(**c) > 0)
            .map(|c| (c.name(), self.counter(*c)))
            .collect()
    }

    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (d, e) in out.counters.iter_mut().zip(&earlier.counters) {
            *d = d.saturating_sub(*e);
        }
        for (d, e) in out.hist.iter_mut().zip(&earlier.hist) {
            *d = d.saturating_sub(*e);
        }
        for (d, e) in out.span_ns.iter_mut().zip(&earlier.span_ns) {
            *d = d.saturating_sub(*e);
        }
        for (d, e) in out.span_count.iter_mut().zip(&earlier.span_count) {
            *d = d.saturating_sub(*e);
        }
        out
    }

    /// Renders the snapshot as a single-line JSON object with a fixed key
    /// order: every counter (zeros included, so the key set is stable for
    /// schema validation), then per-phase span totals, then histograms as
    /// full 32-bucket arrays.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.name(), self.counter(*c));
        }
        out.push_str("},\"spans\":{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_ns\":{}}}",
                p.name(),
                self.span_count(*p),
                self.span_ns(*p)
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in HistId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", h.name());
            for (b, v) in self.histogram(*h).iter().enumerate() {
                if b > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn counter_names_match_canonical_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.name());
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(h.index(), i, "{}", h.name());
        }
    }

    #[test]
    fn fold_equals_load() {
        let a = Shard::new();
        let b = Shard::new();
        a.add(Counter::SparseSolves, 3);
        a.record(HistId::NewtonItersPerSolve, 5);
        a.span_done(Phase::NewtonSolve, 1200);
        b.add(Counter::SparseSolves, 4);
        let mut direct = MetricsSnapshot::default();
        a.load_into(&mut direct);
        b.load_into(&mut direct);
        let folded = Shard::new();
        a.fold_into(&folded);
        b.fold_into(&folded);
        let mut via_fold = MetricsSnapshot::default();
        folded.load_into(&mut via_fold);
        assert_eq!(direct, via_fold);
        assert_eq!(direct.counter(Counter::SparseSolves), 7);
        assert_eq!(direct.span_count(Phase::NewtonSolve), 1);
    }
}
