//! Structured event journal: one JSON object per line (JSONL), with a
//! fixed field order so renders are byte-stable across runs, platforms,
//! and thread counts.
//!
//! Events deliberately carry **no wall-clock data** — durations live in
//! the metrics histograms — so journals from deterministic runs are
//! golden-testable.

use crate::json::json_str;

/// One journal entry. `kind` distinguishes the event families:
/// `"sample"` (one Monte Carlo sample), `"site"` (one campaign defect
/// site), `"transient"` (one standalone simulation), `"point"` (one
/// adaptive coverage grid point with its measured accuracy).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event family: `"sample"`, `"site"`, `"transient"`, or `"point"`.
    pub kind: &'static str,
    /// Sample or site index within the run.
    pub index: usize,
    /// Optional human label (a site description, a deck name).
    pub label: Option<String>,
    /// RNG stream seed of the sample, when one exists.
    pub seed: Option<u64>,
    /// Outcome label: `"ok"`, `"recovered"`, `"failed"`, `"planned"`,
    /// `"unsensitizable"`.
    pub outcome: &'static str,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Robustness escalation rung reached (0 = nominal configuration).
    pub escalation_rung: u32,
    /// Stable failure-kind label when the outcome is a failure.
    pub error_kind: Option<String>,
    /// Free-form failure detail when `error_kind` alone is too coarse —
    /// e.g. the captured message of a contained panic. Omitted when
    /// `None`, so existing golden journals are unaffected.
    pub detail: Option<String>,
    /// Adaptive sampling: the CI half-width the stop rule was asked for.
    /// The four precision fields are set together on `"point"` events and
    /// omitted everywhere else.
    pub requested_halfwidth: Option<f64>,
    /// Adaptive sampling: the half-width actually achieved at stop.
    pub achieved_halfwidth: Option<f64>,
    /// Adaptive sampling: samples this grid point consumed.
    pub samples_spent: Option<u64>,
    /// Adaptive sampling: whether the point stopped before its budget.
    pub stopped_early: Option<bool>,
    /// Counters attributed to this event, canonical order, zeros omitted.
    pub counters: Vec<(&'static str, u64)>,
}

impl Event {
    /// A minimal `"ok"` event of the given kind and index.
    pub fn new(kind: &'static str, index: usize) -> Event {
        Event {
            kind,
            index,
            label: None,
            seed: None,
            outcome: "ok",
            attempts: 1,
            escalation_rung: 0,
            error_kind: None,
            detail: None,
            requested_halfwidth: None,
            achieved_halfwidth: None,
            samples_spent: None,
            stopped_early: None,
            counters: Vec::new(),
        }
    }

    /// Renders the event as one JSON line (no trailing newline). Field
    /// order is fixed: kind, index, label?, seed?, outcome, attempts,
    /// escalation_rung, error_kind?, detail?, requested_halfwidth?,
    /// achieved_halfwidth?, samples_spent?, stopped_early?, counters.
    pub fn render_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"kind\":{},\"index\":{}",
            json_str(self.kind),
            self.index
        );
        if let Some(label) = &self.label {
            let _ = write!(out, ",\"label\":{}", json_str(label));
        }
        if let Some(seed) = self.seed {
            let _ = write!(out, ",\"seed\":{seed}");
        }
        let _ = write!(
            out,
            ",\"outcome\":{},\"attempts\":{},\"escalation_rung\":{}",
            json_str(self.outcome),
            self.attempts,
            self.escalation_rung
        );
        if let Some(kind) = &self.error_kind {
            let _ = write!(out, ",\"error_kind\":{}", json_str(kind));
        }
        if let Some(detail) = &self.detail {
            let _ = write!(out, ",\"detail\":{}", json_str(detail));
        }
        if let Some(hw) = self.requested_halfwidth {
            let _ = write!(out, ",\"requested_halfwidth\":{hw}");
        }
        if let Some(hw) = self.achieved_halfwidth {
            let _ = write!(out, ",\"achieved_halfwidth\":{hw}");
        }
        if let Some(n) = self.samples_spent {
            let _ = write!(out, ",\"samples_spent\":{n}");
        }
        if let Some(early) = self.stopped_early {
            let _ = write!(out, ",\"stopped_early\":{early}");
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(name), value);
        }
        out.push_str("}}");
        out
    }
}

/// Renders a journal as JSONL: one event per line, trailing newline after
/// the last line (empty journals render as the empty string).
pub fn render_journal(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn minimal_event_renders_fixed_fields() {
        let e = Event::new("transient", 0);
        assert_eq!(
            e.render_jsonl(),
            "{\"kind\":\"transient\",\"index\":0,\"outcome\":\"ok\",\
             \"attempts\":1,\"escalation_rung\":0,\"counters\":{}}"
        );
    }

    #[test]
    fn full_event_renders_all_fields_in_order() {
        let e = Event {
            kind: "sample",
            index: 3,
            label: Some("site \"x\"".to_owned()),
            seed: Some(42),
            outcome: "failed",
            attempts: 3,
            escalation_rung: 2,
            error_kind: Some("non-convergence".to_owned()),
            detail: None,
            counters: vec![("sparse_solves", 12), ("newton_iterations", 96)],
            ..Event::new("sample", 3)
        };
        assert_eq!(
            e.render_jsonl(),
            "{\"kind\":\"sample\",\"index\":3,\"label\":\"site \\\"x\\\"\",\
             \"seed\":42,\"outcome\":\"failed\",\"attempts\":3,\
             \"escalation_rung\":2,\"error_kind\":\"non-convergence\",\
             \"counters\":{\"sparse_solves\":12,\"newton_iterations\":96}}"
        );
    }

    #[test]
    fn detail_renders_between_error_kind_and_counters() {
        let mut e = Event::new("sample", 7);
        e.outcome = "failed";
        e.error_kind = Some("panic".to_owned());
        e.detail = Some("index out of bounds".to_owned());
        assert_eq!(
            e.render_jsonl(),
            "{\"kind\":\"sample\",\"index\":7,\"outcome\":\"failed\",\
             \"attempts\":1,\"escalation_rung\":0,\"error_kind\":\"panic\",\
             \"detail\":\"index out of bounds\",\"counters\":{}}"
        );
    }

    #[test]
    fn point_event_renders_precision_fields_before_counters() {
        let mut e = Event::new("point", 4);
        e.label = Some("pulse r=12000 f=1.1".to_owned());
        e.requested_halfwidth = Some(0.069);
        e.achieved_halfwidth = Some(0.0536);
        e.samples_spent = Some(32);
        e.stopped_early = Some(true);
        assert_eq!(
            e.render_jsonl(),
            "{\"kind\":\"point\",\"index\":4,\"label\":\"pulse r=12000 f=1.1\",\
             \"outcome\":\"ok\",\"attempts\":1,\"escalation_rung\":0,\
             \"requested_halfwidth\":0.069,\"achieved_halfwidth\":0.0536,\
             \"samples_spent\":32,\"stopped_early\":true,\"counters\":{}}"
        );
    }

    #[test]
    fn journal_is_one_line_per_event() {
        let j = render_journal(&[Event::new("sample", 0), Event::new("sample", 1)]);
        assert_eq!(j.lines().count(), 2);
        assert!(j.ends_with('\n'));
    }
}
