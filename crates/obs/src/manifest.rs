//! Run manifests: a reproducibility record emitted at the start/end of a
//! run — what configuration ran, with which seeds, for how long, and the
//! final metric snapshot.

use crate::json::json_str;
use crate::metrics::MetricsSnapshot;

/// Version of the manifest/metrics JSON layout; bumped on breaking change.
/// Version 2 adds the optional `adaptive` block (per-point measured
/// precision of an adaptive coverage study). Version 3 adds the `serve`
/// kind and the optional `serve` block (daemon lifetime summary).
pub const SCHEMA_VERSION: u64 = 3;

/// FNV-1a digest of a configuration's `Debug` representation — stable for
/// a given config on a given build, cheap, and dependency-free. Two runs
/// with the same digest ran the same configuration.
pub fn config_digest(debug_repr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in debug_repr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One grid point of an adaptive coverage study: where it sits, what it
/// measured, and the accuracy actually achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePointRecord {
    /// Test-condition factor (threshold or clock factor) of the point.
    pub factor: f64,
    /// Fault resistance of the point, in ohms.
    pub resistance: f64,
    /// Coverage estimate at stop.
    pub coverage: f64,
    /// CI half-width the stop rule was asked for.
    pub requested_halfwidth: f64,
    /// CI half-width actually achieved when the point stopped.
    pub achieved_halfwidth: f64,
    /// Samples the point consumed (first pass + refinement).
    pub samples_spent: u64,
    /// True when the point stopped before exhausting its budget.
    pub stopped_early: bool,
    /// True when the crossover-refinement pass extended this point.
    pub refined: bool,
}

impl AdaptivePointRecord {
    fn render_json(&self) -> String {
        format!(
            "{{\"factor\":{},\"resistance\":{},\"coverage\":{},\
             \"requested_halfwidth\":{},\"achieved_halfwidth\":{},\
             \"samples_spent\":{},\"stopped_early\":{},\"refined\":{}}}",
            self.factor,
            self.resistance,
            self.coverage,
            self.requested_halfwidth,
            self.achieved_halfwidth,
            self.samples_spent,
            self.stopped_early,
            self.refined
        )
    }
}

/// The measured-accuracy record of an adaptive coverage study, embedded
/// in the manifest when adaptive sampling ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptiveManifest {
    /// Requested CI half-width (first-pass target).
    pub precision: f64,
    /// First-pass per-point sample budget.
    pub max_samples: u64,
    /// Total (sample, point) evaluations actually spent.
    pub evals: u64,
    /// Evaluations a fixed-budget run would have spent.
    pub fixed_budget_evals: u64,
    /// Per-point measured accuracy, grid order.
    pub points: Vec<AdaptivePointRecord>,
}

impl AdaptiveManifest {
    fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"precision\":{},\"max_samples\":{},\"evals\":{},\
             \"fixed_budget_evals\":{},\"points\":[",
            self.precision, self.max_samples, self.evals, self.fixed_budget_evals
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.render_json());
        }
        out.push_str("]}");
        out
    }
}

/// Lifetime summary of one `pulsar serve` daemon process, embedded in the
/// manifest the daemon writes at shutdown. Queue/cache *rates* live in
/// the ordinary counters block; this block records the daemon's static
/// shape so a manifest alone says how the serving fleet was configured.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeManifest {
    /// Worker threads the daemon ran.
    pub workers: u64,
    /// Bound of the admission queue (backpressure depth).
    pub queue_depth: u64,
    /// Jobs admitted over the daemon's lifetime.
    pub jobs_admitted: u64,
    /// Jobs still queued or running when shutdown drained them.
    pub jobs_drained: u64,
    /// Per-tenant failure budget, when one was configured.
    pub tenant_budget: Option<u64>,
}

impl ServeManifest {
    fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"workers\":{},\"queue_depth\":{},\"jobs_admitted\":{},\"jobs_drained\":{}",
            self.workers, self.queue_depth, self.jobs_admitted, self.jobs_drained
        );
        if let Some(b) = self.tenant_budget {
            let _ = write!(out, ",\"tenant_budget\":{b}");
        }
        out.push('}');
        out
    }
}

/// The reproducibility record for one run (`pulsar sim`, a Monte Carlo
/// study, a campaign, or a serve-daemon lifetime).
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Run family: `"sim"`, `"study"`, `"campaign"`, or `"serve"`.
    pub kind: String,
    /// [`config_digest`] of the run configuration.
    pub config_digest: u64,
    /// Master seed, when the run is seeded.
    pub seed: Option<u64>,
    /// Monte Carlo sample count, when applicable.
    pub samples: Option<usize>,
    /// Worker thread count, when applicable.
    pub threads: Option<usize>,
    /// Technology summary (name or key parameters), when applicable.
    pub tech: Option<String>,
    /// Adaptive-sampling accuracy record, when adaptive sampling ran.
    pub adaptive: Option<AdaptiveManifest>,
    /// Daemon lifetime summary, when the run is a `serve` daemon.
    pub serve: Option<ServeManifest>,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Total wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Number of journal events the run emitted.
    pub events: usize,
    /// Merged metric snapshot at end of run.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// A manifest with the given kind and config digest; every optional
    /// field unset and the clock fields zeroed.
    pub fn new(kind: impl Into<String>, config_digest: u64) -> RunManifest {
        RunManifest {
            kind: kind.into(),
            config_digest,
            seed: None,
            samples: None,
            threads: None,
            tech: None,
            adaptive: None,
            serve: None,
            started_unix_ms: 0,
            wall_ms: 0,
            events: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Renders the manifest as a single-line JSON object with a fixed key
    /// order. The digest is rendered as a hex string (a raw u64 can exceed
    /// JSON's interoperable integer range).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"tool\":\"pulsar\",\
             \"version\":{},\"kind\":{},\"config_digest\":\"{:#018x}\"",
            json_str(env!("CARGO_PKG_VERSION")),
            json_str(&self.kind),
            self.config_digest
        );
        if let Some(seed) = self.seed {
            let _ = write!(out, ",\"seed\":{seed}");
        }
        if let Some(samples) = self.samples {
            let _ = write!(out, ",\"samples\":{samples}");
        }
        if let Some(threads) = self.threads {
            let _ = write!(out, ",\"threads\":{threads}");
        }
        if let Some(tech) = &self.tech {
            let _ = write!(out, ",\"tech\":{}", json_str(tech));
        }
        if let Some(adaptive) = &self.adaptive {
            let _ = write!(out, ",\"adaptive\":{}", adaptive.render_json());
        }
        if let Some(serve) = &self.serve {
            let _ = write!(out, ",\"serve\":{}", serve.render_json());
        }
        let _ = write!(
            out,
            ",\"started_unix_ms\":{},\"wall_ms\":{},\"events\":{},\"metrics\":{}}}",
            self.started_unix_ms,
            self.wall_ms,
            self.events,
            self.metrics.render_json()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::json;

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let a = config_digest("McConfig { samples: 100 }");
        assert_eq!(a, config_digest("McConfig { samples: 100 }"));
        assert_ne!(a, config_digest("McConfig { samples: 101 }"));
    }

    #[test]
    fn manifest_renders_parseable_json() {
        let mut m = RunManifest::new("sim", config_digest("cfg"));
        m.seed = Some(2007);
        m.samples = Some(64);
        m.threads = Some(2);
        m.tech = Some("generic 180nm".to_owned());
        m.wall_ms = 12;
        let doc = json::parse(&m.render_json()).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str().unwrap(), "sim");
        assert_eq!(doc.get("seed").unwrap().as_num().unwrap(), 2007.0);
        assert_eq!(
            doc.get("schema_version").unwrap().as_num().unwrap(),
            SCHEMA_VERSION as f64
        );
        assert!(doc.get("metrics").unwrap().get("counters").is_some());
    }

    #[test]
    fn adaptive_block_renders_between_tech_and_clock_fields() {
        let mut m = RunManifest::new("study", config_digest("cfg"));
        m.adaptive = Some(AdaptiveManifest {
            precision: 0.069,
            max_samples: 200,
            evals: 512,
            fixed_budget_evals: 2400,
            points: vec![AdaptivePointRecord {
                factor: 1.1,
                resistance: 12000.0,
                coverage: 0.96875,
                requested_halfwidth: 0.069,
                achieved_halfwidth: 0.0536,
                samples_spent: 32,
                stopped_early: true,
                refined: false,
            }],
        });
        let rendered = m.render_json();
        let doc = json::parse(&rendered).unwrap();
        let a = doc.get("adaptive").unwrap();
        assert_eq!(a.get("max_samples").unwrap().as_num().unwrap(), 200.0);
        assert_eq!(a.get("evals").unwrap().as_num().unwrap(), 512.0);
        let points = match a.get("points").unwrap() {
            json::Json::Arr(v) => v,
            other => panic!("points is {}", other.type_name()),
        };
        assert_eq!(points[0].get("samples_spent").unwrap().as_num(), Some(32.0));
        assert_eq!(
            points[0].get("stopped_early").unwrap(),
            &json::Json::Bool(true)
        );
        let tech_pos = rendered.find("\"started_unix_ms\"").unwrap();
        assert!(rendered.find("\"adaptive\"").unwrap() < tech_pos);
    }
}
