//! Run manifests: a reproducibility record emitted at the start/end of a
//! run — what configuration ran, with which seeds, for how long, and the
//! final metric snapshot.

use crate::json::json_str;
use crate::metrics::MetricsSnapshot;

/// Version of the manifest/metrics JSON layout; bumped on breaking change.
pub const SCHEMA_VERSION: u64 = 1;

/// FNV-1a digest of a configuration's `Debug` representation — stable for
/// a given config on a given build, cheap, and dependency-free. Two runs
/// with the same digest ran the same configuration.
pub fn config_digest(debug_repr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in debug_repr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The reproducibility record for one run (`pulsar sim`, a Monte Carlo
/// study, or a campaign).
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Run family: `"sim"`, `"study"`, or `"campaign"`.
    pub kind: String,
    /// [`config_digest`] of the run configuration.
    pub config_digest: u64,
    /// Master seed, when the run is seeded.
    pub seed: Option<u64>,
    /// Monte Carlo sample count, when applicable.
    pub samples: Option<usize>,
    /// Worker thread count, when applicable.
    pub threads: Option<usize>,
    /// Technology summary (name or key parameters), when applicable.
    pub tech: Option<String>,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Total wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Number of journal events the run emitted.
    pub events: usize,
    /// Merged metric snapshot at end of run.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// A manifest with the given kind and config digest; every optional
    /// field unset and the clock fields zeroed.
    pub fn new(kind: impl Into<String>, config_digest: u64) -> RunManifest {
        RunManifest {
            kind: kind.into(),
            config_digest,
            seed: None,
            samples: None,
            threads: None,
            tech: None,
            started_unix_ms: 0,
            wall_ms: 0,
            events: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Renders the manifest as a single-line JSON object with a fixed key
    /// order. The digest is rendered as a hex string (a raw u64 can exceed
    /// JSON's interoperable integer range).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"tool\":\"pulsar\",\
             \"version\":{},\"kind\":{},\"config_digest\":\"{:#018x}\"",
            json_str(env!("CARGO_PKG_VERSION")),
            json_str(&self.kind),
            self.config_digest
        );
        if let Some(seed) = self.seed {
            let _ = write!(out, ",\"seed\":{seed}");
        }
        if let Some(samples) = self.samples {
            let _ = write!(out, ",\"samples\":{samples}");
        }
        if let Some(threads) = self.threads {
            let _ = write!(out, ",\"threads\":{threads}");
        }
        if let Some(tech) = &self.tech {
            let _ = write!(out, ",\"tech\":{}", json_str(tech));
        }
        let _ = write!(
            out,
            ",\"started_unix_ms\":{},\"wall_ms\":{},\"events\":{},\"metrics\":{}}}",
            self.started_unix_ms,
            self.wall_ms,
            self.events,
            self.metrics.render_json()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::json;

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let a = config_digest("McConfig { samples: 100 }");
        assert_eq!(a, config_digest("McConfig { samples: 100 }"));
        assert_ne!(a, config_digest("McConfig { samples: 101 }"));
    }

    #[test]
    fn manifest_renders_parseable_json() {
        let mut m = RunManifest::new("sim", config_digest("cfg"));
        m.seed = Some(2007);
        m.samples = Some(64);
        m.threads = Some(2);
        m.tech = Some("generic 180nm".to_owned());
        m.wall_ms = 12;
        let doc = json::parse(&m.render_json()).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str().unwrap(), "sim");
        assert_eq!(doc.get("seed").unwrap().as_num().unwrap(), 2007.0);
        assert_eq!(
            doc.get("schema_version").unwrap().as_num().unwrap(),
            SCHEMA_VERSION as f64
        );
        assert!(doc.get("metrics").unwrap().get("counters").is_some());
    }
}
