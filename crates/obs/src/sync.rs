//! Pluggable atomics: the [`AtomicFamily`] abstraction behind every
//! lock-free protocol core in this workspace.
//!
//! The Monte Carlo runtime carries three small interleaving-sensitive
//! protocols — cancellation ([`crate::cancel`]), metrics shard merging
//! ([`crate::metrics::shard_proto`]), and checkpoint poisoning
//! (`pulsar_core::checkpoint`). Each is written once, generic over an
//! [`AtomicFamily`], with its memory-ordering constants in a shared
//! `*_ORDERINGS` value next to the core. Production wrappers instantiate
//! the core with [`StdAtomics`] (plain `std::sync::atomic` types, zero
//! overhead); the `pulsar-check` model checker instantiates the *very
//! same core* with its modeled atomics and explores interleavings under
//! a weak-memory semantics. The point of the indirection is that the
//! explorer verifies the shipped code path and the shipped orderings —
//! not a hand-copied model that can silently drift.
//!
//! The trait surface deliberately mirrors `std::sync::atomic` signatures
//! (explicit [`Ordering`] on every operation) so the generic cores read
//! exactly like the direct-atomics code they replaced.

use std::fmt::Debug;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// An `AtomicU8`-shaped type: the cancellation flag's carrier.
pub trait AtomicU8Like: Send + Sync + Debug {
    /// A fresh atomic holding `v`.
    fn new(v: u8) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> u8;
    /// Atomic store with the given ordering.
    fn store(&self, v: u8, order: Ordering);
    /// Compare-and-exchange: `Ok(previous)` when the swap happened,
    /// `Err(actual)` when `current` did not match.
    fn compare_exchange(
        &self,
        current: u8,
        new: u8,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u8, u8>;
}

/// An `AtomicU64`-shaped type: the metrics shards' counter cell.
pub trait AtomicU64Like: Send + Sync + Debug {
    /// A fresh atomic holding `v`.
    fn new(v: u64) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store with the given ordering.
    fn store(&self, v: u64, order: Ordering);
    /// Atomic wrapping add; returns the previous value.
    fn fetch_add(&self, n: u64, order: Ordering) -> u64;
}

/// An `AtomicBool`-shaped type: poison / stop flags.
pub trait AtomicBoolLike: Send + Sync + Debug {
    /// A fresh atomic holding `v`.
    fn new(v: bool) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store with the given ordering.
    fn store(&self, v: bool, order: Ordering);
    /// Compare-and-exchange: `Ok(previous)` when the swap happened,
    /// `Err(actual)` when `current` did not match.
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool>;
}

/// A family of atomic types a protocol core can be instantiated over.
pub trait AtomicFamily: 'static {
    /// The family's `AtomicU8`.
    type U8: AtomicU8Like;
    /// The family's `AtomicU64`.
    type U64: AtomicU64Like;
    /// The family's `AtomicBool`.
    type Bool: AtomicBoolLike;
}

/// The production family: real `std::sync::atomic` types. Every trait
/// method is an `#[inline]` passthrough, so a core instantiated with
/// `StdAtomics` compiles to the same code as direct atomic calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdAtomics;

impl AtomicU8Like for AtomicU8 {
    #[inline]
    fn new(v: u8) -> Self {
        AtomicU8::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u8 {
        AtomicU8::load(self, order)
    }
    #[inline]
    fn store(&self, v: u8, order: Ordering) {
        AtomicU8::store(self, v, order);
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: u8,
        new: u8,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u8, u8> {
        AtomicU8::compare_exchange(self, current, new, success, failure)
    }
}

impl AtomicU64Like for AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }
    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order);
    }
    #[inline]
    fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, n, order)
    }
}

impl AtomicBoolLike for AtomicBool {
    #[inline]
    fn new(v: bool) -> Self {
        AtomicBool::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> bool {
        AtomicBool::load(self, order)
    }
    #[inline]
    fn store(&self, v: bool, order: Ordering) {
        AtomicBool::store(self, v, order);
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        AtomicBool::compare_exchange(self, current, new, success, failure)
    }
}

impl AtomicFamily for StdAtomics {
    type U8 = AtomicU8;
    type U64 = AtomicU64;
    type Bool = AtomicBool;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family_smoke<F: AtomicFamily>() {
        let b = F::U8::new(1);
        assert_eq!(b.load(Ordering::Relaxed), 1);
        b.store(3, Ordering::Relaxed);
        assert_eq!(
            b.compare_exchange(3, 4, Ordering::Relaxed, Ordering::Relaxed),
            Ok(3)
        );
        assert_eq!(
            b.compare_exchange(3, 5, Ordering::Relaxed, Ordering::Relaxed),
            Err(4)
        );

        let c = F::U64::new(10);
        assert_eq!(c.fetch_add(5, Ordering::Relaxed), 10);
        assert_eq!(c.load(Ordering::Relaxed), 15);

        let f = F::Bool::new(false);
        assert_eq!(
            f.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed),
            Ok(false)
        );
        assert!(f.load(Ordering::Relaxed));
        f.store(false, Ordering::Release);
        assert!(!f.load(Ordering::Relaxed));
    }

    #[test]
    fn std_family_round_trips() {
        family_smoke::<StdAtomics>();
    }
}
