//! `pulsar-obs`: structured observability for the pulsar stack.
//!
//! Four pieces, threaded through solver → Monte Carlo → campaign:
//!
//! 1. A **metrics registry** ([`Recorder`], [`MetricsSnapshot`]): named
//!    counters and fixed-bucket log2 histograms, sharded per thread (or
//!    per sample) and merged on snapshot, so scoped per-run statistics
//!    replace process-wide globals.
//! 2. **Spans** ([`Recorder::span`], [`Phase`]): RAII timers over the hot
//!    phases, with a disabled fast path that never reads the clock.
//! 3. A **structured event journal** ([`Event`], [`render_journal`]):
//!    one JSON line per sample/site outcome — seed, retry count,
//!    escalation rung, failure kind, attributed counters — deterministic
//!    and golden-testable.
//! 4. **Run manifests** ([`RunManifest`]): a reproducibility record with
//!    config digest, seeds, wall-clock, and the final metric snapshot.
//!
//! The [`json`] module carries the offline-friendly JSON parser and the
//! subset schema validator behind the `obs-validate` binary.
//!
//! The [`cancel`] module is the one piece that is not strictly
//! *observation*: a lock-free [`CancelToken`] for cooperative run
//! cancellation. It lives here because this crate is the leaf every layer
//! (solver, Monte Carlo driver, studies, campaigns) already depends on,
//! so the same token can be threaded end-to-end without a dependency
//! cycle.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cancel;
pub mod journal;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod sync;

pub use cancel::{CancelCore, CancelOrderings, CancelReason, CancelToken, CANCEL_ORDERINGS};
pub use journal::{render_journal, Event};
pub use manifest::{
    config_digest, AdaptiveManifest, AdaptivePointRecord, RunManifest, ServeManifest,
    SCHEMA_VERSION,
};
pub use metrics::{Counter, HistId, MetricsSnapshot, Phase, HIST_BUCKETS};
pub use recorder::{Recorder, Span};
