//! The [`Recorder`] handle: a cheap, cloneable, possibly-disabled window
//! onto a metrics registry and event journal.
//!
//! # Overhead contract
//!
//! A disabled recorder (the default) carries `None` internally, so every
//! instrumentation call — counter add, histogram record, span open — is a
//! single branch on an `Option` and returns immediately. In particular
//! **no clock is read** on the disabled path; `bench_hotpath` asserts the
//! cost is within measurement noise of an uninstrumented build. An enabled
//! recorder increments relaxed atomics on a shard private to the handle
//! that [`Recorder::fork`] created, so concurrent samples never contend on
//! a cache line.

use crate::journal::Event;
use crate::metrics::{Counter, HistId, MetricsSnapshot, Phase, Shard};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared state behind every enabled recorder of one run.
struct Registry {
    /// Shards still owned by a live handle; summed on snapshot.
    live: Mutex<Vec<Arc<Shard>>>,
    /// Accumulator absorbing retired shards, so a long campaign does not
    /// grow `live` without bound.
    folded: Shard,
    /// Structured events, in the order they were recorded.
    journal: Mutex<Vec<Event>>,
}

struct RecorderInner {
    registry: Arc<Registry>,
    shard: Arc<Shard>,
}

/// A handle for recording metrics, spans, and journal events.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same shard; use
/// [`Recorder::fork`] for a new shard in the same registry (one per worker
/// thread or per Monte Carlo sample). The default handle is disabled.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<RecorderInner>>);

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("Recorder(enabled)"),
            None => f.write_str("Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// A recorder that drops everything. Every instrumentation call is a
    /// single `Option` branch.
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// A fresh enabled recorder with its own registry and root shard.
    pub fn enabled() -> Recorder {
        let root = Arc::new(Shard::new());
        let registry = Arc::new(Registry {
            live: Mutex::new(vec![root.clone()]),
            folded: Shard::new(),
            journal: Mutex::new(Vec::new()),
        });
        Recorder(Some(Arc::new(RecorderInner {
            registry,
            shard: root,
        })))
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// A new handle over the same registry with a private shard —
    /// contention-free for a worker thread or one Monte Carlo sample.
    /// Forking a disabled recorder yields a disabled recorder.
    pub fn fork(&self) -> Recorder {
        match &self.0 {
            None => Recorder(None),
            Some(inner) => {
                let shard = Arc::new(Shard::new());
                if let Ok(mut live) = inner.registry.live.lock() {
                    live.push(shard.clone());
                }
                Recorder(Some(Arc::new(RecorderInner {
                    registry: inner.registry.clone(),
                    shard,
                })))
            }
        }
    }

    /// Folds this handle's shard into the registry accumulator and drops
    /// it from the live set. Totals are preserved exactly; increments made
    /// through this handle *after* retirement are lost. Idempotent.
    pub fn retire(&self) {
        if let Some(inner) = &self.0 {
            if let Ok(mut live) = inner.registry.live.lock() {
                if let Some(pos) = live.iter().position(|s| Arc::ptr_eq(s, &inner.shard)) {
                    let shard = live.remove(pos);
                    shard.fold_into(&inner.registry.folded);
                }
            }
        }
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.0 {
            inner.shard.add(c, n);
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn record(&self, h: HistId, value: u64) {
        if let Some(inner) = &self.0 {
            inner.shard.record(h, value);
        }
    }

    /// Records one completed Newton solve: bumps the iteration counter and
    /// the iterations-per-solve histogram in one call.
    #[inline]
    pub fn newton_solve_done(&self, iters: u64) {
        if let Some(inner) = &self.0 {
            inner.shard.add(Counter::NewtonIterations, iters);
            inner.shard.record(HistId::NewtonItersPerSolve, iters);
        }
    }

    /// Opens a span timing `phase`; the span records its duration when
    /// dropped. Disabled recorders return an inert guard without reading
    /// the clock.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span {
        match &self.0 {
            None => Span(None),
            Some(inner) => Span(Some((inner.shard.clone(), phase, Instant::now()))),
        }
    }

    /// Appends a structured event to the run journal.
    pub fn event(&self, event: Event) {
        if let Some(inner) = &self.0 {
            if let Ok(mut journal) = inner.registry.journal.lock() {
                journal.push(event);
            }
        }
    }

    /// All journal events recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner
                .registry
                .journal
                .lock()
                .map(|j| j.clone())
                .unwrap_or_default(),
        }
    }

    /// Number of journal events recorded so far.
    pub fn event_count(&self) -> usize {
        match &self.0 {
            None => 0,
            Some(inner) => inner.registry.journal.lock().map(|j| j.len()).unwrap_or(0),
        }
    }

    /// A merged snapshot over the whole registry: the folded accumulator
    /// plus every live shard. Summation order cannot matter, so the result
    /// is independent of thread count and fork order.
    ///
    /// The folded accumulator is read *under* the `live` lock: a retire
    /// removes a shard from `live` and folds it as one critical section,
    /// so reading `folded` outside the lock could observe the removal but
    /// miss the fold and undercount. The `pulsar-check` recorder model
    /// (`snapshot_outside_lock` mutation) proves the interleaving exists.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(inner) = &self.0 {
            if let Ok(live) = inner.registry.live.lock() {
                inner.registry.folded.load_into(&mut snap);
                for shard in live.iter() {
                    shard.load_into(&mut snap);
                }
            }
        }
        snap
    }

    /// A snapshot of **this handle's shard only** — the per-sample view
    /// used to attribute counters to one journal event.
    pub fn local_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(inner) = &self.0 {
            inner.shard.load_into(&mut snap);
        }
        snap
    }
}

/// RAII guard returned by [`Recorder::span`]; records the elapsed time
/// into the phase's duration histogram and totals on drop.
pub struct Span(Option<(Arc<Shard>, Phase, Instant)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((shard, phase, start)) = self.0.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shard.span_done(phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        rec.add(Counter::SparseSolves, 5);
        rec.newton_solve_done(3);
        drop(rec.span(Phase::NewtonSolve));
        rec.event(Event::new("sample", 0));
        assert!(!rec.is_enabled());
        assert!(!rec.fork().is_enabled());
        assert_eq!(rec.events().len(), 0);
        assert_eq!(rec.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn fork_and_retire_preserve_totals() {
        let rec = Recorder::enabled();
        rec.add(Counter::DenseSolves, 2);
        let forks: Vec<Recorder> = (0..4).map(|_| rec.fork()).collect();
        for (i, f) in forks.iter().enumerate() {
            f.add(Counter::SparseSolves, i as u64 + 1);
        }
        let before = rec.snapshot();
        for f in &forks {
            f.retire();
            f.retire(); // idempotent
        }
        let after = rec.snapshot();
        assert_eq!(before, after);
        assert_eq!(after.counter(Counter::SparseSolves), 1 + 2 + 3 + 4);
        assert_eq!(after.counter(Counter::DenseSolves), 2);
    }

    #[test]
    fn span_records_duration_and_count() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span(Phase::TransientStepLoop);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.span_count(Phase::TransientStepLoop), 1);
        assert_eq!(
            snap.histogram_count(HistId::PhaseNs(Phase::TransientStepLoop)),
            1
        );
    }

    #[test]
    fn clones_share_the_same_shard() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.add(Counter::StepsAccepted, 7);
        assert_eq!(rec.local_snapshot().counter(Counter::StepsAccepted), 7);
    }
}
