//! Minimal JSON support: an RFC 8259 string escaper, a small recursive-
//! descent parser, and a subset JSON-Schema validator — hand-rolled
//! because the workspace is fully offline (no serde).
//!
//! The validator understands the keywords this repository's schemas use:
//! `type` (string or array of strings; `"integer"` accepted), `required`,
//! `properties`, `additionalProperties: false`, `items`, `enum`,
//! `minItems`/`maxItems`. Unknown keywords are ignored, like real JSON
//! Schema.

use std::fmt::Write as _;

/// Escapes a string as a JSON string literal, including the quotes.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON document. Objects keep their key order (parse order), so
/// re-rendering would be stable; duplicate keys keep the last value on
/// lookup, as most parsers do.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in parse order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects or absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The JSON type name used in schema `type` keywords.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset when the input is
/// not valid JSON or has trailing content.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validates `doc` against the schema subset described in the module docs.
///
/// # Errors
///
/// Returns the first violation found, with a JSON-pointer-style path.
pub fn validate(schema: &Json, doc: &Json) -> Result<(), String> {
    validate_at(schema, doc, "$")
}

fn type_matches(name: &str, doc: &Json) -> bool {
    match name {
        "integer" => matches!(doc, Json::Num(n) if n.fract() == 0.0),
        other => doc.type_name() == other,
    }
}

fn validate_at(schema: &Json, doc: &Json, path: &str) -> Result<(), String> {
    if let Some(ty) = schema.get("type") {
        let ok = match ty {
            Json::Str(name) => type_matches(name, doc),
            Json::Arr(names) => names
                .iter()
                .filter_map(Json::as_str)
                .any(|name| type_matches(name, doc)),
            _ => return Err(format!("{path}: schema 'type' must be a string or array")),
        };
        if !ok {
            return Err(format!(
                "{path}: expected type {ty:?}, found {}",
                doc.type_name()
            ));
        }
    }
    if let Some(Json::Arr(allowed)) = schema.get("enum") {
        if !allowed.contains(doc) {
            return Err(format!("{path}: value not in enum"));
        }
    }
    if let Some(Json::Arr(required)) = schema.get("required") {
        for key in required.iter().filter_map(Json::as_str) {
            if doc.get(key).is_none() {
                return Err(format!("{path}: missing required property '{key}'"));
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(pairs)) = (schema.get("properties"), doc) {
        for (key, sub) in props {
            if let Some(value) = doc.get(key) {
                validate_at(sub, value, &format!("{path}.{key}"))?;
            }
        }
        if schema.get("additionalProperties") == Some(&Json::Bool(false)) {
            for (key, _) in pairs {
                if !props.iter().any(|(k, _)| k == key) {
                    return Err(format!("{path}: unexpected property '{key}'"));
                }
            }
        }
    }
    if let Json::Arr(items) = doc {
        if let Some(min) = schema.get("minItems").and_then(Json::as_num) {
            if (items.len() as f64) < min {
                return Err(format!("{path}: fewer than {min} items"));
            }
        }
        if let Some(max) = schema.get("maxItems").and_then(Json::as_num) {
            if (items.len() as f64) > max {
                return Err(format!("{path}: more than {max} items"));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item_schema, item, &format!("{path}[{i}]"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let doc = parse(&format!("{{\"k\":{}}}", json_str("a\"\\\n\tb"))).unwrap();
        assert_eq!(doc.get("k").unwrap().as_str().unwrap(), "a\"\\\n\tb");
    }

    #[test]
    fn parses_nested_document() {
        let doc = parse("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true}}").unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0),
            ]))
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn validates_types_required_and_items() {
        let schema = parse(
            "{\"type\":\"object\",\"required\":[\"n\",\"xs\"],\"properties\":{\
             \"n\":{\"type\":\"integer\"},\
             \"xs\":{\"type\":\"array\",\"items\":{\"type\":\"number\"}}}}",
        )
        .unwrap();
        let good = parse("{\"n\":3,\"xs\":[1,2]}").unwrap();
        assert!(validate(&schema, &good).is_ok());
        let non_integer = parse("{\"n\":3.5,\"xs\":[]}").unwrap();
        assert!(validate(&schema, &non_integer).is_err());
        let missing = parse("{\"n\":3}").unwrap();
        assert!(validate(&schema, &missing).is_err());
        let bad_item = parse("{\"n\":3,\"xs\":[\"no\"]}").unwrap();
        assert!(validate(&schema, &bad_item).is_err());
    }

    #[test]
    fn validates_additional_properties() {
        let schema = parse(
            "{\"type\":\"object\",\"properties\":{\"a\":{}},\
             \"additionalProperties\":false}",
        )
        .unwrap();
        assert!(validate(&schema, &parse("{\"a\":1}").unwrap()).is_ok());
        assert!(validate(&schema, &parse("{\"a\":1,\"b\":2}").unwrap()).is_err());
    }
}
