//! `obs-validate`: checks a JSON document against a subset JSON Schema.
//!
//! Usage: `obs-validate <schema.json> <document.json>`
//!
//! Exit codes: 0 valid, 1 invalid or unreadable, 2 usage error. Used by
//! CI to hold `pulsar sim --metrics` output to the checked-in schema.

#![warn(clippy::unwrap_used)]

use std::process::ExitCode;

fn run() -> Result<(), (String, u8)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [schema_path, doc_path] = args.as_slice() else {
        return Err((
            "usage: obs-validate <schema.json> <document.json>".to_owned(),
            2,
        ));
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| (format!("cannot read {path}: {e}"), 1))
    };
    let schema = pulsar_obs::json::parse(&read(schema_path)?)
        .map_err(|e| (format!("{schema_path}: {e}"), 1))?;
    let doc =
        pulsar_obs::json::parse(&read(doc_path)?).map_err(|e| (format!("{doc_path}: {e}"), 1))?;
    pulsar_obs::json::validate(&schema, &doc)
        .map_err(|e| (format!("{doc_path}: schema violation: {e}"), 1))?;
    println!("{doc_path}: valid");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err((msg, code)) => {
            eprintln!("obs-validate: {msg}");
            ExitCode::from(code)
        }
    }
}
