//! The rendered run manifest must validate against the checked-in schema
//! (`tests/schemas/manifest.schema.json` at the repository root) — the
//! same document CI holds `pulsar sim --metrics` output to via the
//! `obs-validate` binary.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use pulsar_obs::{
    config_digest, json, AdaptiveManifest, AdaptivePointRecord, Counter, Recorder, RunManifest,
    ServeManifest,
};

fn schema() -> json::Json {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/schemas/manifest.schema.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    json::parse(&text).expect("schema must be valid JSON")
}

fn manifest_with_metrics() -> RunManifest {
    let rec = Recorder::enabled();
    rec.add(Counter::DenseSolves, 42);
    rec.newton_solve_done(4);
    let mut m = RunManifest::new("sim", config_digest("deck text"));
    m.seed = Some(2007);
    m.samples = Some(64);
    m.threads = Some(4);
    m.tech = Some("generic 180nm".to_owned());
    m.started_unix_ms = 1_754_000_000_000;
    m.wall_ms = 1234;
    m.events = 64;
    m.metrics = rec.snapshot();
    m
}

#[test]
fn rendered_manifest_validates_against_checked_in_schema() {
    let schema = schema();
    let doc = json::parse(&manifest_with_metrics().render_json()).expect("manifest parses");
    json::validate(&schema, &doc).expect("manifest must satisfy the schema");

    // A minimal manifest (every optional field unset) must also pass.
    let minimal = RunManifest::new("campaign", config_digest("netlist"));
    let doc = json::parse(&minimal.render_json()).expect("minimal manifest parses");
    json::validate(&schema, &doc).expect("minimal manifest must satisfy the schema");

    // An adaptive study manifest with per-point precision records.
    let mut adaptive = manifest_with_metrics();
    adaptive.kind = "study".to_owned();
    adaptive.adaptive = Some(AdaptiveManifest {
        precision: 0.069,
        max_samples: 200,
        evals: 512,
        fixed_budget_evals: 2400,
        points: vec![AdaptivePointRecord {
            factor: 1.1,
            resistance: 12000.0,
            coverage: 0.96875,
            requested_halfwidth: 0.069,
            achieved_halfwidth: 0.0536,
            samples_spent: 32,
            stopped_early: true,
            refined: false,
        }],
    });
    let doc = json::parse(&adaptive.render_json()).expect("adaptive manifest parses");
    json::validate(&schema, &doc).expect("adaptive manifest must satisfy the schema");

    // A serve-daemon lifetime manifest with the `serve` block.
    let mut serve = manifest_with_metrics();
    serve.kind = "serve".to_owned();
    serve.seed = None;
    serve.samples = None;
    serve.serve = Some(ServeManifest {
        workers: 4,
        queue_depth: 16,
        jobs_admitted: 9,
        jobs_drained: 2,
        tenant_budget: Some(3),
    });
    let doc = json::parse(&serve.render_json()).expect("serve manifest parses");
    json::validate(&schema, &doc).expect("serve manifest must satisfy the schema");
}

#[test]
fn schema_rejects_corrupted_manifests() {
    let schema = schema();
    let good = manifest_with_metrics().render_json();

    // Missing required key.
    let no_kind = good.replacen("\"kind\":\"sim\",", "", 1);
    let doc = json::parse(&no_kind).expect("still valid JSON");
    assert!(
        json::validate(&schema, &doc).is_err(),
        "missing 'kind' must fail"
    );

    // Wrong type: digest as a raw number instead of a hex string.
    let digest = config_digest("deck text");
    let bad_digest = good.replace(
        &format!("\"config_digest\":\"{digest:#018x}\""),
        "\"config_digest\":12345",
    );
    assert_ne!(bad_digest, good, "replacement must hit");
    let doc = json::parse(&bad_digest).expect("still valid JSON");
    assert!(
        json::validate(&schema, &doc).is_err(),
        "numeric digest must fail the string type"
    );

    // Unknown top-level key trips additionalProperties: false.
    let extra = good.replacen(
        "{\"schema_version\"",
        "{\"surprise\":1,\"schema_version\"",
        1,
    );
    let doc = json::parse(&extra).expect("still valid JSON");
    assert!(
        json::validate(&schema, &doc).is_err(),
        "unknown key must fail"
    );
}
