//! Property test: merged snapshots are independent of how the recording
//! work was spread over threads. The same operation list applied through
//! 1 shard or round-robined over k shards on k real threads must produce
//! byte-identical snapshots — the property that makes `--metrics` output
//! reproducible across `--threads` settings.

use proptest::prelude::*;
use pulsar_obs::{Counter, MetricsSnapshot, Recorder};

/// One recording operation: `(counter_index, amount, newton_iters)`.
/// Counter adds and histogram observations both participate, so the
/// property covers every merge path except wall-clock spans (whose
/// durations are inherently non-deterministic).
type Op = (usize, u64, u64);

/// Applies `ops` round-robin over `threads` forked shards, each on its own
/// OS thread, retiring every shard before the final snapshot.
fn run_sharded(ops: &[Op], threads: usize) -> MetricsSnapshot {
    let rec = Recorder::enabled();
    let forks: Vec<Recorder> = (0..threads).map(|_| rec.fork()).collect();
    std::thread::scope(|scope| {
        for (t, fork) in forks.iter().enumerate() {
            let lane: Vec<Op> = ops.iter().copied().skip(t).step_by(threads).collect();
            scope.spawn(move || {
                for (ci, amount, iters) in lane {
                    fork.add(Counter::ALL[ci % Counter::ALL.len()], amount);
                    fork.newton_solve_done(iters);
                }
            });
        }
    });
    for fork in &forks {
        fork.retire();
    }
    rec.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merged_snapshots_are_thread_count_independent(
        ops in proptest::collection::vec((0usize..32, 0u64..1_000, 0u64..200), 1..64),
        threads in 2usize..6,
    ) {
        let reference = run_sharded(&ops, 1);
        let sharded = run_sharded(&ops, threads);
        prop_assert_eq!(&reference, &sharded);
        // The rendered JSON — what `--metrics` writes — is byte-identical
        // too, not merely structurally equal.
        prop_assert_eq!(reference.render_json(), sharded.render_json());
    }
}
