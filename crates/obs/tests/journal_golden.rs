//! Golden-file tests for journal renderings: three synthetic journals —
//! a clean run, a run with retries, a run with hard failures and
//! escalation — each pinned byte-for-byte against
//! `tests/goldens/<name>.expected.jsonl`. The JSONL field order is part
//! of the output contract (downstream `grep`/`jq` pipelines key on it),
//! so any drift must be deliberate. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p pulsar-obs --test journal_golden
//! ```

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::PathBuf;

use pulsar_obs::{json, render_journal, Event};

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_golden(rendered: &str, golden_path: &PathBuf) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(golden_path, rendered).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden {golden_path:?} ({e}); run with UPDATE_GOLDENS=1")
    });
    assert_eq!(
        rendered, expected,
        "rendering drifted from {golden_path:?}; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

/// A clean 3-sample Monte Carlo run: first-try successes, per-sample
/// counters attributed.
fn clean_run() -> Vec<Event> {
    (0..3)
        .map(|i| {
            let mut e = Event::new("sample", i);
            e.label = Some("pulse-faulty".to_owned());
            e.seed = Some(0x1000 + i as u64);
            e.counters = vec![
                ("dense_solves", 120 + i as u64),
                ("newton_iterations", 360 + i as u64),
                ("steps_accepted", 88),
            ];
            e
        })
        .collect()
}

/// A run where sample 1 needed the retry ladder but recovered.
fn retry_run() -> Vec<Event> {
    let mut events = clean_run();
    events[1].outcome = "recovered";
    events[1].attempts = 3;
    events[1].escalation_rung = 2;
    events
}

/// A run with a hard failure (sample 2, full ladder spent) plus a
/// campaign site journal behind it, covering every optional field and
/// JSON string escaping in labels.
fn failure_run() -> Vec<Event> {
    let mut events = retry_run();
    events[2].outcome = "failed";
    events[2].attempts = 3;
    events[2].escalation_rung = 2;
    events[2].error_kind = Some("non-convergence".to_owned());
    let mut site = Event::new("site", 0);
    site.label = Some("Site { gate: 4, pin: \"a\" }".to_owned());
    site.outcome = "unsensitizable";
    events.push(site);
    let mut failed_site = Event::new("site", 1);
    failed_site.outcome = "failed";
    failed_site.error_kind = Some("no-sensitizable-path".to_owned());
    events.push(failed_site);
    events
}

/// An adaptive sweep journal: two phase-1 samples, one `-refine`
/// labelled phase-2 sample, then a `point` event per grid point
/// carrying the measured `{requested, achieved}` accuracy record the
/// manifest is built from — one early-stopped, one refined to the cap.
fn adaptive_run() -> Vec<Event> {
    let mut events: Vec<Event> = (0..2)
        .map(|i| {
            let mut e = Event::new("sample", i);
            e.label = Some("df-adaptive".to_owned());
            e.seed = Some(0x2000 + i as u64);
            e.counters = vec![("dense_solves", 64 + i as u64)];
            e
        })
        .collect();
    let mut refine = Event::new("sample", 2);
    refine.label = Some("df-adaptive-refine".to_owned());
    refine.seed = Some(0x2002);
    refine.counters = vec![("dense_solves", 66)];
    events.push(refine);
    let mut stopped = Event::new("point", 0);
    stopped.label = Some("df-adaptive f=0.9 r=1000".to_owned());
    stopped.requested_halfwidth = Some(0.15);
    stopped.achieved_halfwidth = Some(0.101);
    stopped.samples_spent = Some(32);
    stopped.stopped_early = Some(true);
    events.push(stopped);
    let mut refined = Event::new("point", 1);
    refined.label = Some("df-adaptive f=0.9 r=30000".to_owned());
    refined.detail = Some("refined".to_owned());
    refined.requested_halfwidth = Some(0.15);
    refined.achieved_halfwidth = Some(0.149);
    refined.samples_spent = Some(96);
    refined.stopped_early = Some(false);
    events.push(refined);
    events
}

#[test]
fn journals_match_goldens() {
    let corpus: [(&str, Vec<Event>); 4] = [
        ("clean", clean_run()),
        ("retries", retry_run()),
        ("failures", failure_run()),
        ("adaptive", adaptive_run()),
    ];
    for (name, events) in &corpus {
        let rendered = render_journal(events);
        check_golden(
            &rendered,
            &goldens_dir().join(format!("{name}.expected.jsonl")),
        );
        // Independent of the golden bytes: every line must parse, and the
        // parsed fields must round-trip the event.
        for (line, event) in rendered.lines().zip(events.iter()) {
            let doc = json::parse(line).expect("golden line parses");
            assert_eq!(doc.get("kind").unwrap().as_str().unwrap(), event.kind);
            assert_eq!(
                doc.get("index").unwrap().as_num().unwrap(),
                event.index as f64
            );
            assert_eq!(doc.get("outcome").unwrap().as_str().unwrap(), event.outcome);
            assert_eq!(
                doc.get("label").and_then(|l| l.as_str()),
                event.label.as_deref()
            );
            assert_eq!(
                doc.get("requested_halfwidth").and_then(json::Json::as_num),
                event.requested_halfwidth
            );
            assert_eq!(
                doc.get("achieved_halfwidth").and_then(json::Json::as_num),
                event.achieved_halfwidth
            );
        }
    }
}
