//! An edge-triggered D flip-flop at the transistor level, and the
//! measurement of its timing parameters.
//!
//! The DF-testing baseline (paper §4) hinges on the launch flop's
//! clock-to-Q delay `τ_CQ` and the capture flop's setup time `τ_DC`.
//! Rather than assuming them, this module builds the classic 6-NAND
//! positive-edge DFF (the 7474 structure) from the cell library and
//! measures both parameters electrically — so the baseline's constants
//! come from the same technology as the paths under test.
//!
//! ```text
//!        ┌──────────────┐
//!  n1 = NAND(n4, n2)     │  master: set/reset pair gated by clk
//!  n2 = NAND(n1, clk)    │
//!  n3 = NAND3(n2,clk,n4) │
//!  n4 = NAND(n3, d)      │
//!  q  = NAND(n2, qb)     │  slave latch
//!  qb = NAND(q, n3)      │
//! ```

use crate::gates::{CellKind, CmosBuilder};
use crate::tech::Tech;
use pulsar_analog::{Circuit, Edge, Error, NodeId, TranConfig, Waveform};

/// Electrically measured flip-flop timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DffTiming {
    /// Clock-to-Q delay for a rising Q, seconds.
    pub tau_cq: f64,
    /// Minimum D-stable-before-clock time that still captures, seconds.
    pub setup: f64,
}

/// Builds the 6-NAND DFF; returns `(circuit, q_node, clk source index,
/// d source index)` with the clock initially high (which fully defines
/// the internal latches for the DC operating point).
fn build_dff(tech: &Tech) -> (Circuit, NodeId, usize, usize) {
    let mut b = CmosBuilder::new(tech);
    let (d, d_src) = b.input_with_index("d", Waveform::dc(0.0));
    let (clk, clk_src) = b.input_with_index("clk", Waveform::dc(tech.vdd));

    // Feedback nets need forward declarations: create plain nodes and
    // wire gates onto them via an extra inverter-free trick is not
    // possible with the builder's create-on-demand outputs, so build the
    // loop with explicit two-pass wiring: placeholder nodes first.
    //
    // The builder always creates fresh output nodes, so close the loops
    // with zero-length "wire" resistors (1 mΩ) between each gate output
    // and its feedback node. At these impedances the wires are invisible
    // next to kilo-ohm-scale device resistances.
    let n1_fb = b.circuit_mut().node("n1.fb");
    let n2_fb = b.circuit_mut().node("n2.fb");
    let n3_fb = b.circuit_mut().node("n3.fb");
    let n4_fb = b.circuit_mut().node("n4.fb");
    let q_fb = b.circuit_mut().node("q.fb");
    let qb_fb = b.circuit_mut().node("qb.fb");

    let n1 = b
        .gate(CellKind::Nand2, tech, &[n4_fb, n2_fb], "n1", None)
        .output;
    let n2 = b
        .gate(CellKind::Nand2, tech, &[n1_fb, clk], "n2", None)
        .output;
    let n3 = b
        .gate(CellKind::Nand3, tech, &[n2_fb, clk, n4_fb], "n3", None)
        .output;
    let n4 = b
        .gate(CellKind::Nand2, tech, &[n3_fb, d], "n4", None)
        .output;
    let q = b
        .gate(CellKind::Nand2, tech, &[n2_fb, qb_fb], "q", None)
        .output;
    let qb = b
        .gate(CellKind::Nand2, tech, &[q_fb, n3_fb], "qb", None)
        .output;

    let wire = 1e-3;
    for (out, fb) in [
        (n1, n1_fb),
        (n2, n2_fb),
        (n3, n3_fb),
        (n4, n4_fb),
        (q, q_fb),
        (qb, qb_fb),
    ] {
        b.circuit_mut().resistor(out, fb, wire);
    }

    // Realistic output load.
    b.gate(CellKind::Inv, tech, &[q], "load", None);

    let (circuit, _) = b.finish();
    (circuit, q, clk_src, d_src)
}

/// One capture trial: D rises `d_before_clk` seconds before the clock's
/// rising edge; returns Q's state after the edge and the clk→Q delay if
/// Q rose.
fn capture_trial(tech: &Tech, d_before_clk: f64) -> Result<(bool, Option<f64>), Error> {
    let (mut circuit, q, clk_src, d_src) = build_dff(tech);
    let vdd = tech.vdd;
    let edge = 80e-12;
    let t_clk = 6e-9; // the measured rising (capture) edge
    let t_d = t_clk - d_before_clk;

    // The slave latch is bistable at DC (clk low holds it); a priming
    // capture pulse at 1.5 ns with D = 0 loads a known Q = 0 before the
    // measured edge, resolving any metastable DC start.
    circuit.set_vsource_wave(
        clk_src,
        Waveform::Pwl(vec![
            (0.0, 0.0),
            (1.5e-9, 0.0),
            (1.5e-9 + edge, vdd), // priming edge (captures 0)
            (2.5e-9, vdd),
            (2.5e-9 + edge, 0.0), // clock low again
            (t_clk - edge, 0.0),
            (t_clk, vdd), // measured capture edge
        ]),
    )?;
    // d: low, rising at t_d (possibly after the clock for negative setup).
    circuit.set_vsource_wave(
        d_src,
        Waveform::Pwl(vec![(0.0, 0.0), (t_d - edge, 0.0), (t_d, vdd)]),
    )?;

    let res = circuit.transient(&TranConfig::new(4e-12, t_clk + 3e-9))?;
    let trace = res.trace(q);
    let captured = trace.last_value() > vdd / 2.0;
    let tau_cq = trace
        .first_crossing_after(vdd / 2.0, Edge::Rising, t_clk - 1e-9)
        .map(|t| t - (t_clk - edge / 2.0));
    Ok((captured, if captured { tau_cq } else { None }))
}

/// Measures the DFF's `τ_CQ` (with ample setup) and its setup time (by
/// bisection on the D-before-clock offset) for technology `tech`.
///
/// # Errors
///
/// Propagates simulator errors; reports a flop that never captures as
/// [`Error::NoConvergence`]-style failure.
pub fn characterize_dff(tech: &Tech) -> Result<DffTiming, Error> {
    // τ_CQ with a very comfortable setup margin.
    let (captured, tau) = capture_trial(tech, 2.0e-9)?;
    if !captured {
        return Err(Error::NoConvergence {
            context: "dff never captures",
            iterations: 0,
            time: 0.0,
        });
    }
    let tau_cq = tau.expect("captured implies a Q edge");

    // Setup: smallest offset that still captures.
    let mut lo = 0.0; // assumed failing (D moving with the clock)
    let mut hi = 2.0e-9; // known passing
    while hi - lo > 10e-12 {
        let mid = 0.5 * (lo + hi);
        if capture_trial(tech, mid)?.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(DffTiming {
        tau_cq,
        setup: 0.5 * (lo + hi),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn dff_captures_with_ample_setup_and_misses_without() {
        let tech = Tech::generic_180nm();
        let (ok, tau) = capture_trial(&tech, 2e-9).unwrap();
        assert!(ok, "2 ns of setup must capture");
        let t = tau.unwrap();
        assert!(t > 20e-12 && t < 2e-9, "tau_cq {t:e} implausible");

        // D arriving *after* the clock edge cannot be captured.
        let (late, _) = capture_trial(&tech, -0.5e-9).unwrap();
        assert!(!late, "a late D must not be captured");
    }

    #[test]
    fn characterization_is_plausible_and_ordered() {
        let tech = Tech::generic_180nm();
        let t = characterize_dff(&tech).unwrap();
        assert!(
            t.tau_cq > 20e-12 && t.tau_cq < 2e-9,
            "tau_cq {:e}",
            t.tau_cq
        );
        assert!(t.setup > 0.0 && t.setup < 2e-9, "setup {:e}", t.setup);
        // Boundary behavior: just under the setup fails, just over works.
        assert!(!capture_trial(&tech, t.setup - 40e-12).unwrap().0);
        assert!(capture_trial(&tech, t.setup + 40e-12).unwrap().0);
    }

    #[test]
    fn slower_technology_has_larger_flop_overheads() {
        let fast = characterize_dff(&Tech::generic_180nm()).unwrap();
        let slow = characterize_dff(&Tech::generic_350nm()).unwrap();
        assert!(
            slow.tau_cq > fast.tau_cq,
            "350 nm flop must be slower: {:e} vs {:e}",
            slow.tau_cq,
            fast.tau_cq
        );
    }
}
