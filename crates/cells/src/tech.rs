//! Technology parameters for the CMOS cell library.

/// A self-consistent generic deep-submicron CMOS technology.
///
/// The paper does not name its process; experiments report resistances in
/// kΩ and pulse widths in fractions of a nanosecond. This parameter set —
/// a generic 180 nm-class node with substantial interconnect loading —
/// lands the simulated waveforms in the same decades, which is all the
/// reproduction needs (see `DESIGN.md`, substitutions table).
///
/// Monte Carlo instances are produced by scaling individual parameters
/// (see [`Tech::scaled`]); the paper applies a normal distribution with
/// 10 % standard deviation to the "main circuit parameters".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// NMOS threshold, volts (positive).
    pub vt0_n: f64,
    /// PMOS threshold, volts (negative).
    pub vt0_p: f64,
    /// NMOS transconductance parameter µn·Cox, A/V².
    pub kp_n: f64,
    /// PMOS transconductance parameter µp·Cox, A/V².
    pub kp_p: f64,
    /// NMOS channel-length modulation, 1/V.
    pub lambda_n: f64,
    /// PMOS channel-length modulation, 1/V.
    pub lambda_p: f64,
    /// Drawn channel length, meters.
    pub l: f64,
    /// Unit NMOS width, meters (PMOS widths derive from this and `beta_ratio`).
    pub w_n: f64,
    /// PMOS/NMOS width ratio compensating the mobility gap.
    pub beta_ratio: f64,
    /// Gate-oxide capacitance density, F/m².
    pub cox: f64,
    /// Drain-junction capacitance per device width, F/m.
    pub cj_w: f64,
    /// Lumped interconnect capacitance added at every gate output, farads.
    pub c_wire: f64,
}

impl Tech {
    /// The default generic technology used across the experiments.
    pub fn generic_180nm() -> Self {
        Tech {
            vdd: 1.8,
            vt0_n: 0.40,
            vt0_p: -0.42,
            kp_n: 170e-6,
            kp_p: 60e-6,
            lambda_n: 0.06,
            lambda_p: 0.08,
            l: 0.18e-6,
            w_n: 0.9e-6,
            beta_ratio: 2.4,
            cox: 8.3e-3,
            cj_w: 0.9e-9,
            // Generous wire loading pushes gate delays to the ~100 ps scale
            // of the paper's waveforms (their Figs. 2/3/5 span 4 ns).
            c_wire: 12e-15,
        }
    }

    /// A slower, higher-voltage 350 nm-class technology — closer to the
    /// paper's era. Gate delays roughly triple versus
    /// [`Tech::generic_180nm`], pushing pulse widths toward the paper's
    /// ~1 ns scale; useful to check that conclusions survive a technology
    /// swap (they are expressed in ratios, so they must).
    pub fn generic_350nm() -> Self {
        Tech {
            vdd: 3.3,
            vt0_n: 0.55,
            vt0_p: -0.60,
            kp_n: 110e-6,
            kp_p: 38e-6,
            lambda_n: 0.04,
            lambda_p: 0.05,
            l: 0.35e-6,
            w_n: 1.4e-6,
            beta_ratio: 2.6,
            cox: 4.6e-3,
            cj_w: 1.2e-9,
            c_wire: 30e-15,
        }
    }

    /// Unit PMOS width.
    pub fn w_p(&self) -> f64 {
        self.w_n * self.beta_ratio
    }

    /// Gate capacitance of a device of width `w`.
    pub fn cgate(&self, w: f64) -> f64 {
        self.cox * w * self.l
    }

    /// Drain-junction capacitance of a device of width `w`.
    pub fn cjunction(&self, w: f64) -> f64 {
        self.cj_w * w
    }

    /// Returns a copy with the *strength-related* parameters multiplied by
    /// the given factors. This is the Monte Carlo hook: `kp_f`/`vt_f`
    /// perturb the current drive, `cap_f` the capacitive loading.
    ///
    /// Factors of 1.0 reproduce the nominal technology exactly.
    pub fn scaled(&self, kp_f: f64, vt_f: f64, cap_f: f64) -> Tech {
        Tech {
            kp_n: self.kp_n * kp_f,
            kp_p: self.kp_p * kp_f,
            vt0_n: self.vt0_n * vt_f,
            vt0_p: self.vt0_p * vt_f,
            cox: self.cox * cap_f,
            cj_w: self.cj_w * cap_f,
            c_wire: self.c_wire * cap_f,
            ..*self
        }
    }

    /// Logic threshold used by all measurements: `vdd / 2`.
    pub fn vth_meas(&self) -> f64 {
        self.vdd / 2.0
    }
}

impl Default for Tech {
    fn default() -> Self {
        Tech::generic_180nm()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn generic_tech_is_sane() {
        let t = Tech::generic_180nm();
        assert!(t.vdd > 0.0);
        assert!(t.vt0_n > 0.0 && t.vt0_n < t.vdd / 2.0);
        assert!(t.vt0_p < 0.0);
        assert!(t.kp_n > t.kp_p, "NMOS mobility exceeds PMOS");
        assert!(t.w_p() > t.w_n);
        assert!(t.cgate(t.w_n) > 0.0);
    }

    #[test]
    fn scaled_identity_is_nominal() {
        let t = Tech::generic_180nm();
        assert_eq!(t.scaled(1.0, 1.0, 1.0), t);
    }

    #[test]
    fn scaled_applies_factors() {
        let t = Tech::generic_180nm();
        let s = t.scaled(1.1, 0.9, 1.2);
        assert!((s.kp_n / t.kp_n - 1.1).abs() < 1e-12);
        assert!((s.vt0_n / t.vt0_n - 0.9).abs() < 1e-12);
        assert!((s.vt0_p / t.vt0_p - 0.9).abs() < 1e-12);
        assert!((s.c_wire / t.c_wire - 1.2).abs() < 1e-12);
        // Non-strength parameters are untouched.
        assert_eq!(s.vdd, t.vdd);
        assert_eq!(s.l, t.l);
    }

    #[test]
    fn default_matches_generic() {
        assert_eq!(Tech::default(), Tech::generic_180nm());
    }

    #[test]
    fn legacy_node_is_slower_but_sane() {
        let t = Tech::generic_350nm();
        assert!(t.vdd > Tech::generic_180nm().vdd);
        assert!(t.vt0_n > 0.0 && t.vt0_n < t.vdd / 2.0);
        assert!(t.c_wire > Tech::generic_180nm().c_wire);
        assert!(t.cgate(t.w_n) > 0.0);
    }
}
