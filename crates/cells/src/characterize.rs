//! Static (DC) characterization of gates: voltage transfer curves,
//! switching thresholds and noise margins.
//!
//! The paper's Fig. 9 discussion notes that near the detection edge "the
//! size of the faulty pulse is very sensitive to fluctuations in the
//! logic threshold of the fan-out gate" — the quantity measured here.
//! Characterization also backs sizing choices in the cell library (the
//! switching threshold should sit near `VDD/2` for symmetric pulse
//! handling).

use crate::gates::{CellKind, CmosBuilder};
use crate::tech::Tech;
use pulsar_analog::{Error, Waveform};

/// A sampled voltage transfer curve of one input pin of a gate (all other
/// pins held at non-controlling values).
#[derive(Debug, Clone)]
pub struct Vtc {
    /// Swept input voltages, ascending.
    pub v_in: Vec<f64>,
    /// Corresponding output voltages.
    pub v_out: Vec<f64>,
}

impl Vtc {
    /// The switching (logic) threshold: the input voltage where
    /// `v_out = v_in` (the VTC's crossing with the identity line) — the
    /// standard definition of an inverting gate's logic threshold.
    ///
    /// Returns `None` for a degenerate curve that never crosses.
    pub fn switching_threshold(&self) -> Option<f64> {
        for w in self.v_in.windows(2).zip(self.v_out.windows(2)) {
            let ((i0, i1), (o0, o1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            let d0 = o0 - i0;
            let d1 = o1 - i1;
            if d0 >= 0.0 && d1 < 0.0 {
                // Linear interpolation of the crossing.
                let f = d0 / (d0 - d1);
                return Some(i0 + f * (i1 - i0));
            }
        }
        None
    }

    /// Input voltages where the small-signal gain crosses −1: `(v_il,
    /// v_ih)`, the classic unity-gain points bounding the transition
    /// region. `None` when the sweep is too coarse to resolve them.
    pub fn unity_gain_points(&self) -> Option<(f64, f64)> {
        let mut v_il = None;
        let mut v_ih = None;
        for w in self.v_in.windows(2).zip(self.v_out.windows(2)) {
            let ((i0, i1), (o0, o1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            let gain = (o1 - o0) / (i1 - i0);
            if gain <= -1.0 && v_il.is_none() {
                v_il = Some(i0);
            }
            if gain <= -1.0 {
                v_ih = Some(i1);
            }
        }
        match (v_il, v_ih) {
            (Some(a), Some(b)) if b > a => Some((a, b)),
            _ => None,
        }
    }

    /// Static noise margins `(nm_low, nm_high)` from the unity-gain
    /// points: `NM_L = V_IL − V_OL`, `NM_H = V_OH − V_IH` with
    /// `V_OL`/`V_OH` read at the curve ends.
    pub fn noise_margins(&self) -> Option<(f64, f64)> {
        let (v_il, v_ih) = self.unity_gain_points()?;
        let v_oh = *self.v_out.first()?;
        let v_ol = *self.v_out.last()?;
        Some((v_il - v_ol, v_oh - v_ih))
    }
}

/// Sweeps the DC transfer curve of `kind`'s pin 0 with `points` samples
/// across the supply, side pins at non-controlling values.
///
/// # Errors
///
/// Propagates DC-solver failures.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn vtc(kind: CellKind, tech: &Tech, points: usize) -> Result<Vtc, Error> {
    assert!(points >= 2, "need at least two sweep points");
    let mut v_in = Vec::with_capacity(points);
    let mut v_out = Vec::with_capacity(points);
    for k in 0..points {
        let vi = tech.vdd * k as f64 / (points - 1) as f64;
        let mut b = CmosBuilder::new(tech);
        let inp = b.input("in", Waveform::dc(vi));
        let mut pins = vec![inp];
        for v in kind.side_values(0) {
            pins.push(b.constant(v));
        }
        let g = b.gate(kind, tech, &pins, "dut", None);
        let dc = b.circuit().dc_op()?;
        v_in.push(vi);
        v_out.push(dc.voltage(g.output));
    }
    Ok(Vtc { v_in, v_out })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn inverter_vtc_is_full_swing_and_monotone() {
        let curve = vtc(CellKind::Inv, &Tech::generic_180nm(), 37).unwrap();
        assert!(curve.v_out[0] > 1.75, "VOH near VDD");
        assert!(*curve.v_out.last().expect("non-empty") < 0.05, "VOL near 0");
        for w in curve.v_out.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "inverting VTC must be non-increasing");
        }
    }

    #[test]
    fn switching_threshold_is_near_mid_supply() {
        let tech = Tech::generic_180nm();
        let curve = vtc(CellKind::Inv, &tech, 73).unwrap();
        let vm = curve.switching_threshold().expect("crossing exists");
        assert!(
            (vm - tech.vdd / 2.0).abs() < 0.25,
            "switching threshold {vm:.3} too far from mid-supply"
        );
    }

    #[test]
    fn threshold_tracks_process_skew() {
        let tech = Tech::generic_180nm();
        // Weaker PMOS → lower switching threshold.
        let weak_p = Tech {
            kp_p: tech.kp_p * 0.5,
            ..tech
        };
        let vm_nom = vtc(CellKind::Inv, &tech, 73)
            .unwrap()
            .switching_threshold()
            .unwrap();
        let vm_weak = vtc(CellKind::Inv, &weak_p, 73)
            .unwrap()
            .switching_threshold()
            .unwrap();
        assert!(
            vm_weak < vm_nom - 0.02,
            "halving PMOS drive must lower Vm: {vm_nom:.3} → {vm_weak:.3}"
        );
    }

    #[test]
    fn noise_margins_are_healthy() {
        let tech = Tech::generic_180nm();
        let curve = vtc(CellKind::Inv, &tech, 181).unwrap();
        let (nml, nmh) = curve.noise_margins().expect("resolvable margins");
        assert!(nml > 0.3 * tech.vdd / 2.0, "NM_L {nml:.3} too small");
        assert!(nmh > 0.3 * tech.vdd / 2.0, "NM_H {nmh:.3} too small");
    }

    #[test]
    fn nand_and_nor_thresholds_differ_by_stack_position() {
        let tech = Tech::generic_180nm();
        let vm_nand = vtc(CellKind::Nand2, &tech, 73)
            .unwrap()
            .switching_threshold()
            .unwrap();
        let vm_nor = vtc(CellKind::Nor2, &tech, 73)
            .unwrap()
            .switching_threshold()
            .unwrap();
        // Both in the transition band, but not identical: the stacked
        // network skews each differently.
        assert!(vm_nand > 0.4 && vm_nand < 1.4, "{vm_nand}");
        assert!(vm_nor > 0.4 && vm_nor < 1.4, "{vm_nor}");
        assert!((vm_nand - vm_nor).abs() > 0.01);
    }
}
